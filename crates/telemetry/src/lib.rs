//! Pipeline telemetry for the bi-level LSH stack.
//!
//! The crate defines one object-safe [`Recorder`] trait that every layer of
//! the pipeline (core probe/escalate/rank, out-of-core I/O, the serving
//! layer) emits events into, plus two implementations:
//!
//! * [`NoopRecorder`] — the default sink. Every method is an empty body and
//!   [`Recorder::enabled`] returns `false`, so instrumented code skips even
//!   the `Instant::now()` calls. A query run with the noop recorder executes
//!   the same instructions as an uninstrumented build modulo a predictable
//!   branch per span.
//! * [`InMemoryRecorder`] — lock-free aggregation on `AtomicU64`s: one
//!   counter per [`Counter`], a log2-bucketed duration histogram per
//!   [`Stage`], and a log2-bucketed value histogram per [`Value`].
//!
//! A [`TelemetrySnapshot`] taken from an [`InMemoryRecorder`] renders as
//! Prometheus text exposition format ([`TelemetrySnapshot::to_prometheus`]),
//! a single-line JSON object ([`TelemetrySnapshot::to_json`], hand-rolled —
//! this crate has no dependencies), or a human-readable stage-breakdown
//! table ([`TelemetrySnapshot::render_table`]) used by the bench binaries.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Monotonic event counters, one per instrumented occurrence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Counter {
    /// Queries that went through candidate generation.
    QueriesProbed,
    /// Candidate ids produced by probing (before dedup/rank).
    CandidatesGenerated,
    /// Extra buckets probed beyond the home bucket by multi-probe.
    MultiProbeBuckets,
    /// Queries that fell below the hierarchical floor and escalated.
    Escalations,
    /// Individual escalation rounds (bucket-doubling steps) executed.
    EscalationRounds,
    /// Positioned reads issued by the out-of-core path.
    OocReads,
    /// Bytes fetched from backing storage by the out-of-core path.
    OocBytesRead,
    /// Transient-I/O retry attempts consumed by the out-of-core path.
    OocRetries,
    /// Micro-batches dispatched by the serving layer.
    BatchesDispatched,
    /// Responses answered below the full service level.
    DegradedResponses,
    /// Per-shard queries issued by the fan-out backend.
    FanoutShardQueries,
    /// Circuit breakers tripped open.
    BreakerOpens,
    /// Circuit breakers closed after a successful half-open probe.
    BreakerCloses,
    /// Shard queries skipped because the shard's breaker was open.
    ShardsSkipped,
    /// Candidates discarded by the quantized first-pass prune before exact
    /// ranking.
    CandidatesPruned,
    /// Candidates that survived the quantized first pass into exact rerank.
    CandidatesReranked,
    /// Rows inserted into a mutable index (direct or via txn commit).
    Inserts,
    /// Rows logically deleted (tombstoned) in a mutable index.
    Deletes,
    /// Candidates dropped at rank time because their row was tombstoned.
    TombstonedFiltered,
    /// Compaction passes that rebuilt an index over its surviving rows.
    Compactions,
    /// Request frames handled by the TCP front end.
    NetRequests,
    /// Payload bytes read off the wire by the TCP front end.
    NetBytesIn,
    /// Payload bytes written to the wire by the TCP front end.
    NetBytesOut,
    /// Backup probes fired by the hedged remote fan-out (slow or failed
    /// primary).
    HedgesFired,
    /// Hedged requests where the backup's answer arrived first and won.
    HedgeWins,
    /// Requests rejected because a tenant's admission quota was exhausted.
    TenantRejections,
    /// Replicas bootstrapped from a peer via snapshot streaming (`JOIN`).
    ReplicaJoins,
}

impl Counter {
    /// Every counter, in stable export order.
    pub const ALL: [Counter; 27] = [
        Counter::QueriesProbed,
        Counter::CandidatesGenerated,
        Counter::MultiProbeBuckets,
        Counter::Escalations,
        Counter::EscalationRounds,
        Counter::OocReads,
        Counter::OocBytesRead,
        Counter::OocRetries,
        Counter::BatchesDispatched,
        Counter::DegradedResponses,
        Counter::FanoutShardQueries,
        Counter::BreakerOpens,
        Counter::BreakerCloses,
        Counter::ShardsSkipped,
        Counter::CandidatesPruned,
        Counter::CandidatesReranked,
        Counter::Inserts,
        Counter::Deletes,
        Counter::TombstonedFiltered,
        Counter::Compactions,
        Counter::NetRequests,
        Counter::NetBytesIn,
        Counter::NetBytesOut,
        Counter::HedgesFired,
        Counter::HedgeWins,
        Counter::TenantRejections,
        Counter::ReplicaJoins,
    ];

    /// Stable snake_case name used in every export format.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::QueriesProbed => "queries_probed",
            Counter::CandidatesGenerated => "candidates_generated",
            Counter::MultiProbeBuckets => "multi_probe_buckets",
            Counter::Escalations => "escalations",
            Counter::EscalationRounds => "escalation_rounds",
            Counter::OocReads => "ooc_reads",
            Counter::OocBytesRead => "ooc_bytes_read",
            Counter::OocRetries => "ooc_retries",
            Counter::BatchesDispatched => "batches_dispatched",
            Counter::DegradedResponses => "degraded_responses",
            Counter::FanoutShardQueries => "fanout_shard_queries",
            Counter::BreakerOpens => "breaker_opens",
            Counter::BreakerCloses => "breaker_closes",
            Counter::ShardsSkipped => "shards_skipped",
            Counter::CandidatesPruned => "candidates_pruned",
            Counter::CandidatesReranked => "candidates_reranked",
            Counter::Inserts => "inserts",
            Counter::Deletes => "deletes",
            Counter::TombstonedFiltered => "tombstoned_filtered",
            Counter::Compactions => "compactions",
            Counter::NetRequests => "net_requests",
            Counter::NetBytesIn => "net_bytes_in",
            Counter::NetBytesOut => "net_bytes_out",
            Counter::HedgesFired => "hedges_fired",
            Counter::HedgeWins => "hedge_wins",
            Counter::TenantRejections => "tenant_rejections",
            Counter::ReplicaJoins => "replica_joins",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Pipeline stages with duration histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Base candidate generation for one query (hash + bucket lookups).
    Probe,
    /// Hierarchical escalation for one query (all rounds).
    Escalate,
    /// Exact shortlist ranking for one batch.
    Rank,
    /// One positioned read against backing storage.
    OocIo,
    /// Submit-to-dispatch wait for one serving-layer job.
    QueueWait,
    /// First-job-received to execution-start window for one micro-batch.
    BatchAssembly,
    /// One shard's query call inside the fan-out backend.
    ShardQuery,
}

impl Stage {
    /// Every stage, in stable export order.
    pub const ALL: [Stage; 7] = [
        Stage::Probe,
        Stage::Escalate,
        Stage::Rank,
        Stage::OocIo,
        Stage::QueueWait,
        Stage::BatchAssembly,
        Stage::ShardQuery,
    ];

    /// Stable snake_case name used in every export format.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Probe => "probe",
            Stage::Escalate => "escalate",
            Stage::Rank => "rank",
            Stage::OocIo => "ooc_io",
            Stage::QueueWait => "queue_wait",
            Stage::BatchAssembly => "batch_assembly",
            Stage::ShardQuery => "shard_query",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Dimensionless observations with value histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Value {
    /// Candidate-set size per query after probing (and escalation).
    CandidatesPerQuery,
    /// Jobs per dispatched micro-batch.
    BatchSize,
    /// Degradation-ladder rung a response was served at (0 = full).
    Rung,
}

impl Value {
    /// Every value kind, in stable export order.
    pub const ALL: [Value; 3] = [Value::CandidatesPerQuery, Value::BatchSize, Value::Rung];

    /// Stable snake_case name used in every export format.
    pub const fn name(self) -> &'static str {
        match self {
            Value::CandidatesPerQuery => "candidates_per_query",
            Value::BatchSize => "batch_size",
            Value::Rung => "rung",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Sink for pipeline events. Object safe; implementations must be shareable
/// across the query worker pool (`Send + Sync`).
///
/// All methods have empty default bodies, so a no-op sink implements the
/// trait with `impl Recorder for MySink {}`. Instrumented code must guard
/// every clock read behind [`Recorder::enabled`] (or use [`SpanTimer`],
/// which does) so the noop path never touches `Instant::now()`.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether events are being kept. `false` lets call sites skip timing.
    fn enabled(&self) -> bool {
        false
    }

    /// Add `n` to a monotonic counter.
    fn add(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// Record one duration observation for a pipeline stage.
    fn time(&self, stage: Stage, elapsed: Duration) {
        let _ = (stage, elapsed);
    }

    /// Record one dimensionless observation.
    fn observe(&self, value: Value, x: u64) {
        let _ = (value, x);
    }
}

/// The zero-overhead default sink: drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Shared noop instance; the default `recorder` in query options borrows it.
pub static NOOP: NoopRecorder = NoopRecorder;

/// RAII span timer: reads the clock on construction and records the elapsed
/// duration on drop — but only when the recorder is enabled, so wrapping a
/// region in a `SpanTimer` against [`NoopRecorder`] costs one branch.
pub struct SpanTimer<'r> {
    recorder: &'r dyn Recorder,
    stage: Stage,
    start: Option<Instant>,
}

impl<'r> SpanTimer<'r> {
    /// Start timing `stage`; the observation lands when the timer drops.
    pub fn start(recorder: &'r dyn Recorder, stage: Stage) -> Self {
        let start = if recorder.enabled() { Some(Instant::now()) } else { None };
        SpanTimer { recorder, stage, start }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder.time(self.stage, start.elapsed());
        }
    }
}

/// Number of log2 buckets per histogram; bucket `b > 0` holds observations
/// in `[2^(b-1), 2^b)`, bucket 0 holds zeros, and the last bucket is open.
const HIST_BUCKETS: usize = 64;

/// Lock-free log2-bucketed histogram over `u64` observations.
struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_of(x: u64) -> usize {
        ((u64::BITS - x.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    fn record(&self, x: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(x, Ordering::Relaxed);
        self.max.fetch_max(x, Ordering::Relaxed);
        self.buckets[Self::bucket_of(x)].fetch_add(1, Ordering::Relaxed);
    }

    fn summary(&self) -> HistSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (b, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Representative value: the bucket's lower bound.
                    return if b == 0 { 0 } else { 1u64 << (b - 1) };
                }
            }
            self.max.load(Ordering::Relaxed)
        };
        HistSummary {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: quantile(0.5),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Aggregated view of one histogram at snapshot time. Quantiles are bucket
/// lower bounds (log2 resolution); `count`, `sum`, `mean`, and `max` are
/// exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (nanoseconds for stage histograms).
    pub sum: u64,
    /// Exact mean (`sum / count`), 0.0 when empty.
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Exact maximum observation.
    pub max: u64,
}

/// Lock-free aggregating recorder: atomics only, shareable across the whole
/// pipeline (core workers, OOC readers, the serve dispatcher) at once.
#[derive(Debug)]
pub struct InMemoryRecorder {
    counters: [AtomicU64; Counter::ALL.len()],
    stages: Vec<AtomicHistogram>,
    values: Vec<AtomicHistogram>,
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        write!(f, "AtomicHistogram(count={}, sum={}, max={})", s.count, s.sum, s.max)
    }
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        InMemoryRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stages: (0..Stage::ALL.len()).map(|_| AtomicHistogram::new()).collect(),
            values: (0..Value::ALL.len()).map(|_| AtomicHistogram::new()).collect(),
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Summary of one stage's duration histogram (nanoseconds).
    pub fn stage(&self, stage: Stage) -> HistSummary {
        self.stages[stage.index()].summary()
    }

    /// Summary of one value histogram.
    pub fn value(&self, value: Value) -> HistSummary {
        self.values[value.index()].summary()
    }

    /// Consistent-enough point-in-time aggregate of everything recorded.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: Counter::ALL.iter().map(|&c| (c.name(), self.counter(c))).collect(),
            stages: Stage::ALL.iter().map(|&s| (s.name(), self.stage(s))).collect(),
            values: Value::ALL.iter().map(|&v| (v.name(), self.value(v))).collect(),
        }
    }
}

impl Recorder for InMemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    fn time(&self, stage: Stage, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.stages[stage.index()].record(nanos);
    }

    fn observe(&self, value: Value, x: u64) {
        self.values[value.index()].record(x);
    }
}

/// Point-in-time aggregate of an [`InMemoryRecorder`], ready to export.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// `(name, value)` per counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, summary)` per stage duration histogram, nanoseconds.
    pub stages: Vec<(&'static str, HistSummary)>,
    /// `(name, summary)` per value histogram.
    pub values: Vec<(&'static str, HistSummary)>,
}

fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl TelemetrySnapshot {
    /// Render as Prometheus text exposition format: counters as
    /// `knn_<name>_total`, stage durations as `knn_stage_seconds` summaries,
    /// value histograms as `knn_value` summaries.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for &(name, v) in &self.counters {
            out.push_str(&format!("# TYPE knn_{name}_total counter\n"));
            out.push_str(&format!("knn_{name}_total {v}\n"));
        }
        out.push_str("# TYPE knn_stage_seconds summary\n");
        for &(name, s) in &self.stages {
            for (q, val) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                out.push_str(&format!(
                    "knn_stage_seconds{{stage=\"{name}\",quantile=\"{q}\"}} {}\n",
                    fmt_f64(val as f64 / 1e9)
                ));
            }
            out.push_str(&format!(
                "knn_stage_seconds_sum{{stage=\"{name}\"}} {}\n",
                fmt_f64(s.sum as f64 / 1e9)
            ));
            out.push_str(&format!("knn_stage_seconds_count{{stage=\"{name}\"}} {}\n", s.count));
        }
        out.push_str("# TYPE knn_value summary\n");
        for &(name, s) in &self.values {
            for (q, val) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                out.push_str(&format!("knn_value{{kind=\"{name}\",quantile=\"{q}\"}} {val}\n"));
            }
            out.push_str(&format!("knn_value_sum{{kind=\"{name}\"}} {}\n", s.sum));
            out.push_str(&format!("knn_value_count{{kind=\"{name}\"}} {}\n", s.count));
        }
        out
    }

    /// Render as a single-line JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let hist = |s: &HistSummary| {
            format!(
                "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                s.count,
                s.sum,
                fmt_f64(s.mean),
                s.p50,
                s.p95,
                s.p99,
                s.max
            )
        };
        let counters: Vec<String> =
            self.counters.iter().map(|(n, v)| format!("\"{n}\":{v}")).collect();
        let stages: Vec<String> =
            self.stages.iter().map(|(n, s)| format!("\"{n}\":{}", hist(s))).collect();
        let values: Vec<String> =
            self.values.iter().map(|(n, s)| format!("\"{n}\":{}", hist(s))).collect();
        format!(
            "{{\"counters\":{{{}}},\"stages_ns\":{{{}}},\"values\":{{{}}}}}",
            counters.join(","),
            stages.join(","),
            values.join(",")
        )
    }

    /// Render a human-readable stage breakdown (bench binaries print this).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
            "stage", "count", "total", "mean", "p95", "max"
        ));
        for &(name, s) in &self.stages {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
                name,
                s.count,
                fmt_nanos(s.sum as f64),
                fmt_nanos(s.mean),
                fmt_nanos(s.p95 as f64),
                fmt_nanos(s.max as f64),
            ));
        }
        let mut wrote_header = false;
        for &(name, v) in &self.counters {
            if v == 0 {
                continue;
            }
            if !wrote_header {
                out.push_str("\ncounters:\n");
                wrote_header = true;
            }
            out.push_str(&format!("  {name:<24} {v}\n"));
        }
        for &(name, s) in &self.values {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<24} count={} mean={:.1} p95={} max={}\n",
                name, s.count, s.mean, s.p95, s.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec: &dyn Recorder = &NOOP;
        assert!(!rec.enabled());
        rec.add(Counter::Escalations, 3);
        rec.time(Stage::Probe, Duration::from_micros(5));
        rec.observe(Value::BatchSize, 7);
        // A span timer against the noop recorder never reads the clock.
        let t = SpanTimer::start(rec, Stage::Rank);
        assert!(t.start.is_none());
    }

    #[test]
    fn counters_accumulate() {
        let rec = InMemoryRecorder::new();
        rec.add(Counter::Escalations, 2);
        rec.add(Counter::Escalations, 3);
        rec.add(Counter::OocBytesRead, 1024);
        assert_eq!(rec.counter(Counter::Escalations), 5);
        assert_eq!(rec.counter(Counter::OocBytesRead), 1024);
        assert_eq!(rec.counter(Counter::OocReads), 0);
    }

    #[test]
    fn histogram_summary_tracks_exact_moments() {
        let rec = InMemoryRecorder::new();
        for x in [1u64, 2, 3, 4, 100] {
            rec.observe(Value::CandidatesPerQuery, x);
        }
        let s = rec.value(Value::CandidatesPerQuery);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 110);
        assert_eq!(s.max, 100);
        assert!((s.mean - 22.0).abs() < 1e-9);
        // log2 buckets: p50 falls in the bucket holding 2..4.
        assert!(s.p50 >= 1 && s.p50 <= 4, "p50 = {}", s.p50);
        assert!(s.p99 <= 100);
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(AtomicHistogram::bucket_of(0), 0);
        assert_eq!(AtomicHistogram::bucket_of(1), 1);
        assert_eq!(AtomicHistogram::bucket_of(2), 2);
        assert_eq!(AtomicHistogram::bucket_of(3), 2);
        assert_eq!(AtomicHistogram::bucket_of(4), 3);
        assert_eq!(AtomicHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let rec = InMemoryRecorder::new();
        {
            let _t = SpanTimer::start(&rec, Stage::Probe);
            std::thread::sleep(Duration::from_millis(1));
        }
        let s = rec.stage(Stage::Probe);
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000_000, "recorded {}ns", s.sum);
    }

    #[test]
    fn prometheus_export_shape() {
        let rec = InMemoryRecorder::new();
        rec.add(Counter::QueriesProbed, 7);
        rec.time(Stage::Probe, Duration::from_micros(10));
        rec.observe(Value::BatchSize, 4);
        let text = rec.snapshot().to_prometheus();
        assert!(text.contains("knn_queries_probed_total 7"));
        assert!(text.contains("knn_stage_seconds_count{stage=\"probe\"} 1"));
        assert!(text.contains("knn_value_count{kind=\"batch_size\"} 1"));
        assert!(text.contains("# TYPE knn_stage_seconds summary"));
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.split_whitespace().count() == 2, "{line}");
        }
    }

    #[test]
    fn json_export_is_well_formed() {
        let rec = InMemoryRecorder::new();
        rec.add(Counter::OocReads, 3);
        rec.time(Stage::OocIo, Duration::from_nanos(500));
        let json = rec.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ooc_reads\":3"));
        assert!(json.contains("\"ooc_io\":{\"count\":1,\"sum\":500"));
        // Balanced braces and no trailing commas before closers.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",}") && !json.contains(",]"));
    }

    #[test]
    fn table_skips_empty_rows() {
        let rec = InMemoryRecorder::new();
        rec.time(Stage::Rank, Duration::from_micros(42));
        rec.add(Counter::CandidatesGenerated, 9);
        let table = rec.snapshot().render_table();
        assert!(table.contains("rank"));
        assert!(!table.contains("queue_wait"));
        assert!(table.contains("candidates_generated"));
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(InMemoryRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        rec.add(Counter::QueriesProbed, 1);
                        rec.observe(Value::CandidatesPerQuery, 17);
                    }
                });
            }
        });
        assert_eq!(rec.counter(Counter::QueriesProbed), 4000);
        assert_eq!(rec.value(Value::CandidatesPerQuery).count, 4000);
    }
}
