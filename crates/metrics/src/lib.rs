#![warn(missing_docs)]

//! Quality and cost metrics for approximate KNN search.
//!
//! Implements the three measurements of the paper's Section II-A — recall
//! ratio (Eq. 3), error ratio (Eq. 4), and selectivity (Eq. 5) — plus the
//! aggregation machinery Section VI-B uses: means and standard deviations
//! taken over queries (`r_2`) and over repeated runs with fresh random
//! projections (`r_1`), which become the deviation "ellipses" in the
//! figures.

pub mod curve;
pub mod quality;
pub mod significance;
pub mod stats;

pub use curve::{auc_advantage, QualityCurve};
pub use quality::{error_ratio, recall, selectivity, QueryEval};
pub use significance::{paired_bootstrap, BootstrapResult};
pub use stats::{LatencyHistogram, MeanStd, RunAggregate, SeriesPoint};
