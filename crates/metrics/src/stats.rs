//! Aggregation over queries and over repeated runs.
//!
//! The paper's Section VI-B2 treats every measurement as a random variable
//! of two sources of randomness: the projection draw (`r_1`) and the query
//! draw (`r_2`). For each bucket width `W` it reports
//! `E[·]` plus `Std_{r_1}(E_{r_2}[·])` (deviation over projections) and
//! `Std_{r_2}(E_{r_1}[·])` (deviation over queries). [`RunAggregate`]
//! implements exactly those reductions from a `runs × queries` matrix.

use crate::quality::QueryEval;
use serde::{Deserialize, Serialize};

/// A mean with its standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and population standard deviation of `xs`.
    ///
    /// Returns zeros for an empty slice (harness convenience).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self { mean: 0.0, std: 0.0 };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Self { mean, std: var.sqrt() }
    }
}

/// One point of a selectivity-vs-quality curve, with both deviation sources
/// — the data behind one ellipse in Figures 5–12.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The bucket width that produced this point.
    pub w: f64,
    /// Mean selectivity over all (run, query) cells.
    pub selectivity: f64,
    /// Selectivity deviation over projections, `Std_{r1}(E_{r2}[τ])`.
    pub selectivity_std_proj: f64,
    /// Selectivity deviation over queries, `Std_{r2}(E_{r1}[τ])`.
    pub selectivity_std_query: f64,
    /// Mean recall over all (run, query) cells.
    pub recall: f64,
    /// Recall deviation over projections.
    pub recall_std_proj: f64,
    /// Recall deviation over queries.
    pub recall_std_query: f64,
    /// Mean error ratio over all (run, query) cells.
    pub error_ratio: f64,
    /// Error-ratio deviation over projections.
    pub error_std_proj: f64,
    /// Error-ratio deviation over queries.
    pub error_std_query: f64,
}

/// A `runs × queries` matrix of per-query evaluations (one run per random
/// projection draw).
#[derive(Debug, Clone)]
pub struct RunAggregate {
    runs: Vec<Vec<QueryEval>>,
}

impl RunAggregate {
    /// Wraps per-run evaluation vectors.
    ///
    /// # Panics
    ///
    /// Panics if runs are empty or disagree on query count.
    pub fn new(runs: Vec<Vec<QueryEval>>) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let nq = runs[0].len();
        assert!(nq > 0, "need at least one query");
        assert!(runs.iter().all(|r| r.len() == nq), "runs disagree on query count");
        Self { runs }
    }

    fn field(&self, f: impl Fn(&QueryEval) -> f64 + Copy) -> (f64, f64, f64) {
        // Grand mean over all (run, query) cells.
        let all: Vec<f64> = self.runs.iter().flat_map(|r| r.iter().map(f)).collect();
        let grand = MeanStd::of(&all).mean;
        // Std over runs of the per-run query means: Std_{r1}(E_{r2}).
        let run_means: Vec<f64> = self
            .runs
            .iter()
            .map(|r| MeanStd::of(&r.iter().map(f).collect::<Vec<_>>()).mean)
            .collect();
        let std_proj = MeanStd::of(&run_means).std;
        // Std over queries of the per-query run means: Std_{r2}(E_{r1}).
        let nq = self.runs[0].len();
        let query_means: Vec<f64> = (0..nq)
            .map(|q| {
                let xs: Vec<f64> = self.runs.iter().map(|r| f(&r[q])).collect();
                MeanStd::of(&xs).mean
            })
            .collect();
        let std_query = MeanStd::of(&query_means).std;
        (grand, std_proj, std_query)
    }

    /// Reduces the matrix to one curve point for bucket width `w`.
    pub fn series_point(&self, w: f64) -> SeriesPoint {
        let (selectivity, selectivity_std_proj, selectivity_std_query) =
            self.field(|e| e.selectivity);
        let (recall, recall_std_proj, recall_std_query) = self.field(|e| e.recall);
        let (error_ratio, error_std_proj, error_std_query) = self.field(|e| e.error_ratio);
        SeriesPoint {
            w,
            selectivity,
            selectivity_std_proj,
            selectivity_std_query,
            recall,
            recall_std_proj,
            recall_std_query,
            error_ratio,
            error_std_proj,
            error_std_query,
        }
    }
}

/// A log-bucketed latency histogram with percentile readout.
///
/// Buckets are half-open ranges of nanoseconds whose widths grow
/// geometrically (each bucket covers one power of two), so a single fixed
/// 64-slot array spans nanoseconds to centuries with bounded relative
/// error: every sample lands in the bucket `floor(log2(ns))`, and a
/// percentile is reported as that bucket's upper bound — at most 2× the
/// true value, which is the usual operating-metrics tradeoff.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; 64], count: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    fn bucket_of(ns: u64) -> usize {
        // 0 ns maps to bucket 0; otherwise floor(log2(ns)).
        63 - ns.max(1).leading_zeros() as usize
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: std::time::Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> std::time::Duration {
        if self.count == 0 {
            return std::time::Duration::ZERO;
        }
        std::time::Duration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
    }

    /// Largest recorded sample, or zero when empty.
    pub fn max(&self) -> std::time::Duration {
        if self.count == 0 {
            return std::time::Duration::ZERO;
        }
        std::time::Duration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound, clamped to
    /// the observed min/max so p0 and p100 stay exact. Zero when empty.
    pub fn percentile(&self, q: f64) -> std::time::Duration {
        if self.count == 0 {
            return std::time::Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based ceil so p100 = last sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket b is 2^(b+1) - 1.
                let hi = if b >= 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
                return std::time::Duration::from_nanos(hi.clamp(self.min_ns, self.max_ns));
            }
        }
        std::time::Duration::from_nanos(self.max_ns)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(recall: f64, error_ratio: f64, selectivity: f64) -> QueryEval {
        QueryEval { recall, error_ratio, selectivity }
    }

    #[test]
    fn mean_std_hand_computed() {
        let m = MeanStd::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m.mean - 2.5).abs() < 1e-12);
        assert!((m.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_std_of_constant_is_zero_std() {
        let m = MeanStd::of(&[7.0; 10]);
        assert_eq!(m.mean, 7.0);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn mean_std_empty_is_zeroes() {
        let m = MeanStd::of(&[]);
        assert_eq!(m, MeanStd { mean: 0.0, std: 0.0 });
    }

    #[test]
    fn identical_runs_have_zero_projection_std() {
        let run = vec![eval(0.5, 0.9, 0.1), eval(0.7, 0.95, 0.2)];
        let agg = RunAggregate::new(vec![run.clone(), run]);
        let p = agg.series_point(1.0);
        assert_eq!(p.recall_std_proj, 0.0);
        // Queries differ, so query std is positive.
        assert!(p.recall_std_query > 0.0);
        assert!((p.recall - 0.6).abs() < 1e-12);
    }

    #[test]
    fn identical_queries_have_zero_query_std() {
        let r1 = vec![eval(0.4, 0.8, 0.1), eval(0.4, 0.8, 0.1)];
        let r2 = vec![eval(0.8, 0.9, 0.3), eval(0.8, 0.9, 0.3)];
        let agg = RunAggregate::new(vec![r1, r2]);
        let p = agg.series_point(2.0);
        assert_eq!(p.recall_std_query, 0.0);
        assert!(p.recall_std_proj > 0.0);
        assert!((p.recall - 0.6).abs() < 1e-12);
        assert_eq!(p.w, 2.0);
    }

    #[test]
    fn grand_mean_over_all_cells() {
        let agg = RunAggregate::new(vec![
            vec![eval(0.0, 1.0, 0.0), eval(1.0, 1.0, 0.2)],
            vec![eval(0.5, 1.0, 0.4), eval(0.5, 1.0, 0.6)],
        ]);
        let p = agg.series_point(0.5);
        assert!((p.recall - 0.5).abs() < 1e-12);
        assert!((p.selectivity - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "disagree on query count")]
    fn ragged_runs_panic() {
        let _ = RunAggregate::new(vec![vec![eval(1.0, 1.0, 0.1)], vec![]]);
    }

    use std::time::Duration;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        // One sample: every percentile clamps to the observed min == max.
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(q), Duration::from_micros(100));
        }
        assert_eq!(h.mean(), Duration::from_micros(100));
    }

    #[test]
    fn percentile_is_within_one_bucket_of_truth() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        // True p50 is 500 µs; a log2 bucket bound can overshoot by < 2x.
        let p50 = h.percentile(0.5).as_nanos() as u64;
        assert!((500_000..1_000_000).contains(&p50), "p50 = {p50} ns");
        let p99 = h.percentile(0.99).as_nanos() as u64;
        assert!((990_000..1_980_000).contains(&p99), "p99 = {p99} ns");
        // p100 is clamped to the exact max.
        assert_eq!(h.percentile(1.0), Duration::from_micros(1000));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for us in [3u64, 17, 90, 1200] {
            a.record(Duration::from_micros(us));
            both.record(Duration::from_micros(us));
        }
        for us in [5u64, 40, 7000] {
            b.record(Duration::from_micros(us));
            both.record(Duration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean(), both.mean());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.percentile(q), both.percentile(q));
        }
    }
}
