//! Curve utilities for comparing methods "given the same selectivity
//! budget" — the comparison every quality figure in the paper makes.
//!
//! Method sweeps produce sampled `(selectivity, recall)` points at different
//! widths, so comparing two methods at a *common* selectivity needs
//! interpolation; summarizing a whole curve into one number uses the area
//! under the selectivity→recall curve over a fixed selectivity window.

use crate::stats::SeriesPoint;

/// A monotone selectivity→quality curve assembled from sweep points.
#[derive(Debug, Clone)]
pub struct QualityCurve {
    /// `(selectivity, quality)` pairs, sorted by ascending selectivity.
    points: Vec<(f64, f64)>,
}

impl QualityCurve {
    /// Builds a selectivity→recall curve from sweep points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn recall_curve(points: &[SeriesPoint]) -> Self {
        Self::new(points.iter().map(|p| (p.selectivity, p.recall)).collect())
    }

    /// Builds a selectivity→error-ratio curve from sweep points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn error_curve(points: &[SeriesPoint]) -> Self {
        Self::new(points.iter().map(|p| (p.selectivity, p.error_ratio)).collect())
    }

    /// Builds a curve from raw `(selectivity, quality)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn new(mut pairs: Vec<(f64, f64)>) -> Self {
        assert!(!pairs.is_empty(), "curve needs at least one point");
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Collapse duplicate selectivities by keeping the best quality —
        // sweeps can produce repeated τ at saturation.
        let mut dedup: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
        for (s, q) in pairs {
            match dedup.last_mut() {
                Some((ls, lq)) if (*ls - s).abs() < 1e-12 => *lq = lq.max(q),
                _ => dedup.push((s, q)),
            }
        }
        Self { points: dedup }
    }

    /// Quality at selectivity `tau` by linear interpolation; clamped to the
    /// curve's endpoints outside the sampled range.
    pub fn at(&self, tau: f64) -> f64 {
        let pts = &self.points;
        if tau <= pts[0].0 {
            return pts[0].1;
        }
        if tau >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let hi = pts.partition_point(|&(s, _)| s < tau);
        let (s0, q0) = pts[hi - 1];
        let (s1, q1) = pts[hi];
        if s1 - s0 <= 0.0 {
            return q0.max(q1);
        }
        q0 + (q1 - q0) * (tau - s0) / (s1 - s0)
    }

    /// Area under the curve over `[lo, hi]`, normalized by the window width
    /// — the mean quality over that selectivity window (1.0 is perfect).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn auc(&self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty integration window");
        const STEPS: usize = 256;
        let mut sum = 0.0;
        // Trapezoid rule over a uniform grid; the curve is piecewise linear,
        // so a fine grid is exact up to the grid resolution.
        let h = (hi - lo) / STEPS as f64;
        for i in 0..=STEPS {
            let w = if i == 0 || i == STEPS { 0.5 } else { 1.0 };
            sum += w * self.at(lo + h * i as f64);
        }
        sum * h / (hi - lo)
    }

    /// The sampled points (sorted, deduplicated).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Compares two methods over a selectivity window: positive means `a`
/// dominates (higher mean quality at equal selectivity).
pub fn auc_advantage(a: &QualityCurve, b: &QualityCurve, lo: f64, hi: f64) -> f64 {
    a.auc(lo, hi) - b.auc(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> QualityCurve {
        QualityCurve::new(vec![(0.0, 0.0), (1.0, 1.0)])
    }

    #[test]
    fn interpolates_linearly() {
        let c = line();
        assert!((c.at(0.25) - 0.25).abs() < 1e-12);
        assert!((c.at(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_range() {
        let c = QualityCurve::new(vec![(0.1, 0.3), (0.5, 0.9)]);
        assert_eq!(c.at(0.0), 0.3);
        assert_eq!(c.at(1.0), 0.9);
    }

    #[test]
    fn auc_of_identity_is_half() {
        let auc = line().auc(0.0, 1.0);
        assert!((auc - 0.5).abs() < 1e-3, "auc {auc}");
    }

    #[test]
    fn auc_of_constant_is_the_constant() {
        let c = QualityCurve::new(vec![(0.0, 0.7), (1.0, 0.7)]);
        assert!((c.auc(0.2, 0.8) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn duplicate_selectivities_keep_best_quality() {
        let c = QualityCurve::new(vec![(0.5, 0.2), (0.5, 0.6), (1.0, 1.0)]);
        assert_eq!(c.at(0.5), 0.6);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let c = QualityCurve::new(vec![(0.9, 0.9), (0.1, 0.1)]);
        assert!((c.at(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn advantage_sign_reflects_dominance() {
        let strong = QualityCurve::new(vec![(0.0, 0.5), (1.0, 1.0)]);
        let weak = QualityCurve::new(vec![(0.0, 0.0), (1.0, 0.5)]);
        assert!(auc_advantage(&strong, &weak, 0.0, 1.0) > 0.0);
        assert!(auc_advantage(&weak, &strong, 0.0, 1.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_curve_panics() {
        let _ = QualityCurve::new(Vec::new());
    }
}
