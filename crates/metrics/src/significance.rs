//! Paired bootstrap significance testing for method comparisons.
//!
//! "Method A has recall 0.83 and method B 0.80" is only meaningful if the
//! difference survives the query-sampling noise. The paired bootstrap
//! resamples queries with replacement and measures how often the sign of
//! the mean difference flips — a distribution-free test that matches how
//! the harness collects per-query metrics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a paired bootstrap comparison of per-query scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapResult {
    /// Mean per-query difference `a − b` on the full sample.
    pub mean_diff: f64,
    /// Fraction of bootstrap resamples in which the mean difference had the
    /// opposite sign (or was zero): a one-sided achieved significance
    /// level. Small values (< 0.05) mean the observed sign is stable.
    pub p_value: f64,
    /// 95% percentile confidence interval of the mean difference.
    pub ci95: (f64, f64),
}

impl BootstrapResult {
    /// Whether the difference is significant at the given level (e.g.
    /// `0.05`).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a paired bootstrap over per-query score vectors `a` and `b`
/// (`a[i]` and `b[i]` must be the same query under two methods).
///
/// # Panics
///
/// Panics if the vectors are empty, have different lengths, or
/// `resamples == 0`.
pub fn paired_bootstrap(a: &[f64], b: &[f64], resamples: usize, seed: u64) -> BootstrapResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    assert!(!a.is_empty(), "need at least one query");
    assert!(resamples > 0, "need at least one resample");
    let n = a.len();
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean_diff = diffs.iter().sum::<f64>() / n as f64;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    let mut flips = 0usize;
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += diffs[rng.gen_range(0..n)];
        }
        let m = sum / n as f64;
        means.push(m);
        // Sign flip relative to the observed direction (zero observed
        // difference counts every resample as a flip — maximally unsure).
        if mean_diff == 0.0 || m.signum() != mean_diff.signum() || m == 0.0 {
            flips += 1;
        }
    }
    means.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let lo = means[(resamples as f64 * 0.025) as usize];
    let hi = means[((resamples as f64 * 0.975) as usize).min(resamples - 1)];
    BootstrapResult { mean_diff, p_value: flips as f64 / resamples as f64, ci95: (lo, hi) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let a: Vec<f64> = (0..200).map(|i| 0.8 + 0.01 * ((i % 7) as f64 - 3.0)).collect();
        let b: Vec<f64> = (0..200).map(|i| 0.6 + 0.01 * ((i % 5) as f64 - 2.0)).collect();
        let r = paired_bootstrap(&a, &b, 1000, 1);
        assert!(r.mean_diff > 0.15);
        assert!(r.significant(0.05), "p = {}", r.p_value);
        assert!(r.ci95.0 > 0.0, "CI {:?} should exclude zero", r.ci95);
    }

    #[test]
    fn identical_methods_are_not_significant() {
        let a: Vec<f64> = (0..100).map(|i| (i % 10) as f64 / 10.0).collect();
        let r = paired_bootstrap(&a, &a, 500, 2);
        assert_eq!(r.mean_diff, 0.0);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn noisy_tiny_difference_is_not_significant() {
        // Difference far below the per-query noise floor.
        let a: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let r = paired_bootstrap(&a, &b, 1000, 3);
        assert!(!r.significant(0.01), "p = {} for pure noise", r.p_value);
        assert!(r.ci95.0 < 0.0 && r.ci95.1 > 0.0, "CI {:?} should straddle zero", r.ci95);
    }

    #[test]
    fn ci_brackets_the_mean() {
        let a: Vec<f64> = (0..80).map(|i| 0.5 + (i as f64 % 13.0) / 40.0).collect();
        let b: Vec<f64> = (0..80).map(|i| 0.45 + (i as f64 % 11.0) / 40.0).collect();
        let r = paired_bootstrap(&a, &b, 800, 4);
        assert!(r.ci95.0 <= r.mean_diff && r.mean_diff <= r.ci95.1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = vec![0.9, 0.8, 0.7, 0.95];
        let b = vec![0.6, 0.7, 0.65, 0.8];
        let r1 = paired_bootstrap(&a, &b, 200, 42);
        let r2 = paired_bootstrap(&a, &b, 200, 42);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 0);
    }
}
