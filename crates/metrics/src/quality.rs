//! Per-query quality measurements: recall, error ratio, selectivity.

use vecstore::Neighbor;

/// Recall ratio (Equation 3): the fraction of the exact k-nearest neighbors
/// present in the approximate result, `|N(v) ∩ I(v)| / |N(v)|`.
///
/// Membership is by item id. Returns 1.0 for an empty ground truth (nothing
/// was missed).
pub fn recall(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let mut approx_ids: Vec<usize> = approx.iter().map(|n| n.id).collect();
    approx_ids.sort_unstable();
    let hits = exact.iter().filter(|n| approx_ids.binary_search(&n.id).is_ok()).count();
    hits as f64 / exact.len() as f64
}

/// Error ratio (Equation 4): `1/k · Σ_i ‖v − N_i‖ / ‖v − I_i‖`, comparing
/// the i-th exact and i-th approximate neighbor distances.
///
/// Both inputs must be sorted ascending by distance (as every engine in this
/// workspace returns them). A perfect result scores 1.0; misses score below
/// 1.0 because the approximate i-th distance is then larger. When the
/// approximate result has fewer than `k` entries the missing positions score
/// 0 (infinite approximate distance), matching the paper's convention that
/// insufficient candidates hurt quality. Distance ratios with zero
/// denominators (exact duplicates of the query) count as 1.
pub fn error_ratio(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let k = exact.len();
    let mut sum = 0.0f64;
    for (i, n) in exact.iter().enumerate() {
        // Positions past the approximate tail score 0 (missing neighbor).
        if let Some(a) = approx.get(i) {
            if a.dist <= 0.0 {
                sum += 1.0; // query duplicated in the dataset
            } else {
                sum += (n.dist as f64 / a.dist as f64).min(1.0);
            }
        }
    }
    sum / k as f64
}

/// Selectivity (Equation 5): candidate-set size over dataset size — the cost
/// proxy for short-list search.
///
/// # Panics
///
/// Panics if `dataset_size == 0`.
pub fn selectivity(candidates: usize, dataset_size: usize) -> f64 {
    assert!(dataset_size > 0, "selectivity of empty dataset");
    candidates as f64 / dataset_size as f64
}

/// One query's full evaluation record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEval {
    /// Recall ratio ρ.
    pub recall: f64,
    /// Error ratio κ.
    pub error_ratio: f64,
    /// Selectivity τ.
    pub selectivity: f64,
}

impl QueryEval {
    /// Evaluates one query given ground truth, the approximate result, and
    /// the number of short-list candidates inspected.
    pub fn compute(
        exact: &[Neighbor],
        approx: &[Neighbor],
        candidates: usize,
        dataset_size: usize,
    ) -> Self {
        Self {
            recall: recall(exact, approx),
            error_ratio: error_ratio(exact, approx),
            selectivity: selectivity(candidates, dataset_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: usize, dist: f32) -> Neighbor {
        Neighbor { id, dist }
    }

    #[test]
    fn perfect_result_scores_one() {
        let exact = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        assert_eq!(recall(&exact, &exact), 1.0);
        assert_eq!(error_ratio(&exact, &exact), 1.0);
    }

    #[test]
    fn recall_counts_membership_not_order() {
        let exact = vec![n(1, 1.0), n(2, 2.0)];
        let approx = vec![n(2, 2.0), n(1, 1.0)];
        assert_eq!(recall(&exact, &approx), 1.0);
    }

    #[test]
    fn recall_half_when_one_of_two_found() {
        let exact = vec![n(1, 1.0), n(2, 2.0)];
        let approx = vec![n(1, 1.0), n(9, 5.0)];
        assert_eq!(recall(&exact, &approx), 0.5);
    }

    #[test]
    fn recall_of_empty_approx_is_zero() {
        let exact = vec![n(1, 1.0)];
        assert_eq!(recall(&exact, &[]), 0.0);
    }

    #[test]
    fn error_ratio_penalizes_farther_substitutes() {
        let exact = vec![n(1, 1.0), n(2, 2.0)];
        // Second neighbor replaced by one at distance 4: ratio (1 + 0.5)/2.
        let approx = vec![n(1, 1.0), n(9, 4.0)];
        assert!((error_ratio(&exact, &approx) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn error_ratio_caps_at_one() {
        // An approximate list can't score above 1 even with odd inputs.
        let exact = vec![n(1, 2.0)];
        let approx = vec![n(3, 1.0)];
        assert!(error_ratio(&exact, &approx) <= 1.0);
    }

    #[test]
    fn error_ratio_with_missing_tail() {
        let exact = vec![n(1, 1.0), n(2, 1.0)];
        let approx = vec![n(1, 1.0)];
        assert!((error_ratio(&exact, &approx) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_ratio_zero_distance_duplicate() {
        let exact = vec![n(1, 0.0)];
        let approx = vec![n(1, 0.0)];
        assert_eq!(error_ratio(&exact, &approx), 1.0);
    }

    #[test]
    fn selectivity_fraction() {
        assert_eq!(selectivity(50, 200), 0.25);
        assert_eq!(selectivity(0, 10), 0.0);
    }

    #[test]
    fn query_eval_bundles_all_three() {
        let exact = vec![n(1, 1.0)];
        let e = QueryEval::compute(&exact, &exact, 10, 100);
        assert_eq!(e.recall, 1.0);
        assert_eq!(e.error_ratio, 1.0);
        assert!((e.selectivity - 0.1).abs() < 1e-12);
    }
}
