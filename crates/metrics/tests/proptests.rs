//! Property-based tests: quality metrics stay in range, exactness scores
//! perfectly, and aggregation is consistent with hand reductions.

use knn_metrics::{error_ratio, recall, MeanStd, QueryEval, RunAggregate};
use proptest::prelude::*;
use vecstore::Neighbor;

fn neighbor_list() -> impl Strategy<Value = Vec<Neighbor>> {
    prop::collection::vec((0usize..1000, 0u32..10_000), 0..40).prop_map(|mut v| {
        // Sorted ascending by distance, unique ids.
        v.sort_by_key(|&(_, d)| d);
        let mut seen = std::collections::HashSet::new();
        v.into_iter()
            .filter(|&(id, _)| seen.insert(id))
            .map(|(id, d)| Neighbor { id, dist: d as f32 / 16.0 })
            .collect()
    })
}

proptest! {
    #[test]
    fn recall_is_in_unit_interval(a in neighbor_list(), b in neighbor_list()) {
        let r = recall(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn error_ratio_is_in_unit_interval(a in neighbor_list(), b in neighbor_list()) {
        let e = error_ratio(&a, &b);
        prop_assert!((0.0..=1.0).contains(&e), "error ratio {e}");
    }

    #[test]
    fn perfect_answer_scores_one(a in neighbor_list()) {
        prop_assert_eq!(recall(&a, &a), 1.0);
        let e = error_ratio(&a, &a);
        prop_assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recall_counts_intersection(a in neighbor_list(), b in neighbor_list()) {
        if a.is_empty() {
            prop_assert_eq!(recall(&a, &b), 1.0);
        } else {
            let ids: std::collections::HashSet<usize> = b.iter().map(|n| n.id).collect();
            let want = a.iter().filter(|n| ids.contains(&n.id)).count() as f64 / a.len() as f64;
            prop_assert_eq!(recall(&a, &b), want);
        }
    }

    #[test]
    fn superset_never_lowers_recall(a in neighbor_list(), b in neighbor_list(), extra in neighbor_list()) {
        let mut bigger = b.clone();
        bigger.extend(extra);
        prop_assert!(recall(&a, &bigger) + 1e-12 >= recall(&a, &b));
    }

    #[test]
    fn mean_std_matches_naive(xs in prop::collection::vec(-100.0f64..100.0, 1..60)) {
        let m = MeanStd::of(&xs);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((m.mean - mean).abs() < 1e-9);
        prop_assert!((m.std - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn aggregate_grand_mean_matches_flat_mean(
        cells in prop::collection::vec(prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..10), 1..6),
    ) {
        let nq = cells[0].len();
        let runs: Vec<Vec<QueryEval>> = cells
            .iter()
            .map(|run| {
                run.iter()
                    .cycle()
                    .take(nq)
                    .map(|&(r, e, s)| QueryEval { recall: r, error_ratio: e, selectivity: s })
                    .collect()
            })
            .collect();
        let flat_mean: f64 = runs.iter().flatten().map(|e| e.recall).sum::<f64>()
            / (runs.len() * nq) as f64;
        let point = RunAggregate::new(runs).series_point(1.0);
        prop_assert!((point.recall - flat_mean).abs() < 1e-9);
        prop_assert!(point.recall_std_proj >= 0.0);
        prop_assert!(point.recall_std_query >= 0.0);
    }
}
