//! The cuckoo table implementation: slots of atomic item indices, bounded
//! eviction chains, a stash, and reseed-on-failure construction.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for an unoccupied slot.
const EMPTY: u64 = u64::MAX;

/// Number of sub-hash functions (Alcantara et al. use 4).
pub const NUM_HASHES: usize = 4;

/// Highest accepted load factor. With 4 sub-hashes, construction succeeds
/// reliably up to ~0.9; beyond that the failure probability climbs so fast
/// that a request for e.g. `load = 1.0` would burn every rebuild attempt
/// before erroring. Misconfiguration fails fast instead.
pub const MAX_LOAD: f64 = 0.95;

/// Construction failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CuckooError {
    /// The table could not place every item even after reseeding and stash
    /// overflow; carries the number of items unplaced on the final attempt.
    Unplaced {
        /// Number of items that could not be placed on the final attempt.
        unplaced: usize,
    },
    /// The requested load factor is outside `(0, MAX_LOAD]`. Returned up
    /// front — before any placement attempt — so callers such as a serving
    /// layer can surface the misconfiguration as a typed overload instead of
    /// unwinding through a panic.
    Overloaded {
        /// The rejected load factor.
        load: f64,
    },
}

impl std::fmt::Display for CuckooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CuckooError::Unplaced { unplaced } => {
                write!(f, "cuckoo construction failed: {unplaced} items unplaced")
            }
            CuckooError::Overloaded { load } => {
                write!(f, "cuckoo load factor {load} outside (0, {MAX_LOAD}]")
            }
        }
    }
}

impl std::error::Error for CuckooError {}

/// Multiply-xor-shift sub-hash family over `u64` keys.
#[derive(Debug, Clone)]
struct HashSeeds {
    mul: [u64; NUM_HASHES],
    add: [u64; NUM_HASHES],
}

impl HashSeeds {
    fn sample(rng: &mut StdRng) -> Self {
        let mut mul = [0u64; NUM_HASHES];
        let mut add = [0u64; NUM_HASHES];
        for i in 0..NUM_HASHES {
            mul[i] = rng.gen::<u64>() | 1; // odd multiplier
            add[i] = rng.gen::<u64>();
        }
        Self { mul, add }
    }

    #[inline]
    fn slot(&self, which: usize, key: u64, num_slots: usize) -> usize {
        let mut x = key.wrapping_add(self.add[which]);
        x ^= x >> 33;
        x = x.wrapping_mul(self.mul[which]);
        x ^= x >> 29;
        (x % num_slots as u64) as usize
    }
}

/// An immutable-after-build cuckoo hash map from `u64` keys to `u64` values.
///
/// Keys must be distinct; `u64::MAX` is reserved as the empty sentinel and
/// may not be used as a key.
#[derive(Debug)]
pub struct CuckooTable {
    /// `slots[s]` holds an index into `items`, or `EMPTY`.
    slots: Vec<AtomicU64>,
    /// The stored `(key, value)` pairs.
    items: Vec<(u64, u64)>,
    /// Overflow items that lost their eviction chains.
    stash: Vec<(u64, u64)>,
    seeds: HashSeeds,
    max_chain: usize,
}

impl CuckooTable {
    /// Builds a table over `items` serially with the default load factor
    /// (slots = 2 × items, as in the GPU paper's robust configuration).
    ///
    /// # Errors
    ///
    /// Returns [`CuckooError`] if construction fails even after reseeding
    /// (practically impossible below load factor ~0.9 with 4 hashes).
    ///
    /// # Panics
    ///
    /// Panics if a key equals `u64::MAX` or keys are duplicated.
    pub fn build(items: Vec<(u64, u64)>, seed: u64) -> Result<Self, CuckooError> {
        Self::build_with_load(items, 0.5, seed)
    }

    /// Builds with an explicit load factor `items / slots`.
    ///
    /// # Errors
    ///
    /// Returns [`CuckooError::Overloaded`] when `load` is outside
    /// `(0, MAX_LOAD]` — loads near 1.0 cannot be built with 4 sub-hashes
    /// and would only waste every rebuild attempt — and
    /// [`CuckooError::Unplaced`] when placement fails after all reseeds.
    pub fn build_with_load(
        items: Vec<(u64, u64)>,
        load: f64,
        seed: u64,
    ) -> Result<Self, CuckooError> {
        if !(load > 0.0 && load <= MAX_LOAD) {
            return Err(CuckooError::Overloaded { load });
        }
        Self::build_inner(items, load, seed, 1)
    }

    /// Builds using `threads` worker threads racing CAS/exchange insertions —
    /// the CPU port of the GPU construction kernel. Agrees with the serial
    /// build on membership (slot placement may differ).
    ///
    /// # Errors
    ///
    /// Returns [`CuckooError::Overloaded`] when `load` is outside
    /// `(0, MAX_LOAD]` (see [`CuckooTable::build_with_load`]).
    pub fn build_parallel(
        items: Vec<(u64, u64)>,
        load: f64,
        seed: u64,
        threads: usize,
    ) -> Result<Self, CuckooError> {
        if !(load > 0.0 && load <= MAX_LOAD) {
            return Err(CuckooError::Overloaded { load });
        }
        Self::build_inner(items, load, seed, threads.max(1))
    }

    fn build_inner(
        items: Vec<(u64, u64)>,
        load: f64,
        seed: u64,
        threads: usize,
    ) -> Result<Self, CuckooError> {
        assert!(items.iter().all(|&(k, _)| k != EMPTY), "u64::MAX is a reserved key");
        {
            let mut keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
            keys.sort_unstable();
            assert!(keys.windows(2).all(|w| w[0] != w[1]), "duplicate keys");
        }
        let num_slots = ((items.len() as f64 / load).ceil() as usize).max(NUM_HASHES).max(1);
        // Chain bound from the GPU paper: a small multiple of log n.
        let max_chain = 4 * (usize::BITS - num_slots.leading_zeros()) as usize + 16;
        let mut rng = StdRng::seed_from_u64(seed);

        const MAX_REBUILDS: usize = 16;
        let mut last_unplaced = 0usize;
        for _attempt in 0..MAX_REBUILDS {
            let seeds = HashSeeds::sample(&mut rng);
            let slots: Vec<AtomicU64> = (0..num_slots).map(|_| AtomicU64::new(EMPTY)).collect();
            let stash: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
            let stash_cap = (items.len() / 100).max(8);

            let insert_range = |range: std::ops::Range<usize>| -> usize {
                let mut failures = 0usize;
                for idx in range {
                    // On chain failure the displaced survivor (not
                    // necessarily the item we started with) overflows.
                    if let Some(orphan) = insert_one(&slots, &items, &seeds, idx as u64, max_chain)
                    {
                        let mut s = stash.lock();
                        if s.len() < stash_cap {
                            s.push(items[orphan as usize]);
                        } else {
                            failures += 1;
                        }
                    }
                }
                failures
            };

            let failures: usize = if threads <= 1 || items.len() < 2 {
                insert_range(0..items.len())
            } else {
                let chunk = items.len().div_ceil(threads);
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let lo = t * chunk;
                            let hi = ((t + 1) * chunk).min(items.len());
                            let insert_range = &insert_range;
                            scope.spawn(move |_| insert_range(lo..hi))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("builder panicked")).sum()
                })
                .expect("cuckoo build scope panicked")
            };

            if failures == 0 {
                return Ok(Self { slots, items, stash: stash.into_inner(), seeds, max_chain });
            }
            last_unplaced = failures;
        }
        Err(CuckooError::Unplaced { unplaced: last_unplaced })
    }

    /// Looks up `key`, probing at most `NUM_HASHES` (4) slots and the stash.
    pub fn get(&self, key: u64) -> Option<u64> {
        for which in 0..NUM_HASHES {
            let s = self.seeds.slot(which, key, self.slots.len());
            let idx = self.slots[s].load(Ordering::Acquire);
            if idx != EMPTY {
                let (k, v) = self.items[idx as usize];
                if k == key {
                    return Some(v);
                }
            }
        }
        self.stash.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the table stores no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of items that overflowed into the stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Number of slots in the main array.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The eviction-chain bound used during construction.
    pub fn max_chain(&self) -> usize {
        self.max_chain
    }

    /// Exports the built table as plain data for persistence.
    pub fn to_parts(&self) -> CuckooParts {
        CuckooParts {
            slots: self.slots.iter().map(|s| s.load(Ordering::Acquire)).collect(),
            items: self.items.clone(),
            stash: self.stash.clone(),
            seed_mul: self.seeds.mul,
            seed_add: self.seeds.add,
            max_chain: self.max_chain,
        }
    }

    /// Reassembles a table from exported parts, re-validating every
    /// structural invariant (slot indices in range, no duplicate or sentinel
    /// keys, and every stored key reachable through its candidate slots or
    /// the stash) so corrupted snapshots are rejected instead of producing a
    /// table that silently drops lookups.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParts`] naming the first violated invariant.
    pub fn from_parts(parts: CuckooParts) -> Result<Self, InvalidParts> {
        let CuckooParts { slots, items, stash, seed_mul, seed_add, max_chain } = parts;
        if slots.is_empty() && !items.is_empty() {
            return Err(InvalidParts("no slots for a non-empty item set".into()));
        }
        for (i, &s) in slots.iter().enumerate() {
            if s != EMPTY && s as usize >= items.len() {
                return Err(InvalidParts(format!("slot {i} points past the item array ({s})")));
            }
        }
        if items.iter().chain(&stash).any(|&(k, _)| k == EMPTY) {
            return Err(InvalidParts("u64::MAX is a reserved key".into()));
        }
        {
            let mut keys: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
            keys.sort_unstable();
            if keys.windows(2).any(|w| w[0] == w[1]) {
                return Err(InvalidParts("duplicate keys".into()));
            }
        }
        if seed_mul.iter().any(|m| m % 2 == 0) {
            return Err(InvalidParts("hash multipliers must be odd".into()));
        }
        let table = Self {
            slots: slots.into_iter().map(AtomicU64::new).collect(),
            items,
            stash,
            seeds: HashSeeds { mul: seed_mul, add: seed_add },
            max_chain,
        };
        for &(k, v) in &table.items {
            if table.get(k) != Some(v) {
                return Err(InvalidParts(format!("key {k:#x} is not reachable after import")));
            }
        }
        Ok(table)
    }
}

/// Plain-data form of a built [`CuckooTable`], produced by
/// [`CuckooTable::to_parts`] and consumed by [`CuckooTable::from_parts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CuckooParts {
    /// Slot array: item indices or `u64::MAX` for empty.
    pub slots: Vec<u64>,
    /// The stored `(key, value)` pairs.
    pub items: Vec<(u64, u64)>,
    /// Overflow items resolved through linear search.
    pub stash: Vec<(u64, u64)>,
    /// Sub-hash multipliers (odd).
    pub seed_mul: [u64; NUM_HASHES],
    /// Sub-hash addends.
    pub seed_add: [u64; NUM_HASHES],
    /// Eviction-chain bound recorded at construction.
    pub max_chain: usize,
}

/// Structural-invariant violation found while importing [`CuckooParts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParts(pub String);

impl std::fmt::Display for InvalidParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid cuckoo table parts: {}", self.0)
    }
}

impl std::error::Error for InvalidParts {}

/// Inserts item `idx` by walking an eviction chain; `None` on success,
/// `Some(orphan)` with the finally displaced item index on failure.
///
/// Each step atomically swaps the item into one of its candidate slots; a
/// displaced occupant continues the chain (the GPU kernel's `atomicExch`
/// loop). Eviction targets are chosen by a random walk, which is what keeps
/// long chains rare even near load factor 0.9.
fn insert_one(
    slots: &[AtomicU64],
    items: &[(u64, u64)],
    seeds: &HashSeeds,
    mut idx: u64,
    max_chain: usize,
) -> Option<u64> {
    // Cheap xorshift for the random walk, seeded per chain.
    let mut walk = idx.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..max_chain {
        let key = items[idx as usize].0;
        // Fast path: claim the first empty candidate slot.
        for w in 0..NUM_HASHES {
            let s = seeds.slot(w, key, slots.len());
            if slots[s].compare_exchange(EMPTY, idx, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                return None;
            }
        }
        // All candidates occupied: evict from a randomly chosen candidate.
        walk ^= walk << 13;
        walk ^= walk >> 7;
        walk ^= walk << 17;
        let s = seeds.slot((walk % NUM_HASHES as u64) as usize, key, slots.len());
        let evicted = slots[s].swap(idx, Ordering::AcqRel);
        if evicted == EMPTY {
            return None;
        }
        idx = evicted;
    }
    Some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 2654435761 % (1 << 40), i)).collect()
    }

    #[test]
    fn all_inserted_keys_are_found() {
        let items = pairs(1000);
        let t = CuckooTable::build(items.clone(), 7).unwrap();
        for (k, v) in items {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn absent_keys_miss() {
        let t = CuckooTable::build(pairs(500), 3).unwrap();
        for k in [u64::MAX - 1, 999_999_999_999, 12345678901234] {
            assert_eq!(t.get(k), None);
        }
    }

    #[test]
    fn empty_table_works() {
        let t = CuckooTable::build(Vec::new(), 1).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(42), None);
    }

    #[test]
    fn single_item() {
        let t = CuckooTable::build(vec![(7, 99)], 1).unwrap();
        assert_eq!(t.get(7), Some(99));
        assert_eq!(t.get(8), None);
    }

    #[test]
    fn parallel_build_agrees_with_serial() {
        let items = pairs(2000);
        let serial = CuckooTable::build(items.clone(), 11).unwrap();
        let parallel = CuckooTable::build_parallel(items.clone(), 0.5, 11, 4).unwrap();
        for (k, v) in items {
            assert_eq!(serial.get(k), Some(v));
            assert_eq!(parallel.get(k), Some(v));
        }
    }

    #[test]
    fn high_load_factor_still_builds() {
        let items = pairs(4000);
        let t = CuckooTable::build_with_load(items.clone(), 0.85, 5).unwrap();
        assert!(t.num_slots() < items.len() * 2);
        for (k, v) in items {
            assert_eq!(t.get(k), Some(v));
        }
    }

    #[test]
    fn stash_is_bounded() {
        let t = CuckooTable::build_with_load(pairs(3000), 0.9, 13).unwrap();
        assert!(t.stash_len() <= 30);
    }

    #[test]
    #[should_panic(expected = "duplicate keys")]
    fn duplicate_keys_panic() {
        let _ = CuckooTable::build(vec![(1, 0), (1, 1)], 0);
    }

    #[test]
    #[should_panic(expected = "reserved key")]
    fn sentinel_key_panics() {
        let _ = CuckooTable::build(vec![(u64::MAX, 0)], 0);
    }

    #[test]
    fn concurrent_lookups_are_safe() {
        let items = pairs(5000);
        let t = CuckooTable::build(items.clone(), 21).unwrap();
        crossbeam::thread::scope(|s| {
            for chunk in items.chunks(1250) {
                let t = &t;
                s.spawn(move |_| {
                    for &(k, v) in chunk {
                        assert_eq!(t.get(k), Some(v));
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn full_load_factor_rejected_up_front() {
        // load = 1.0 used to burn all 16 rebuild attempts before failing
        // (and then, for a while, panicked); now it is a typed error the
        // caller can surface.
        let err = CuckooTable::build_with_load(pairs(100), 1.0, 1).unwrap_err();
        assert_eq!(err, CuckooError::Overloaded { load: 1.0 });
        assert!(err.to_string().contains("load factor 1"), "display: {err}");
    }

    #[test]
    fn parallel_build_rejects_full_load_too() {
        let err = CuckooTable::build_parallel(pairs(100), 0.99, 1, 2).unwrap_err();
        assert_eq!(err, CuckooError::Overloaded { load: 0.99 });
    }

    #[test]
    fn nonpositive_load_is_overloaded_too() {
        for load in [0.0, -0.5, f64::NAN] {
            let err = CuckooTable::build_with_load(pairs(10), load, 1).unwrap_err();
            assert!(matches!(err, CuckooError::Overloaded { .. }), "load {load}: {err:?}");
        }
    }

    #[test]
    fn parts_roundtrip_preserves_every_lookup() {
        let items = pairs(2000);
        let t = CuckooTable::build_with_load(items.clone(), 0.9, 19).unwrap();
        let rebuilt = CuckooTable::from_parts(t.to_parts()).unwrap();
        assert_eq!(rebuilt.len(), t.len());
        assert_eq!(rebuilt.num_slots(), t.num_slots());
        assert_eq!(rebuilt.stash_len(), t.stash_len());
        for (k, v) in items {
            assert_eq!(rebuilt.get(k), Some(v));
        }
        assert_eq!(rebuilt.get(0xdead_beef_dead_beef), None);
    }

    #[test]
    fn tampered_parts_are_rejected() {
        let t = CuckooTable::build(pairs(300), 23).unwrap();
        let good = t.to_parts();

        let mut bad = good.clone();
        bad.slots[0] = 10_000; // out-of-range item index
        assert!(CuckooTable::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.seed_add[2] ^= 0xFF; // wrong seeds: keys become unreachable
        assert!(CuckooTable::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.items[5].0 = bad.items[6].0; // duplicate key
        assert!(CuckooTable::from_parts(bad).is_err());

        let mut bad = good.clone();
        bad.seed_mul[0] = 42; // even multiplier
        assert!(CuckooTable::from_parts(bad).is_err());

        assert!(CuckooTable::from_parts(good).is_ok());
    }

    #[test]
    fn deterministic_lookup_after_build() {
        // Same seed, same items: identical tables (serial build).
        let a = CuckooTable::build(pairs(100), 9).unwrap();
        let b = CuckooTable::build(pairs(100), 9).unwrap();
        for (k, _) in pairs(100) {
            assert_eq!(a.get(k), b.get(k));
        }
    }
}
