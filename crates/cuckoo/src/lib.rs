#![warn(missing_docs)]

//! A GPU-style cuckoo hash table, ported to CPU threads.
//!
//! The paper's GPU pipeline (Section V-A) indexes LSH buckets with the
//! real-time parallel cuckoo table of Alcantara et al.: `d` sub-hash
//! functions address one slot array; inserting claims any of the item's `d`
//! slots, evicting the previous occupant, which then re-inserts itself —
//! bounded eviction chains, a small stash for stragglers, and full-table
//! reseeding when construction fails. Lookups probe at most `d` slots plus
//! the stash and are wait-free.
//!
//! This port keeps the same algorithm and memory layout (a flat slot array
//! of item indices manipulated with atomic exchange) so the relative costs
//! the paper measures — build vs. probe, load factor vs. chain length —
//! carry over to the CPU substrate.

pub mod table;

pub use table::{CuckooError, CuckooParts, CuckooTable, InvalidParts, MAX_LOAD, NUM_HASHES};
