//! Property-based tests: arbitrary key/value sets roundtrip through the
//! cuckoo table, absent keys miss, serial and parallel builds agree.

use cuckoo::CuckooTable;
use proptest::prelude::*;
use std::collections::HashMap;

fn distinct_items() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::hash_map(0u64..u64::MAX - 1, any::<u64>(), 0..400)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_inserted_key_is_found(items in distinct_items(), seed in any::<u64>()) {
        let table = CuckooTable::build(items.clone(), seed).unwrap();
        prop_assert_eq!(table.len(), items.len());
        for (k, v) in &items {
            prop_assert_eq!(table.get(*k), Some(*v), "key {}", k);
        }
    }

    #[test]
    fn absent_keys_miss(items in distinct_items(), probes in prop::collection::vec(0u64..u64::MAX - 1, 32)) {
        let map: HashMap<u64, u64> = items.iter().copied().collect();
        let table = CuckooTable::build(items, 1).unwrap();
        for k in probes {
            prop_assert_eq!(table.get(k), map.get(&k).copied());
        }
    }

    #[test]
    fn parallel_build_agrees(items in distinct_items(), threads in 1usize..5) {
        let serial = CuckooTable::build(items.clone(), 3).unwrap();
        let parallel = CuckooTable::build_parallel(items.clone(), 0.5, 3, threads).unwrap();
        for (k, v) in items {
            prop_assert_eq!(serial.get(k), Some(v));
            prop_assert_eq!(parallel.get(k), Some(v));
        }
    }

    #[test]
    fn high_load_builds_stay_complete(items in distinct_items(), load in 1u32..=9) {
        let load = load as f64 / 10.0;
        let table = CuckooTable::build_with_load(items.clone(), load, 5)
            .unwrap_or_else(|e| panic!("build at load {load}: {e}"));
        for (k, v) in items {
            prop_assert_eq!(table.get(k), Some(v));
        }
    }
}
