//! Kd-style axis-aligned median partitioner.
//!
//! The paper's Section IV-A3 argues Kd-trees need `O(D)` levels to halve cell
//! radii when the intrinsic dimension is low; this baseline exists so the
//! ablation benches can demonstrate that claim against RP-trees.

use crate::partition::{InvalidParts, Partitioner};
use serde::{Deserialize, Serialize};
use vecstore::Dataset;

/// One arena node of the Kd partitioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { leaf_id: usize },
    Split { axis: usize, threshold: f32, left: usize, right: usize },
}

/// Axis-aligned median splits, always on the coordinate with the largest
/// spread — the classical Kd construction referenced in Section IV-A1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdPartitioner {
    nodes: Vec<Node>,
    num_leaves: usize,
    dim: usize,
}

impl KdPartitioner {
    /// Fits a partition of roughly `target_leaves` cells by repeatedly
    /// splitting the largest cell at the median of its widest axis.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `target_leaves == 0`.
    pub fn fit(data: &Dataset, target_leaves: usize) -> (Self, Vec<usize>) {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        assert!(target_leaves >= 1, "need at least one leaf");
        let mut nodes = vec![Node::Leaf { leaf_id: usize::MAX }];
        let mut open = vec![(0usize, (0..data.len()).collect::<Vec<usize>>())];
        let mut closed: Vec<(usize, Vec<usize>)> = Vec::new();

        while open.len() + closed.len() < target_leaves && !open.is_empty() {
            let (largest, _) =
                open.iter().enumerate().max_by_key(|(_, l)| l.1.len()).expect("non-empty");
            let (node, ids) = open.swap_remove(largest);
            match split_widest(data, &ids) {
                Some((axis, threshold, l_ids, r_ids)) => {
                    let left = nodes.len();
                    let right = nodes.len() + 1;
                    nodes.push(Node::Leaf { leaf_id: usize::MAX });
                    nodes.push(Node::Leaf { leaf_id: usize::MAX });
                    nodes[node] = Node::Split { axis, threshold, left, right };
                    open.push((left, l_ids));
                    open.push((right, r_ids));
                }
                None => closed.push((node, ids)),
            }
        }
        closed.extend(open);
        closed.sort_by_key(|(node, _)| *node);

        let mut assignments = vec![0usize; data.len()];
        for (leaf_id, (node, ids)) in closed.iter().enumerate() {
            nodes[*node] = Node::Leaf { leaf_id };
            for &i in ids {
                assignments[i] = leaf_id;
            }
        }
        (Self { nodes, num_leaves: closed.len(), dim: data.dim() }, assignments)
    }

    /// Number of leaf cells produced.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Dumps the partitioner's structure for persistence.
    pub fn to_parts(&self) -> KdParts {
        let nodes = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { leaf_id } => KdNodeParts::Leaf { leaf_id: *leaf_id },
                Node::Split { axis, threshold, left, right } => KdNodeParts::Split {
                    axis: *axis,
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
            })
            .collect();
        KdParts { nodes, num_leaves: self.num_leaves, dim: self.dim }
    }

    /// Rebuilds a partitioner from a structural dump, validating the arena
    /// is a proper binary tree rooted at node 0 with dense leaf ids and
    /// in-range split axes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParts`] naming the violated invariant.
    pub fn from_parts(parts: KdParts) -> Result<Self, InvalidParts> {
        let KdParts { nodes, num_leaves, dim } = parts;
        if dim == 0 {
            return Err(InvalidParts("dim must be positive".into()));
        }
        if nodes.is_empty() {
            return Err(InvalidParts("tree has no nodes".into()));
        }
        let mut visited = vec![false; nodes.len()];
        let mut leaf_seen = vec![false; num_leaves];
        let mut leaves_found = 0usize;
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = nodes
                .get(i)
                .ok_or_else(|| InvalidParts(format!("child index {i} out of range")))?;
            if std::mem::replace(&mut visited[i], true) {
                return Err(InvalidParts(format!("node {i} reachable twice (not a tree)")));
            }
            match node {
                KdNodeParts::Leaf { leaf_id } => {
                    if *leaf_id >= num_leaves || std::mem::replace(&mut leaf_seen[*leaf_id], true) {
                        return Err(InvalidParts(format!("leaf id {leaf_id} invalid or repeated")));
                    }
                    leaves_found += 1;
                }
                KdNodeParts::Split { axis, left, right, .. } => {
                    if *axis >= dim {
                        return Err(InvalidParts(format!("split axis {axis} out of range")));
                    }
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        if !visited.iter().all(|&v| v) {
            return Err(InvalidParts("unreachable nodes in arena".into()));
        }
        if leaves_found != num_leaves {
            return Err(InvalidParts(format!(
                "{leaves_found} leaves reachable, header claims {num_leaves}"
            )));
        }
        let nodes = nodes
            .into_iter()
            .map(|n| match n {
                KdNodeParts::Leaf { leaf_id } => Node::Leaf { leaf_id },
                KdNodeParts::Split { axis, threshold, left, right } => {
                    Node::Split { axis, threshold, left, right }
                }
            })
            .collect();
        Ok(Self { nodes, num_leaves, dim })
    }
}

/// Structural dump of one [`KdPartitioner`] arena node, for persistence.
#[derive(Debug, Clone)]
pub enum KdNodeParts {
    /// Terminal node carrying its dense leaf index.
    Leaf {
        /// Dense leaf id in `0..num_leaves`.
        leaf_id: usize,
    },
    /// `v[axis] <= threshold` goes left.
    Split {
        /// Coordinate the split tests.
        axis: usize,
        /// Split threshold.
        threshold: f32,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
}

/// Owned structural dump of a fitted [`KdPartitioner`].
#[derive(Debug, Clone)]
pub struct KdParts {
    /// Arena nodes; node 0 is the root.
    pub nodes: Vec<KdNodeParts>,
    /// Number of leaves (dense ids `0..num_leaves`).
    pub num_leaves: usize,
    /// Dimensionality the partitioner was fitted on.
    pub dim: usize,
}

impl Partitioner for KdPartitioner {
    fn assign(&self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "query dimension mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { leaf_id } => return *leaf_id,
                Node::Split { axis, threshold, left, right } => {
                    node = if v[*axis] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn num_groups(&self) -> usize {
        self.num_leaves
    }
}

/// Median split of `ids` on the axis with the widest min-max spread; `None`
/// when every axis is constant or a side would be empty.
fn split_widest(data: &Dataset, ids: &[usize]) -> Option<(usize, f32, Vec<usize>, Vec<usize>)> {
    if ids.len() < 2 {
        return None;
    }
    let dim = data.dim();
    let mut best_axis = 0usize;
    let mut best_spread = -1.0f32;
    for axis in 0..dim {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &i in ids {
            let v = data.row(i)[axis];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi - lo > best_spread {
            best_spread = hi - lo;
            best_axis = axis;
        }
    }
    if best_spread <= 0.0 {
        return None;
    }
    let mut vals: Vec<f32> = ids.iter().map(|&i| data.row(i)[best_axis]).collect();
    let mid = vals.len() / 2;
    let threshold = *vals.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("finite")).1;
    let mut l = Vec::new();
    let mut r = Vec::new();
    for &i in ids {
        if data.row(i)[best_axis] <= threshold {
            l.push(i);
        } else {
            r.push(i);
        }
    }
    if l.is_empty() || r.is_empty() {
        // Median equals the max: retry splitting strictly below it.
        l.clear();
        r.clear();
        for &i in ids {
            if data.row(i)[best_axis] < threshold {
                l.push(i);
            } else {
                r.push(i);
            }
        }
        if l.is_empty() || r.is_empty() {
            return None;
        }
        // Shift the stored threshold just below the median so `assign`
        // reproduces this strict split.
        let max_left = l.iter().map(|&i| data.row(i)[best_axis]).fold(f32::NEG_INFINITY, f32::max);
        return Some((best_axis, max_left, l, r));
    }
    Some((best_axis, threshold, l, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::synth::{self, ClusteredSpec};

    #[test]
    fn produces_requested_leaves() {
        let ds = synth::clustered(&ClusteredSpec::small(300), 1);
        let (kd, _) = KdPartitioner::fit(&ds, 8);
        assert_eq!(kd.num_leaves(), 8);
    }

    #[test]
    fn assign_agrees_with_construction() {
        let ds = synth::clustered(&ClusteredSpec::small(300), 2);
        let (kd, assign) = KdPartitioner::fit(&ds, 16);
        for (i, a) in assign.iter().enumerate() {
            assert_eq!(kd.assign(ds.row(i)), *a, "row {i}");
        }
    }

    #[test]
    fn identical_points_stay_in_one_leaf() {
        let ds = Dataset::from_rows(&vec![vec![2.0, 2.0]; 10]);
        let (kd, assign) = KdPartitioner::fit(&ds, 4);
        assert_eq!(kd.num_leaves(), 1);
        assert!(assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn splits_on_widest_axis() {
        // Axis 1 has all the spread; the first split must separate by it.
        let ds = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 100.0],
            vec![0.2, 0.0],
            vec![0.3, 100.0],
        ]);
        let (_, assign) = KdPartitioner::fit(&ds, 2);
        assert_eq!(assign[0], assign[2]);
        assert_eq!(assign[1], assign[3]);
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn parts_roundtrip_assigns_identically() {
        let ds = synth::clustered(&ClusteredSpec::small(300), 7);
        let (kd, _) = KdPartitioner::fit(&ds, 8);
        let back = KdPartitioner::from_parts(kd.to_parts()).unwrap();
        for row in ds.iter() {
            assert_eq!(back.assign(row), kd.assign(row));
        }
    }

    #[test]
    fn tampered_parts_are_rejected() {
        let ds = synth::clustered(&ClusteredSpec::small(300), 7);
        let (kd, _) = KdPartitioner::fit(&ds, 8);

        let mut p = kd.to_parts();
        if let Some(KdNodeParts::Split { axis, .. }) =
            p.nodes.iter_mut().find(|n| matches!(n, KdNodeParts::Split { .. }))
        {
            *axis = p.dim;
        }
        assert!(KdPartitioner::from_parts(p).is_err(), "axis out of range");

        let mut p = kd.to_parts();
        p.nodes.push(KdNodeParts::Leaf { leaf_id: 0 });
        assert!(KdPartitioner::from_parts(p).is_err(), "unreachable node");

        assert!(KdPartitioner::from_parts(kd.to_parts()).is_ok(), "untampered parts load");
    }

    #[test]
    fn handles_skewed_duplicate_medians() {
        // 9 copies of 0 and one 1: median==0 puts everything left under <=,
        // so the strict-split fallback must engage.
        let mut rows = vec![vec![0.0]; 9];
        rows.push(vec![1.0]);
        let ds = Dataset::from_rows(&rows);
        let (kd, assign) = KdPartitioner::fit(&ds, 2);
        assert_eq!(kd.num_leaves(), 2);
        assert_ne!(assign[0], assign[9]);
        for (i, a) in assign.iter().enumerate() {
            assert_eq!(kd.assign(ds.row(i)), *a);
        }
    }
}
