//! Approximate set diameter after Egecioglu & Kalantari (IPL 1989).
//!
//! Computing the exact diameter of a point set is as hard as exact KNN, so
//! the RP-tree *mean* rule (which needs `Δ(S)`) uses this iterative
//! `O(m · |S|)` scheme instead: each round produces a realized pairwise
//! distance `r_i` with `r_1 < r_2 < … < r_m ≤ Δ(S)`, and the true diameter is
//! bounded above by `min(√3 · r_1, √(5 − 2√3) · r_m)`. The paper observes
//! `r_m` is already a good estimate for small `m` (≈40).

use vecstore::metric::squared_l2;
use vecstore::Dataset;

/// Result of the iterative diameter approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiameterEstimate {
    /// Best realized pairwise distance `r_m` (a lower bound on `Δ`).
    pub lower: f32,
    /// Certified upper bound `min(√3 · r_1, √(5 − 2√3) · r_m)`.
    pub upper: f32,
    /// Number of refinement rounds actually performed (early exit when a
    /// round stops improving).
    pub rounds: usize,
}

impl DiameterEstimate {
    /// The point estimate used by callers: the lower bound `r_m`, per the
    /// paper's observation that it is accurate in practice.
    #[inline]
    pub fn estimate(&self) -> f32 {
        self.lower
    }
}

/// Index of the row in `ids` farthest from `from` (squared-L2 scan).
fn farthest(data: &Dataset, ids: &[usize], from: &[f32]) -> (usize, f32) {
    let mut best = (0, -1.0f32);
    for (pos, &i) in ids.iter().enumerate() {
        let d = squared_l2(data.row(i), from);
        if d > best.1 {
            best = (pos, d);
        }
    }
    best
}

/// Approximates the diameter of the subset `ids` of `data` with at most
/// `max_rounds` refinement rounds.
///
/// Each round: take the midpoint of the current farthest pair, find the point
/// farthest from that midpoint, and re-derive a pair from it. Every `r_i` is
/// a real interpoint distance, so the sequence never overshoots `Δ`.
///
/// # Panics
///
/// Panics if `ids` is empty or `max_rounds == 0`.
pub fn approx_diameter(data: &Dataset, ids: &[usize], max_rounds: usize) -> DiameterEstimate {
    assert!(!ids.is_empty(), "diameter of empty subset");
    assert!(max_rounds > 0, "need at least one round");
    if ids.len() == 1 {
        return DiameterEstimate { lower: 0.0, upper: 0.0, rounds: 1 };
    }

    // Round 1: double sweep from an arbitrary point.
    let (q_pos, _) = farthest(data, ids, data.row(ids[0]));
    let mut q = ids[q_pos];
    let (p_pos, mut r_sq) = farthest(data, ids, data.row(q));
    let mut p = ids[p_pos];
    let r1 = r_sq.sqrt();

    let dim = data.dim();
    let mut mid = vec![0.0f32; dim];
    let mut rounds = 1;
    for _ in 1..max_rounds {
        // Midpoint of the current best pair.
        for (m, (a, b)) in mid.iter_mut().zip(data.row(p).iter().zip(data.row(q))) {
            *m = 0.5 * (a + b);
        }
        let (t_pos, _) = farthest(data, ids, &mid);
        let t = ids[t_pos];
        // Re-anchor: farthest point from t forms the candidate pair.
        let (s_pos, cand_sq) = farthest(data, ids, data.row(t));
        let s = ids[s_pos];
        rounds += 1;
        if cand_sq > r_sq {
            r_sq = cand_sq;
            p = t;
            q = s;
        } else {
            break; // converged — further rounds revisit the same pair
        }
    }

    let lower = r_sq.sqrt();
    // √(5 − 2√3) ≈ 1.2393; √3 ≈ 1.7321.
    let c_m = (5.0f32 - 2.0 * 3.0f32.sqrt()).sqrt();
    let upper = (3.0f32.sqrt() * r1).min(c_m * lower);
    DiameterEstimate { lower, upper, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::stats::exact_diameter;
    use vecstore::synth;

    fn all_ids(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn singleton_has_zero_diameter() {
        let ds = Dataset::from_rows(&[vec![3.0, 4.0]]);
        let est = approx_diameter(&ds, &[0], 10);
        assert_eq!(est.lower, 0.0);
        assert_eq!(est.upper, 0.0);
    }

    #[test]
    fn pair_is_exact() {
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        let est = approx_diameter(&ds, &all_ids(2), 5);
        assert!((est.estimate() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_bracket_true_diameter_on_random_sets() {
        for seed in 0..5 {
            let ds = synth::gaussian(8, 200, 1.0, seed);
            let ids = all_ids(200);
            let truth = exact_diameter(&ds, &ids);
            let est = approx_diameter(&ds, &ids, 40);
            assert!(est.lower <= truth + 1e-4, "lower {} > truth {}", est.lower, truth);
            assert!(est.upper >= truth - 1e-4, "upper {} < truth {}", est.upper, truth);
        }
    }

    #[test]
    fn estimate_is_close_in_practice() {
        let ds = synth::clustered(&synth::ClusteredSpec::small(500), 2);
        let ids = all_ids(500);
        let truth = exact_diameter(&ds, &ids);
        let est = approx_diameter(&ds, &ids, 40).estimate();
        // The paper relies on r_m ≈ Δ; allow 15% slack.
        assert!(est >= 0.85 * truth, "estimate {est} too far below true diameter {truth}");
    }

    #[test]
    fn more_rounds_never_hurt() {
        let ds = synth::gaussian(16, 300, 1.0, 9);
        let ids = all_ids(300);
        let a = approx_diameter(&ds, &ids, 1).lower;
        let b = approx_diameter(&ds, &ids, 40).lower;
        assert!(b >= a);
    }

    #[test]
    fn subset_restriction_is_respected() {
        // Far-away point 2 is outside the subset and must not influence it.
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let est = approx_diameter(&ds, &[0, 1], 10);
        assert!((est.estimate() - 1.0).abs() < 1e-6);
    }
}
