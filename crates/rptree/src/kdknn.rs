//! Exact k-nearest-neighbor search with a Kd-tree (branch-and-bound).
//!
//! The paper's introduction motivates approximate methods by noting that
//! space-partitioning exact searches (Kd/SR/cover trees) degenerate to
//! slower-than-brute-force scans once dimensionality exceeds ~10 (Weber et
//! al.). This module provides that baseline so the claim can be measured:
//! an axis-aligned median-split Kd-tree with bounding-box distance pruning.
//! On low-dimensional data it prunes aggressively; on the benchmark's
//! 64-dim corpus it visits nearly every leaf — exactly the behaviour that
//! justifies LSH.

use serde::{Deserialize, Serialize};
use vecstore::metric::squared_l2;
use vecstore::{Dataset, Neighbor, TopK};

/// Leaf size below which nodes store points directly.
const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        ids: Vec<u32>,
    },
    Split {
        axis: usize,
        threshold: f32,
        left: usize,
        right: usize,
        /// Bounding box of the subtree, for exact distance pruning.
        lo: Vec<f32>,
        hi: Vec<f32>,
    },
}

/// An exact Kd-tree KNN searcher over a borrowed dataset.
#[derive(Debug)]
pub struct KdKnn<'a> {
    data: &'a Dataset,
    nodes: Vec<Node>,
    root: usize,
}

/// Statistics of one query, for the curse-of-dimensionality measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of points whose distance was computed.
    pub distance_evals: usize,
    /// Number of tree nodes visited.
    pub nodes_visited: usize,
}

impl<'a> KdKnn<'a> {
    /// Builds the tree over `data`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn build(data: &'a Dataset) -> Self {
        assert!(!data.is_empty(), "cannot build over empty dataset");
        let mut nodes = Vec::new();
        let mut ids: Vec<u32> = (0..data.len() as u32).collect();
        let root = build_node(data, &mut ids, &mut nodes);
        Self { data, nodes, root }
    }

    /// Exact k-nearest neighbors of `query`, ascending squared-L2 distance.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.knn_with_stats(query, k).0
    }

    /// Exact KNN plus visit statistics.
    pub fn knn_with_stats(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.data.dim(), "query dimension mismatch");
        let mut top = TopK::new(k);
        let mut stats = SearchStats { distance_evals: 0, nodes_visited: 0 };
        self.search(self.root, query, &mut top, &mut stats);
        (top.into_sorted(), stats)
    }

    fn search(&self, node: usize, query: &[f32], top: &mut TopK, stats: &mut SearchStats) {
        stats.nodes_visited += 1;
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &id in ids {
                    stats.distance_evals += 1;
                    top.push(id as usize, squared_l2(query, self.data.row(id as usize)));
                }
            }
            Node::Split { axis, threshold, left, right, .. } => {
                // Visit the near side first, then the far side only if its
                // bounding box can still beat the current k-th distance.
                let (near, far) =
                    if query[*axis] <= *threshold { (*left, *right) } else { (*right, *left) };
                self.search(near, query, top, stats);
                if self.box_dist_sq(far, query) < top.threshold() {
                    self.search(far, query, top, stats);
                }
            }
        }
    }

    /// Squared distance from `query` to the node's bounding box (0 inside).
    fn box_dist_sq(&self, node: usize, query: &[f32]) -> f32 {
        match &self.nodes[node] {
            Node::Leaf { .. } => 0.0, // leaves carry no box; never prune them here
            Node::Split { lo, hi, .. } => {
                let mut d2 = 0.0f32;
                for ((&q, &l), &h) in query.iter().zip(lo).zip(hi) {
                    let d = if q < l {
                        l - q
                    } else if q > h {
                        q - h
                    } else {
                        0.0
                    };
                    d2 += d * d;
                }
                d2
            }
        }
    }
}

/// Recursively builds the subtree over `ids`, returning its node index.
fn build_node(data: &Dataset, ids: &mut [u32], nodes: &mut Vec<Node>) -> usize {
    if ids.len() <= LEAF_SIZE {
        let idx = nodes.len();
        nodes.push(Node::Leaf { ids: ids.to_vec() });
        return idx;
    }
    // Bounding box and widest axis.
    let dim = data.dim();
    let mut lo = data.row(ids[0] as usize).to_vec();
    let mut hi = lo.clone();
    for &i in ids.iter() {
        for (d, &v) in data.row(i as usize).iter().enumerate() {
            if v < lo[d] {
                lo[d] = v;
            }
            if v > hi[d] {
                hi[d] = v;
            }
        }
    }
    let axis = (0..dim)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).expect("finite spread"))
        .expect("dim > 0");
    if hi[axis] - lo[axis] <= 0.0 {
        // All points identical: cannot split.
        let idx = nodes.len();
        nodes.push(Node::Leaf { ids: ids.to_vec() });
        return idx;
    }
    // Median split on the widest axis.
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        data.row(a as usize)[axis]
            .partial_cmp(&data.row(b as usize)[axis])
            .expect("finite coordinates")
    });
    let threshold = data.row(ids[mid] as usize)[axis];
    // Guard against duplicate-heavy splits leaving one side empty.
    let split_at =
        ids.iter().position(|&i| data.row(i as usize)[axis] > threshold).unwrap_or(ids.len());
    let (l_ids, r_ids) = if split_at == 0 || split_at == ids.len() {
        ids.split_at_mut(mid.max(1))
    } else {
        ids.split_at_mut(split_at)
    };
    // `threshold` must route queries consistently with the partition:
    // everything in `l_ids` is <= max(l along axis).
    let threshold =
        l_ids.iter().map(|&i| data.row(i as usize)[axis]).fold(f32::NEG_INFINITY, f32::max);
    let idx = nodes.len();
    nodes.push(Node::Leaf { ids: Vec::new() }); // placeholder
    let left = build_node(data, l_ids, nodes);
    let right = build_node(data, r_ids, nodes);
    nodes[idx] = Node::Split { axis, threshold, left, right, lo, hi };
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::synth::{self, ClusteredSpec};
    use vecstore::{knn, SquaredL2};

    #[test]
    fn matches_brute_force_low_dim() {
        let data = synth::gaussian(3, 500, 1.0, 1);
        let queries = synth::gaussian(3, 30, 1.0, 2);
        let tree = KdKnn::build(&data);
        for q in queries.iter() {
            let got = tree.knn(q, 10);
            let want = knn(&data, q, 10, &SquaredL2);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn matches_brute_force_high_dim() {
        let data = synth::clustered(&ClusteredSpec::small(400), 3);
        let queries = synth::clustered(&ClusteredSpec::small(20), 4);
        let tree = KdKnn::build(&data);
        for q in queries.iter() {
            assert_eq!(tree.knn(q, 5), knn(&data, q, 5, &SquaredL2));
        }
    }

    #[test]
    fn prunes_aggressively_in_low_dim() {
        let data = synth::uniform(2, 4_000, -10.0, 10.0, 5);
        let tree = KdKnn::build(&data);
        let (_, stats) = tree.knn_with_stats(&[0.0, 0.0], 5);
        assert!(
            stats.distance_evals < data.len() / 4,
            "2-dim search should prune most points, evaluated {}",
            stats.distance_evals
        );
    }

    #[test]
    fn curse_of_dimensionality_kills_pruning() {
        // The paper's intro claim: beyond ~10 dims the tree inspects almost
        // everything.
        let n = 2_000;
        let low = synth::gaussian(4, n, 1.0, 7);
        let high = synth::gaussian(64, n, 1.0, 8);
        let q_low = synth::gaussian(4, 1, 1.0, 9);
        let q_high = synth::gaussian(64, 1, 1.0, 10);
        let evals =
            |data: &Dataset, q: &[f32]| KdKnn::build(data).knn_with_stats(q, 10).1.distance_evals;
        let e_low = evals(&low, q_low.row(0));
        let e_high = evals(&high, q_high.row(0));
        assert!(
            e_high > 3 * e_low,
            "high-dim ({e_high}) should visit far more than low-dim ({e_low})"
        );
        assert!(e_high > n / 2, "high-dim pruning should be nearly useless, got {e_high}");
    }

    #[test]
    fn duplicate_points_handled() {
        let mut rows = vec![vec![1.0, 1.0]; 60];
        rows.push(vec![2.0, 2.0]);
        let data = Dataset::from_rows(&rows);
        let tree = KdKnn::build(&data);
        let got = tree.knn(&[2.0, 2.0], 2);
        assert_eq!(got[0].id, 60);
        assert_eq!(got[0].dist, 0.0);
    }

    #[test]
    fn k_exceeding_dataset_returns_all() {
        let data = synth::gaussian(2, 7, 1.0, 11);
        let tree = KdKnn::build(&data);
        assert_eq!(tree.knn(&[0.0, 0.0], 20).len(), 7);
    }
}
