//! The [`Partitioner`] abstraction shared by level-1 strategies.

use serde::{Deserialize, Serialize};
use vecstore::Dataset;

/// A fitted level-1 partition of a dataset into `g` groups.
///
/// Implementations must be deterministic after construction: `assign` for
/// the same vector always returns the same group, and construction-time
/// assignments agree with post-hoc `assign` calls (property-tested per
/// strategy).
pub trait Partitioner: Sync + Send {
    /// Group index (`0..num_groups`) the vector belongs to.
    fn assign(&self, v: &[f32]) -> usize;

    /// Number of groups the dataset was partitioned into.
    fn num_groups(&self) -> usize;

    /// Assigns every row of a dataset.
    fn assign_all(&self, data: &Dataset) -> Vec<usize> {
        data.iter().map(|row| self.assign(row)).collect()
    }
}

/// The trivial one-group partitioner: with it, Bi-level LSH degenerates to
/// standard single-level LSH, which is exactly how the paper's baseline is
/// configured.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SinglePartition;

impl Partitioner for SinglePartition {
    fn assign(&self, _v: &[f32]) -> usize {
        0
    }

    fn num_groups(&self) -> usize {
        1
    }
}

/// A structural dump failed validation on import (`from_parts` /
/// `from_centroids`): the message names the violated invariant.
#[derive(Debug)]
pub struct InvalidParts(pub String);

impl std::fmt::Display for InvalidParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid partitioner parts: {}", self.0)
    }
}

impl std::error::Error for InvalidParts {}

/// Groups row ids by their assigned partition: `out[g]` lists the rows of
/// group `g` in ascending order.
pub fn group_ids(assignments: &[usize], num_groups: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); num_groups];
    for (i, &g) in assignments.iter().enumerate() {
        assert!(g < num_groups, "assignment {g} out of range for {num_groups} groups");
        out[g].push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_maps_everything_to_zero() {
        let p = SinglePartition;
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.assign(&[1.0, 2.0]), 0);
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]]);
        assert_eq!(p.assign_all(&ds), vec![0, 0]);
    }

    #[test]
    fn group_ids_buckets_by_assignment() {
        let groups = group_ids(&[1, 0, 1, 2], 3);
        assert_eq!(groups, vec![vec![1], vec![0, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_ids_rejects_bad_assignment() {
        let _ = group_ids(&[5], 3);
    }
}
