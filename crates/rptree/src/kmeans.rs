//! Lloyd's K-means with k-means++ seeding — the partitioning baseline the
//! paper compares RP-trees against in Figure 13(c).

use crate::partition::{InvalidParts, Partitioner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vecstore::metric::squared_l2;
use vecstore::Dataset;

/// A fitted K-means model; assignment is nearest-centroid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Dataset,
}

impl KMeans {
    /// Fits `k` clusters with k-means++ initialization and at most
    /// `max_iters` Lloyd iterations; returns the model and per-row
    /// assignments.
    ///
    /// Fewer than `k` centroids can result when the data has fewer than `k`
    /// distinct points; empty clusters are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `k == 0`.
    pub fn fit(data: &Dataset, k: usize, max_iters: usize, seed: u64) -> (Self, Vec<usize>) {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        assert!(k >= 1, "k must be positive");
        let k = k.min(data.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = plus_plus_init(data, k, &mut rng);

        let mut assign = vec![0usize; data.len()];
        for _ in 0..max_iters {
            let mut changed = false;
            for (i, row) in data.iter().enumerate() {
                let c = nearest(&centroids, row).0;
                if c != assign[i] {
                    assign[i] = c;
                    changed = true;
                }
            }
            // Recompute centroids; keep a centroid in place if its cluster
            // emptied (it will be pruned at the end if still empty).
            let mut sums = vec![vec![0.0f64; data.dim()]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, row) in data.iter().enumerate() {
                counts[assign[i]] += 1;
                for (s, &v) in sums[assign[i]].iter_mut().zip(row) {
                    *s += v as f64;
                }
            }
            for (c, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
                if count > 0 {
                    let row = centroids.row_mut(c);
                    for (dst, &s) in row.iter_mut().zip(sum) {
                        *dst = (s / count as f64) as f32;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Drop empty clusters and re-densify ids.
        let mut counts = vec![0usize; centroids.len()];
        for &a in &assign {
            counts[a] += 1;
        }
        let mut remap = vec![usize::MAX; centroids.len()];
        let mut kept = Dataset::new(data.dim());
        let mut next = 0usize;
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                remap[c] = next;
                kept.push(centroids.row(c));
                next += 1;
            }
        }
        for a in &mut assign {
            *a = remap[*a];
        }
        (Self { centroids: kept }, assign)
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &Dataset {
        &self.centroids
    }

    /// Rebuilds a model from persisted centroids.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParts`] when the centroid set is empty or contains
    /// non-finite coordinates (either would poison nearest-centroid
    /// assignment).
    pub fn from_centroids(centroids: Dataset) -> Result<Self, InvalidParts> {
        if centroids.is_empty() {
            return Err(InvalidParts("k-means needs at least one centroid".into()));
        }
        if centroids.iter().any(|row| row.iter().any(|x| !x.is_finite())) {
            return Err(InvalidParts("non-finite centroid coordinate".into()));
        }
        Ok(Self { centroids })
    }
}

impl Partitioner for KMeans {
    fn assign(&self, v: &[f32]) -> usize {
        nearest(&self.centroids, v).0
    }

    fn num_groups(&self) -> usize {
        self.centroids.len()
    }
}

/// Index and squared distance of the centroid nearest to `v`.
fn nearest(centroids: &Dataset, v: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (c, row) in centroids.iter().enumerate() {
        let d = squared_l2(v, row);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, each next centroid sampled
/// with probability proportional to squared distance from the nearest
/// already-chosen centroid.
fn plus_plus_init(data: &Dataset, k: usize, rng: &mut StdRng) -> Dataset {
    let mut centroids = Dataset::with_capacity(data.dim(), k);
    centroids.push(data.row(rng.gen_range(0..data.len())));
    let mut d2: Vec<f32> = data.iter().map(|row| squared_l2(row, centroids.row(0))).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().map(|&d| d as f64).sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with chosen centroids.
            break;
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = data.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data.row(next));
        let c = centroids.len() - 1;
        for (i, row) in data.iter().enumerate() {
            let d = squared_l2(row, centroids.row(c));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::synth::{self, ClusteredSpec};

    #[test]
    fn recovers_well_separated_clusters() {
        let mut rows = Vec::new();
        for i in 0..30 {
            rows.push(vec![(i % 5) as f32 * 0.01, 0.0]);
        }
        for i in 0..30 {
            rows.push(vec![50.0 + (i % 5) as f32 * 0.01, 0.0]);
        }
        let ds = Dataset::from_rows(&rows);
        let (km, assign) = KMeans::fit(&ds, 2, 50, 1);
        assert_eq!(km.num_groups(), 2);
        let first = assign[0];
        assert!(assign[..30].iter().all(|&a| a == first));
        assert!(assign[30..].iter().all(|&a| a != first));
    }

    #[test]
    fn assign_agrees_with_fit_assignments() {
        let ds = synth::clustered(&ClusteredSpec::small(300), 3);
        let (km, assign) = KMeans::fit(&ds, 8, 50, 3);
        for (i, a) in assign.iter().enumerate() {
            assert_eq!(km.assign(ds.row(i)), *a, "row {i}");
        }
    }

    #[test]
    fn duplicate_points_yield_fewer_clusters() {
        let ds = Dataset::from_rows(&vec![vec![1.0, 1.0]; 20]);
        let (km, assign) = KMeans::fit(&ds, 5, 10, 0);
        assert_eq!(km.num_groups(), 1);
        assert!(assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![10.0]]);
        let (km, _) = KMeans::fit(&ds, 10, 10, 0);
        assert!(km.num_groups() <= 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = synth::clustered(&ClusteredSpec::small(200), 9);
        let (_, a1) = KMeans::fit(&ds, 6, 30, 42);
        let (_, a2) = KMeans::fit(&ds, 6, 30, 42);
        assert_eq!(a1, a2);
    }

    #[test]
    fn from_centroids_roundtrip_assigns_identically() {
        let ds = synth::clustered(&ClusteredSpec::small(200), 13);
        let (km, _) = KMeans::fit(&ds, 6, 30, 17);
        let back = KMeans::from_centroids(km.centroids().clone()).unwrap();
        for row in ds.iter() {
            assert_eq!(back.assign(row), km.assign(row));
        }
        assert!(KMeans::from_centroids(Dataset::new(4)).is_err(), "empty set rejected");
        let mut bad = km.centroids().clone();
        bad.row_mut(0)[0] = f32::NAN;
        assert!(KMeans::from_centroids(bad).is_err(), "NaN rejected");
    }

    #[test]
    fn all_group_ids_dense() {
        let ds = synth::clustered(&ClusteredSpec::small(200), 11);
        let (km, assign) = KMeans::fit(&ds, 7, 30, 5);
        let g = km.num_groups();
        assert!(assign.iter().all(|&a| a < g));
        let mut seen = vec![false; g];
        for &a in &assign {
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s), "dropped empty clusters must leave dense ids");
    }
}
