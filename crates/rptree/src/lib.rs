#![warn(missing_docs)]

//! Level 1 of the Bi-level LSH scheme: dataset partitioning.
//!
//! The main structure is the random projection tree ([`tree::RpTree`]) with
//! the *max* and *mean* split rules of Dasgupta & Freund, backed by the
//! Egecioglu–Kalantari approximate diameter ([`diameter`]). Baseline
//! partitioners the paper compares against (K-means, Kd-style median splits)
//! live in [`kmeans`] and [`kdpart`]; everything implements [`Partitioner`]
//! so level 2 can be composed with any of them.

pub mod diameter;
pub mod kdknn;
pub mod kdpart;
pub mod kmeans;
pub mod partition;
pub mod tree;

pub use diameter::{approx_diameter, DiameterEstimate};
pub use kdknn::KdKnn;
pub use kdpart::{KdNodeParts, KdPartitioner, KdParts};
pub use kmeans::KMeans;
pub use partition::{InvalidParts, Partitioner, SinglePartition};
pub use tree::{RpNodeParts, RpTree, RpTreeConfig, RpTreeParts, SplitRule};
