//! Random projection trees (Dasgupta & Freund) with the *max* and *mean*
//! split rules.
//!
//! Construction repeatedly splits the largest leaf until the requested number
//! of groups is reached, so any `g >= 1` is attainable (not just powers of
//! two). Each split projects the leaf's points onto a fresh random unit
//! direction and cuts at the median — with a bounded random jitter for the
//! *max* rule, or, for the *mean* rule, switches to a distance-from-mean
//! split whenever the leaf's diameter is large relative to its average
//! interpoint distance (the signature of a far-flung outlier cluster).

use crate::diameter::approx_diameter;
use crate::partition::Partitioner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vecstore::metric::squared_l2;
use vecstore::stats::{centroid_of, mean_sq_dist_to_centroid};
use vecstore::synth::StdNormal;
use vecstore::Dataset;

/// Which Dasgupta–Freund split rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Median split along a random direction, with jitter proportional to
    /// `Δ(S)/√D`. Guarantees bounded aspect ratio of the resulting cells.
    Max,
    /// Like `Max` at the median without jitter, but when
    /// `Δ²(S) > c · Δ_A²(S)` splits by distance to the mean instead. The
    /// paper reports this rule gives the best bi-level recall.
    Mean,
}

/// RP-tree construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RpTreeConfig {
    /// Number of leaf groups to produce.
    pub target_leaves: usize,
    /// Split rule.
    pub rule: SplitRule,
    /// Leaves smaller than `2 * min_leaf` are never split.
    pub min_leaf: usize,
    /// Constant `c` in the mean-rule test `Δ² > c · Δ_A²`.
    pub mean_rule_c: f32,
    /// Rounds for the approximate-diameter subroutine.
    pub diameter_rounds: usize,
    /// RNG seed (projections and jitter).
    pub seed: u64,
}

impl RpTreeConfig {
    /// Sensible defaults for `g` leaves with the *mean* rule.
    pub fn with_leaves(g: usize) -> Self {
        Self {
            target_leaves: g,
            rule: SplitRule::Mean,
            min_leaf: 8,
            mean_rule_c: 10.0,
            diameter_rounds: 40,
            seed: 0x5eed,
        }
    }

    /// Overrides the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the split rule (builder style).
    pub fn rule(mut self, rule: SplitRule) -> Self {
        self.rule = rule;
        self
    }
}

/// One node of the fitted tree, stored in an arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    /// Terminal node carrying its dense leaf index.
    Leaf { leaf_id: usize },
    /// `v · dir <= threshold` goes left.
    ProjSplit { dir: Vec<f32>, threshold: f32, left: usize, right: usize },
    /// `‖v − mean‖² <= threshold_sq` goes left.
    DistSplit { mean: Vec<f32>, threshold_sq: f32, left: usize, right: usize },
}

/// A fitted random projection tree.
///
/// `RP-tree(v)` of the paper is [`RpTree::assign`]; leaf ids are dense in
/// `0..num_leaves()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RpTree {
    nodes: Vec<Node>,
    num_leaves: usize,
    dim: usize,
}

/// A leaf pending a split attempt, ordered by size.
struct PendingLeaf {
    node: usize,
    ids: Vec<usize>,
}

impl RpTree {
    /// Fits a tree on `data`, returning the tree and the leaf assignment of
    /// every row.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `target_leaves == 0`.
    pub fn fit(data: &Dataset, config: &RpTreeConfig) -> (Self, Vec<usize>) {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        assert!(config.target_leaves >= 1, "need at least one leaf");
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut nodes = vec![Node::Leaf { leaf_id: usize::MAX }];
        let mut open = vec![PendingLeaf { node: 0, ids: (0..data.len()).collect() }];
        let mut closed: Vec<PendingLeaf> = Vec::new();

        while open.len() + closed.len() < config.target_leaves && !open.is_empty() {
            // Split the largest open leaf.
            let (largest, _) = open
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.ids.len())
                .expect("open is non-empty");
            let leaf = open.swap_remove(largest);
            if leaf.ids.len() < 2 * config.min_leaf.max(1) {
                closed.push(leaf);
                continue;
            }
            match try_split(data, &leaf.ids, config, &mut rng) {
                Some((split, left_ids, right_ids)) => {
                    let left = nodes.len();
                    let right = nodes.len() + 1;
                    nodes.push(Node::Leaf { leaf_id: usize::MAX });
                    nodes.push(Node::Leaf { leaf_id: usize::MAX });
                    nodes[leaf.node] = match split {
                        Split::Proj { dir, threshold } => {
                            Node::ProjSplit { dir, threshold, left, right }
                        }
                        Split::Dist { mean, threshold_sq } => {
                            Node::DistSplit { mean, threshold_sq, left, right }
                        }
                    };
                    open.push(PendingLeaf { node: left, ids: left_ids });
                    open.push(PendingLeaf { node: right, ids: right_ids });
                }
                None => closed.push(leaf), // degenerate (all points identical)
            }
        }
        closed.extend(open);

        // Assign dense leaf ids in node order for determinism.
        closed.sort_by_key(|l| l.node);
        let mut assignments = vec![0usize; data.len()];
        for (leaf_id, leaf) in closed.iter().enumerate() {
            nodes[leaf.node] = Node::Leaf { leaf_id };
            for &i in &leaf.ids {
                assignments[i] = leaf_id;
            }
        }
        let tree = Self { nodes, num_leaves: closed.len(), dim: data.dim() };
        (tree, assignments)
    }

    /// Number of leaves actually produced (may be below the target when the
    /// data cannot be split further).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Dimensionality the tree was fitted on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Dumps the tree's structure for persistence.
    pub fn to_parts(&self) -> RpTreeParts {
        let nodes = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { leaf_id } => RpNodeParts::Leaf { leaf_id: *leaf_id },
                Node::ProjSplit { dir, threshold, left, right } => RpNodeParts::ProjSplit {
                    dir: dir.clone(),
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
                Node::DistSplit { mean, threshold_sq, left, right } => RpNodeParts::DistSplit {
                    mean: mean.clone(),
                    threshold_sq: *threshold_sq,
                    left: *left,
                    right: *right,
                },
            })
            .collect();
        RpTreeParts { nodes, num_leaves: self.num_leaves, dim: self.dim }
    }

    /// Rebuilds a tree from a structural dump, validating that the arena is
    /// a proper binary tree rooted at node 0 whose leaves carry exactly the
    /// dense ids `0..num_leaves` and whose split vectors match `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::partition::InvalidParts`] naming the violated invariant.
    pub fn from_parts(parts: RpTreeParts) -> Result<Self, crate::partition::InvalidParts> {
        use crate::partition::InvalidParts;
        let RpTreeParts { nodes, num_leaves, dim } = parts;
        if dim == 0 {
            return Err(InvalidParts("dim must be positive".into()));
        }
        if nodes.is_empty() {
            return Err(InvalidParts("tree has no nodes".into()));
        }
        let mut visited = vec![false; nodes.len()];
        let mut leaf_seen = vec![false; num_leaves];
        let mut leaves_found = 0usize;
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = nodes
                .get(i)
                .ok_or_else(|| InvalidParts(format!("child index {i} out of range")))?;
            if std::mem::replace(&mut visited[i], true) {
                return Err(InvalidParts(format!("node {i} reachable twice (not a tree)")));
            }
            match node {
                RpNodeParts::Leaf { leaf_id } => {
                    if *leaf_id >= num_leaves || std::mem::replace(&mut leaf_seen[*leaf_id], true) {
                        return Err(InvalidParts(format!("leaf id {leaf_id} invalid or repeated")));
                    }
                    leaves_found += 1;
                }
                RpNodeParts::ProjSplit { dir, left, right, .. } => {
                    if dir.len() != dim {
                        return Err(InvalidParts("split direction length != dim".into()));
                    }
                    stack.push(*left);
                    stack.push(*right);
                }
                RpNodeParts::DistSplit { mean, left, right, .. } => {
                    if mean.len() != dim {
                        return Err(InvalidParts("split mean length != dim".into()));
                    }
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        if !visited.iter().all(|&v| v) {
            return Err(InvalidParts("unreachable nodes in arena".into()));
        }
        if leaves_found != num_leaves {
            return Err(InvalidParts(format!(
                "{leaves_found} leaves reachable, header claims {num_leaves}"
            )));
        }
        let nodes = nodes
            .into_iter()
            .map(|n| match n {
                RpNodeParts::Leaf { leaf_id } => Node::Leaf { leaf_id },
                RpNodeParts::ProjSplit { dir, threshold, left, right } => {
                    Node::ProjSplit { dir, threshold, left, right }
                }
                RpNodeParts::DistSplit { mean, threshold_sq, left, right } => {
                    Node::DistSplit { mean, threshold_sq, left, right }
                }
            })
            .collect();
        Ok(Self { nodes, num_leaves, dim })
    }
}

/// Structural dump of one [`RpTree`] arena node, for persistence.
#[derive(Debug, Clone)]
pub enum RpNodeParts {
    /// Terminal node carrying its dense leaf index.
    Leaf {
        /// Dense leaf id in `0..num_leaves`.
        leaf_id: usize,
    },
    /// `v · dir <= threshold` goes left.
    ProjSplit {
        /// Unit projection direction (`dim` entries).
        dir: Vec<f32>,
        /// Split threshold on the projection.
        threshold: f32,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    /// `‖v − mean‖² <= threshold_sq` goes left.
    DistSplit {
        /// Cell mean (`dim` entries).
        mean: Vec<f32>,
        /// Squared-distance threshold.
        threshold_sq: f32,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
}

/// Owned structural dump of a fitted [`RpTree`].
#[derive(Debug, Clone)]
pub struct RpTreeParts {
    /// Arena nodes; node 0 is the root.
    pub nodes: Vec<RpNodeParts>,
    /// Number of leaves (dense ids `0..num_leaves`).
    pub num_leaves: usize,
    /// Dimensionality the tree was fitted on.
    pub dim: usize,
}

impl Partitioner for RpTree {
    fn assign(&self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "query dimension mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { leaf_id } => return *leaf_id,
                Node::ProjSplit { dir, threshold, left, right } => {
                    node = if vecstore::metric::dot(v, dir) <= *threshold { *left } else { *right };
                }
                Node::DistSplit { mean, threshold_sq, left, right } => {
                    node = if squared_l2(v, mean) <= *threshold_sq { *left } else { *right };
                }
            }
        }
    }

    fn num_groups(&self) -> usize {
        self.num_leaves
    }
}

enum Split {
    Proj { dir: Vec<f32>, threshold: f32 },
    Dist { mean: Vec<f32>, threshold_sq: f32 },
}

/// Random unit direction in `R^dim`.
fn random_unit(dim: usize, rng: &mut StdRng) -> Vec<f32> {
    loop {
        let v: Vec<f32> = (0..dim).map(|_| rng.sample(StdNormal)).collect();
        let n = vecstore::metric::norm(&v);
        if n > 1e-12 {
            return v.into_iter().map(|x| x / n).collect();
        }
    }
}

/// Lower median of a scratch slice (mutates the slice): the value `m` such
/// that at least half the elements are `<= m` and, for even lengths, the
/// `<=`-split is exactly balanced.
fn median(xs: &mut [f32]) -> f32 {
    let mid = (xs.len() - 1) / 2;
    *xs.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("finite")).1
}

/// Attempts to split `ids`; returns `None` when every candidate threshold
/// degenerates (e.g. all points identical). Retries a few random directions
/// before giving up.
fn try_split(
    data: &Dataset,
    ids: &[usize],
    config: &RpTreeConfig,
    rng: &mut StdRng,
) -> Option<(Split, Vec<usize>, Vec<usize>)> {
    // Mean rule: test Δ² > c · Δ_A² first; that branch needs no direction.
    if config.rule == SplitRule::Mean {
        let diam = approx_diameter(data, ids, config.diameter_rounds).estimate();
        // Δ_A²(S) = 2 · mean squared distance to the mean.
        let avg_sq = 2.0 * mean_sq_dist_to_centroid(data, ids);
        if diam * diam > config.mean_rule_c * avg_sq && avg_sq > 0.0 {
            let mean = centroid_of(data, ids);
            let mut dists: Vec<f32> = ids.iter().map(|&i| squared_l2(data.row(i), &mean)).collect();
            let thr = median(&mut dists);
            let (l, r) = partition_by(ids, |i| squared_l2(data.row(i), &mean) <= thr);
            if !l.is_empty() && !r.is_empty() {
                return Some((Split::Dist { mean, threshold_sq: thr }, l, r));
            }
            // Fall through to a projection split when the distance split
            // degenerates (many points exactly at the median radius).
        }
    }

    for _attempt in 0..8 {
        let dir = random_unit(data.dim(), rng);
        let mut projs: Vec<f32> =
            ids.iter().map(|&i| vecstore::metric::dot(data.row(i), &dir)).collect();
        let lo = projs.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = projs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if hi - lo <= 0.0 {
            continue; // no spread along this direction
        }
        let med = median(&mut projs);
        let threshold = match config.rule {
            SplitRule::Max => {
                // Jitter ∝ Δ(S)/√D keeps the guaranteed aspect-ratio bound.
                let diam = approx_diameter(data, ids, config.diameter_rounds).estimate();
                let jitter_scale = 6.0 * diam / (data.dim() as f32).sqrt();
                let jitter = rng.gen_range(-1.0f32..=1.0) * jitter_scale;
                // Clamp inside the projection range so the split is proper.
                (med + jitter).clamp(lo, hi)
            }
            SplitRule::Mean => med,
        };
        let (l, r) = partition_by(ids, |i| vecstore::metric::dot(data.row(i), &dir) <= threshold);
        if !l.is_empty() && !r.is_empty() {
            return Some((Split::Proj { dir, threshold }, l, r));
        }
    }
    None
}

fn partition_by<F: Fn(usize) -> bool>(ids: &[usize], pred: F) -> (Vec<usize>, Vec<usize>) {
    let mut l = Vec::new();
    let mut r = Vec::new();
    for &i in ids {
        if pred(i) {
            l.push(i);
        } else {
            r.push(i);
        }
    }
    (l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::synth::{self, ClusteredSpec};

    fn fit(rule: SplitRule, g: usize, seed: u64) -> (RpTree, Vec<usize>, Dataset) {
        let ds = synth::clustered(&ClusteredSpec::small(400), seed);
        let cfg = RpTreeConfig { rule, ..RpTreeConfig::with_leaves(g) }.seed(seed);
        let (tree, assign) = RpTree::fit(&ds, &cfg);
        (tree, assign, ds)
    }

    #[test]
    fn produces_requested_leaf_count() {
        for rule in [SplitRule::Max, SplitRule::Mean] {
            let (tree, _, _) = fit(rule, 8, 1);
            assert_eq!(tree.num_leaves(), 8, "rule {rule:?}");
        }
    }

    #[test]
    fn assignments_cover_all_leaves() {
        let (tree, assign, _) = fit(SplitRule::Mean, 8, 2);
        let mut seen = vec![false; tree.num_leaves()];
        for &a in &assign {
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s), "every leaf holds at least one point");
    }

    #[test]
    fn assign_agrees_with_construction() {
        for rule in [SplitRule::Max, SplitRule::Mean] {
            let (tree, assign, ds) = fit(rule, 16, 3);
            for (i, a) in assign.iter().enumerate() {
                assert_eq!(tree.assign(ds.row(i)), *a, "row {i} rule {rule:?}");
            }
        }
    }

    #[test]
    fn single_leaf_is_identity_partition() {
        let (tree, assign, _) = fit(SplitRule::Mean, 1, 4);
        assert_eq!(tree.num_leaves(), 1);
        assert!(assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn identical_points_cannot_be_split() {
        let ds = Dataset::from_rows(&vec![vec![1.0, 2.0]; 50]);
        let (tree, assign) = RpTree::fit(&ds, &RpTreeConfig::with_leaves(4));
        assert_eq!(tree.num_leaves(), 1);
        assert!(assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn min_leaf_limits_splitting() {
        let ds = synth::gaussian(4, 40, 1.0, 7);
        let mut cfg = RpTreeConfig::with_leaves(64);
        cfg.min_leaf = 10;
        let (tree, assign) = RpTree::fit(&ds, &cfg);
        // 40 points with min_leaf 10 allows at most 2 splits of 40 -> leaves >= 20 ... sizes.
        assert!(tree.num_leaves() <= 4, "got {} leaves", tree.num_leaves());
        let groups = crate::partition::group_ids(&assign, tree.num_leaves());
        // No leaf that was produced by a split may be smaller than... splits only
        // happen on leaves of >= 2*min_leaf, so resulting leaves can be small,
        // but every leaf must be non-empty.
        assert!(groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = synth::clustered(&ClusteredSpec::small(200), 5);
        let cfg = RpTreeConfig::with_leaves(8).seed(77);
        let (_, a1) = RpTree::fit(&ds, &cfg);
        let (_, a2) = RpTree::fit(&ds, &cfg);
        assert_eq!(a1, a2);
    }

    #[test]
    fn splits_are_roughly_balanced_with_mean_rule() {
        let (tree, assign, _) = fit(SplitRule::Mean, 4, 8);
        let groups = crate::partition::group_ids(&assign, tree.num_leaves());
        let max = groups.iter().map(Vec::len).max().unwrap();
        let min = groups.iter().map(Vec::len).min().unwrap();
        // Median splits keep groups within a small factor of each other.
        assert!(max <= 8 * min.max(1), "imbalanced: max={max} min={min}");
    }

    #[test]
    fn mean_rule_separates_well_separated_clusters() {
        // Two tight clusters far apart: the very first split should separate
        // them (either rule variant), giving pure leaves.
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(vec![0.0 + (i as f32) * 1e-3, 0.0]);
        }
        for i in 0..50 {
            rows.push(vec![100.0 + (i as f32) * 1e-3, 0.0]);
        }
        let ds = Dataset::from_rows(&rows);
        let (_, assign) = RpTree::fit(&ds, &RpTreeConfig::with_leaves(2));
        let first = assign[0];
        assert!(assign[..50].iter().all(|&a| a == first));
        assert!(assign[50..].iter().all(|&a| a != first));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn assign_rejects_wrong_dim() {
        let (tree, _, _) = fit(SplitRule::Mean, 2, 1);
        let _ = tree.assign(&[0.0]);
    }

    #[test]
    fn parts_roundtrip_assigns_identically() {
        for rule in [SplitRule::Max, SplitRule::Mean] {
            let (tree, _, ds) = fit(rule, 8, 13);
            let back = RpTree::from_parts(tree.to_parts()).unwrap();
            assert_eq!(back.num_leaves(), tree.num_leaves());
            for row in ds.iter() {
                assert_eq!(back.assign(row), tree.assign(row), "rule {rule:?}");
            }
        }
    }

    #[test]
    fn tampered_parts_are_rejected() {
        let (tree, _, _) = fit(SplitRule::Mean, 6, 19);

        let mut p = tree.to_parts();
        p.num_leaves += 1;
        assert!(RpTree::from_parts(p).is_err(), "leaf count mismatch");

        let mut p = tree.to_parts();
        if let Some(first_split) =
            p.nodes.iter_mut().find(|n| !matches!(n, RpNodeParts::Leaf { .. }))
        {
            match first_split {
                RpNodeParts::ProjSplit { left, .. } | RpNodeParts::DistSplit { left, .. } => {
                    *left = 9999;
                }
                RpNodeParts::Leaf { .. } => unreachable!(),
            }
            assert!(RpTree::from_parts(p).is_err(), "out-of-range child");
        }

        let mut p = tree.to_parts();
        if let Some(RpNodeParts::Leaf { leaf_id }) =
            p.nodes.iter_mut().find(|n| matches!(n, RpNodeParts::Leaf { .. }))
        {
            *leaf_id = p.num_leaves; // duplicate-or-overflow
        }
        assert!(RpTree::from_parts(p).is_err(), "bad leaf id");

        assert!(RpTree::from_parts(tree.to_parts()).is_ok(), "untampered parts load");
    }
}
