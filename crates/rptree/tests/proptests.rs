//! Property-based tests of the level-1 invariants: every partitioner's
//! `assign` agrees with construction, leaves are non-empty and dense, and
//! the diameter approximation brackets the truth.

use proptest::prelude::*;
use rptree::partition::group_ids;
use rptree::{
    approx_diameter, KMeans, KdPartitioner, Partitioner, RpTree, RpTreeConfig, SplitRule,
};
use vecstore::stats::exact_diameter;
use vecstore::Dataset;

fn dataset() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-100.0f32..100.0, 3), 2..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rptree_assign_agrees_with_fit(
        rows in dataset(),
        g in 1usize..9,
        seed in any::<u64>(),
        max_rule in any::<bool>(),
    ) {
        let ds = Dataset::from_rows(&rows);
        let rule = if max_rule { SplitRule::Max } else { SplitRule::Mean };
        let cfg = RpTreeConfig::with_leaves(g).rule(rule).seed(seed);
        let (tree, assign) = RpTree::fit(&ds, &cfg);
        prop_assert!(tree.num_leaves() >= 1);
        prop_assert!(tree.num_leaves() <= g);
        for (i, &a) in assign.iter().enumerate() {
            prop_assert!(a < tree.num_leaves());
            prop_assert_eq!(tree.assign(ds.row(i)), a, "row {}", i);
        }
        // Every leaf id is used.
        let groups = group_ids(&assign, tree.num_leaves());
        prop_assert!(groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn kd_assign_agrees_with_fit(rows in dataset(), g in 1usize..9) {
        let ds = Dataset::from_rows(&rows);
        let (kd, assign) = KdPartitioner::fit(&ds, g);
        for (i, &a) in assign.iter().enumerate() {
            prop_assert_eq!(kd.assign(ds.row(i)), a, "row {}", i);
        }
    }

    #[test]
    fn kmeans_assign_agrees_with_fit(rows in dataset(), k in 1usize..6, seed in any::<u64>()) {
        let ds = Dataset::from_rows(&rows);
        let (km, assign) = KMeans::fit(&ds, k, 20, seed);
        for (i, &a) in assign.iter().enumerate() {
            prop_assert_eq!(km.assign(ds.row(i)), a, "row {}", i);
        }
        // Dense cluster ids.
        let groups = group_ids(&assign, km.num_groups());
        prop_assert!(groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn diameter_bounds_bracket_truth(rows in dataset(), rounds in 1usize..40) {
        let ds = Dataset::from_rows(&rows);
        let ids: Vec<usize> = (0..ds.len()).collect();
        let est = approx_diameter(&ds, &ids, rounds);
        let truth = exact_diameter(&ds, &ids);
        prop_assert!(est.lower <= truth * 1.0001 + 1e-3, "lower {} > truth {}", est.lower, truth);
        prop_assert!(est.upper >= truth * 0.9999 - 1e-3, "upper {} < truth {}", est.upper, truth);
        prop_assert!(est.lower <= est.upper * 1.0001 + 1e-3);
    }
}
