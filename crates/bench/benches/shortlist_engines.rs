//! Microbenchmarks of the three short-list engines over an imbalanced
//! candidate workload (the organization comparison behind Figure 4), plus
//! the probe phase that feeds them, timed separately per worker count.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shortlist::{shortlist_per_query, shortlist_serial, shortlist_workqueue};
use std::hint::black_box;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::SquaredL2;

fn bench_engines(c: &mut Criterion) {
    let data = synth::gaussian(64, 5_000, 1.0, 1);
    let queries = synth::gaussian(64, 100, 1.0, 2);
    let mut rng = StdRng::seed_from_u64(3);
    // Heavy-tailed candidate counts: most queries small, a few huge.
    let candidates: Vec<Vec<u32>> = (0..queries.len())
        .map(|q| {
            let len = if q % 10 == 0 { 2_000 } else { 50 };
            (0..len).map(|_| rng.gen_range(0..data.len()) as u32).collect()
        })
        .collect();
    let mut group = c.benchmark_group("shortlist");
    group.sample_size(20);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(shortlist_serial(&data, &queries, &candidates, 50, &SquaredL2)))
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("per_query_{threads}t"), |b| {
            b.iter(|| {
                black_box(shortlist_per_query(
                    &data,
                    &queries,
                    &candidates,
                    50,
                    &SquaredL2,
                    threads,
                ))
            })
        });
        group.bench_function(format!("workqueue_{threads}t"), |b| {
            b.iter(|| {
                black_box(shortlist_workqueue(
                    &data,
                    &queries,
                    &candidates,
                    50,
                    &SquaredL2,
                    threads,
                    65_536,
                ))
            })
        });
    }
    group.finish();
}

/// The probe phase that produces the engines' candidate sets, isolated per
/// worker count (1 = the former serial hot path).
fn bench_probe(c: &mut Criterion) {
    let corpus = synth::clustered(&ClusteredSpec::benchmark(64, 5_100), 5);
    let (data, queries) = corpus.split_at(5_000);
    let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(60.0));
    let mut group = c.benchmark_group("probe");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("candidates_{threads}t"), |b| {
            b.iter(|| black_box(index.candidates_batch_with(&queries, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_probe);
criterion_main!(benches);
