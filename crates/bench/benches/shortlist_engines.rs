//! Microbenchmarks of the three short-list engines over an imbalanced
//! candidate workload (the organization comparison behind Figure 4).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shortlist::{shortlist_per_query, shortlist_serial, shortlist_workqueue};
use std::hint::black_box;
use vecstore::{synth, SquaredL2};

fn bench_engines(c: &mut Criterion) {
    let data = synth::gaussian(64, 5_000, 1.0, 1);
    let queries = synth::gaussian(64, 100, 1.0, 2);
    let mut rng = StdRng::seed_from_u64(3);
    // Heavy-tailed candidate counts: most queries small, a few huge.
    let candidates: Vec<Vec<u32>> = (0..queries.len())
        .map(|q| {
            let len = if q % 10 == 0 { 2_000 } else { 50 };
            (0..len).map(|_| rng.gen_range(0..data.len()) as u32).collect()
        })
        .collect();
    let mut group = c.benchmark_group("shortlist");
    group.sample_size(20);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(shortlist_serial(&data, &queries, &candidates, 50, &SquaredL2)))
    });
    group.bench_function("per_query_2t", |b| {
        b.iter(|| black_box(shortlist_per_query(&data, &queries, &candidates, 50, &SquaredL2, 2)))
    });
    group.bench_function("workqueue_2t", |b| {
        b.iter(|| {
            black_box(shortlist_workqueue(&data, &queries, &candidates, 50, &SquaredL2, 2, 65_536))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
