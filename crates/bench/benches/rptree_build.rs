//! Microbenchmarks of level-1 construction: RP-tree (both rules), K-means,
//! and the approximate-diameter subroutine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rptree::{approx_diameter, KMeans, RpTree, RpTreeConfig, SplitRule};
use std::hint::black_box;
use vecstore::synth::{self, ClusteredSpec};

fn bench_level1(c: &mut Criterion) {
    let data = synth::clustered(&ClusteredSpec::benchmark(64, 5_000), 11);
    let mut group = c.benchmark_group("level1");
    group.sample_size(10);
    for rule in [SplitRule::Mean, SplitRule::Max] {
        group.bench_with_input(
            BenchmarkId::new("rptree_fit_16", format!("{rule:?}")),
            &rule,
            |b, &r| {
                let cfg = RpTreeConfig::with_leaves(16).rule(r);
                b.iter(|| black_box(RpTree::fit(&data, &cfg)))
            },
        );
    }
    group.bench_function("kmeans_fit_16", |b| b.iter(|| black_box(KMeans::fit(&data, 16, 50, 5))));
    let ids: Vec<usize> = (0..data.len()).collect();
    group.bench_function("approx_diameter_m40", |b| {
        b.iter(|| black_box(approx_diameter(&data, &ids, 40)))
    });
    group.finish();
}

criterion_group!(benches, bench_level1);
criterion_main!(benches);
