//! Microbenchmarks of the E8 lattice: block decode, multi-block decode,
//! ancestor computation, and root enumeration.

use criterion::{criterion_group, criterion_main, Criterion};
use lattice::{decode_e8_block, decode_e8_raw, e8_ancestor, e8_roots};
use std::hint::black_box;

fn bench_e8(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8");
    let x = [0.3f64, -1.2, 4.7, 0.01, -3.3, 2.2, 0.9, -0.4];
    group.bench_function("decode_block", |b| b.iter(|| black_box(decode_e8_block(black_box(&x)))));
    let raw: Vec<f32> = (0..16).map(|i| (i as f32) * 0.7 - 4.0).collect();
    group.bench_function("decode_two_blocks", |b| {
        b.iter(|| black_box(decode_e8_raw(black_box(&raw))))
    });
    let code = decode_e8_raw(&raw);
    group.bench_function("ancestor", |b| b.iter(|| black_box(e8_ancestor(black_box(&code)))));
    group.bench_function("roots_240", |b| b.iter(|| black_box(e8_roots())));
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
