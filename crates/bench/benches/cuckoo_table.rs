//! Microbenchmarks of the cuckoo hash table: build cost vs load factor and
//! lookup throughput (the ablation DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cuckoo::CuckooTable;
use std::hint::black_box;

fn items(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 1, i)).collect()
}

fn bench_cuckoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuckoo");
    for &load in &[0.3f64, 0.5, 0.7, 0.85] {
        group.bench_with_input(BenchmarkId::new("build_20k", load.to_string()), &load, |b, &l| {
            b.iter(|| {
                CuckooTable::build_with_load(black_box(items(20_000)), l, 7)
                    .unwrap_or_else(|e| panic!("build at load {l}: {e}"))
            })
        });
    }
    let table =
        CuckooTable::build(items(100_000), 9).unwrap_or_else(|e| panic!("100k-item build: {e}"));
    let keys: Vec<u64> = items(100_000).iter().map(|&(k, _)| k).collect();
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("lookup_100k_hits", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc ^= table.get(black_box(k)).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    group.bench_function("lookup_100k_misses", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc ^= table.get(black_box(k | (1 << 63))).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cuckoo);
criterion_main!(benches);
