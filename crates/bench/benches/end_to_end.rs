//! End-to-end index benchmarks: build and batch-query cost for the method
//! variants, table vs flat storage.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, FlatIndex, Probe};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vecstore::synth::{self, ClusteredSpec};

fn bench_index(c: &mut Criterion) {
    let corpus = synth::clustered(&ClusteredSpec::benchmark(64, 5_200), 21);
    let (data, queries) = corpus.split_at(5_000);
    let w = 60.0;
    let mut group = c.benchmark_group("index");
    group.sample_size(10);
    group.bench_function("build_standard", |b| {
        b.iter(|| black_box(BiLevelIndex::build(&data, &BiLevelConfig::standard(w))))
    });
    group.bench_function("build_bilevel_16g", |b| {
        b.iter(|| black_box(BiLevelIndex::build(&data, &BiLevelConfig::paper_default(w))))
    });
    group.bench_function("build_flat", |b| {
        b.iter(|| black_box(FlatIndex::build(&data, &BiLevelConfig::paper_default(w))))
    });
    let standard = BiLevelIndex::build(&data, &BiLevelConfig::standard(w));
    let bilevel = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(w));
    let multi =
        BiLevelIndex::build(&data, &BiLevelConfig::paper_default(w).probe(Probe::Multi(64)));
    group.bench_function("query200_standard", |b| {
        b.iter(|| black_box(standard.query_batch(&queries, 50)))
    });
    group.bench_function("query200_bilevel", |b| {
        b.iter(|| black_box(bilevel.query_batch(&queries, 50)))
    });
    group.bench_function("query200_multiprobe", |b| {
        b.iter(|| black_box(multi.query_batch(&queries, 50)))
    });
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
