//! End-to-end index benchmarks: build and batch-query cost for the method
//! variants, table vs flat storage, plus the query pipeline split into its
//! probe (candidate generation) and rank (short-list) phases so the
//! parallel probe speedup is visible on its own.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Engine, FlatIndex, Probe, QueryOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use shortlist::{shortlist_serial, shortlist_workqueue};
use std::hint::black_box;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::SquaredL2;

fn bench_index(c: &mut Criterion) {
    let corpus = synth::clustered(&ClusteredSpec::benchmark(64, 5_200), 21);
    let (data, queries) = corpus.split_at(5_000);
    let w = 60.0;
    let mut group = c.benchmark_group("index");
    group.sample_size(10);
    group.bench_function("build_standard", |b| {
        b.iter(|| black_box(BiLevelIndex::build(&data, &BiLevelConfig::standard(w))))
    });
    group.bench_function("build_bilevel_16g", |b| {
        b.iter(|| black_box(BiLevelIndex::build(&data, &BiLevelConfig::paper_default(w))))
    });
    group.bench_function("build_flat", |b| {
        b.iter(|| black_box(FlatIndex::build(&data, &BiLevelConfig::paper_default(w))))
    });
    let standard = BiLevelIndex::build(&data, &BiLevelConfig::standard(w));
    let bilevel = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(w));
    let multi =
        BiLevelIndex::build(&data, &BiLevelConfig::paper_default(w).probe(Probe::Multi(64)));
    group.bench_function("query200_standard", |b| {
        b.iter(|| black_box(standard.query_batch_opts(&queries, &QueryOptions::new(50))))
    });
    group.bench_function("query200_bilevel", |b| {
        b.iter(|| black_box(bilevel.query_batch_opts(&queries, &QueryOptions::new(50))))
    });
    group.bench_function("query200_multiprobe", |b| {
        b.iter(|| black_box(multi.query_batch_opts(&queries, &QueryOptions::new(50))))
    });
    group.finish();
}

/// Probe vs rank phase timings. `probe_*` rows isolate candidate
/// generation at 1 and 4 workers (the tentpole speedup measurement);
/// `rank_*` rows take pre-generated candidates; `pipeline_*` rows run both
/// phases under one engine selection.
fn bench_pipeline_phases(c: &mut Criterion) {
    let corpus = synth::clustered(&ClusteredSpec::benchmark(64, 5_200), 23);
    let (data, queries) = corpus.split_at(5_000);
    let k = 50;
    let index = BiLevelIndex::build(
        &data,
        &BiLevelConfig::paper_default(60.0).probe(Probe::Hierarchical { min_candidates: 100 }),
    );
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("probe_{threads}t"), |b| {
            b.iter(|| black_box(index.candidates_batch_with(&queries, threads)))
        });
    }
    let candidates = index.candidates_batch_with(&queries, 1);
    group.bench_function("rank_serial", |b| {
        b.iter(|| black_box(shortlist_serial(&data, &queries, &candidates, k, &SquaredL2)))
    });
    group.bench_function("rank_workqueue_4t", |b| {
        b.iter(|| {
            black_box(shortlist_workqueue(&data, &queries, &candidates, k, &SquaredL2, 4, 1 << 16))
        })
    });
    group.bench_function("pipeline_serial", |b| {
        b.iter(|| black_box(index.query_batch_opts(&queries, &QueryOptions::new(k))))
    });
    group.bench_function("pipeline_workqueue_4t", |b| {
        b.iter(|| {
            black_box(index.query_batch_opts(
                &queries,
                &QueryOptions::new(k).engine(Engine::WorkQueue { threads: 4, capacity: 1 << 16 }),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index, bench_pipeline_phases);
criterion_main!(benches);
