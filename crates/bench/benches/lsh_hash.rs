//! Microbenchmarks of the p-stable hash family: raw projection, Z^M
//! quantization, and the multi-probe sequence generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsh::{probe_codes, HashFamily};
use std::hint::black_box;

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_hash");
    for dim in [64usize, 256, 512] {
        let family = HashFamily::sample(dim, 8, 4.0, 7);
        let v: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();
        group.bench_with_input(BenchmarkId::new("hash_zm_m8", dim), &dim, |b, _| {
            b.iter(|| black_box(family.hash_zm(black_box(&v))))
        });
    }
    let family = HashFamily::sample(64, 8, 4.0, 7);
    let v: Vec<f32> = (0..64).map(|i| (i as f32).cos()).collect();
    let raw = family.project(&v);
    let home = family.hash_zm(&v);
    for probes in [16usize, 64, 240] {
        group.bench_with_input(
            BenchmarkId::new("multiprobe_sequence", probes),
            &probes,
            |b, &t| b.iter(|| black_box(probe_codes(black_box(&raw), black_box(&home), t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
