//! Microbenchmarks of Morton codes and the Z^M bucket hierarchy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lattice::{MortonCode, ZmHierarchy};
use std::hint::black_box;

fn bench_morton(c: &mut Criterion) {
    let mut group = c.benchmark_group("morton");
    for m in [4usize, 8, 16] {
        let coords: Vec<i32> = (0..m as i32).map(|i| i * 37 - 100).collect();
        group.bench_with_input(BenchmarkId::new("encode", m), &m, |b, _| {
            b.iter(|| black_box(MortonCode::encode(black_box(&coords))))
        });
        let code = MortonCode::encode(&coords);
        group.bench_with_input(BenchmarkId::new("decode", m), &m, |b, _| {
            b.iter(|| black_box(code.decode()))
        });
    }
    // Hierarchy probe over 10k buckets.
    let codes: Vec<Vec<i32>> =
        (0..10_000).map(|i| vec![i % 101 - 50, (i * 17) % 89 - 44, i / 100]).collect();
    let h = ZmHierarchy::build(codes.iter().enumerate().map(|(i, c)| (c.as_slice(), i as u32)));
    group.bench_function("probe_expanding_10k", |b| {
        b.iter(|| black_box(h.probe_expanding(black_box(&[3, -7, 11]), 32)))
    });
    group.bench_function("nearest_buckets_10k", |b| {
        b.iter(|| black_box(h.nearest_buckets(black_box(&[3, -7, 11]), 16)))
    });
    group.finish();
}

criterion_group!(benches, bench_morton);
criterion_main!(benches);
