//! Minimal command-line parsing for the harness binaries (flag pairs only,
//! no external dependency).

/// Common knobs shared by every figure binary.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Training-set size.
    pub n: usize,
    /// Query-set size.
    pub queries: usize,
    /// Neighborhood size `k` (the paper uses 500; default scaled to 50).
    pub k: usize,
    /// Repetitions with fresh random projections.
    pub reps: usize,
    /// Ambient dimension of the synthetic GIST substitute.
    pub dim: usize,
    /// Level-1 group count for bi-level methods.
    pub groups: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Synthetic corpus profile: "labelme" (default) or "tiny".
    pub profile: String,
    /// Optional CSV output path.
    pub out: Option<String>,
    /// Optional JSON run-record output path (see [`crate::record`]).
    pub json: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            n: 10_000,
            queries: 1_000,
            k: 50,
            reps: 3,
            dim: 64,
            groups: 16,
            seed: 0xda7a,
            profile: "labelme".to_string(),
            out: None,
            json: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `--flag value` pairs from the process arguments, starting from
    /// defaults. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--n" => out.n = parse_num(&value(), &flag),
                "--queries" => out.queries = parse_num(&value(), &flag),
                "--k" => out.k = parse_num(&value(), &flag),
                "--reps" => out.reps = parse_num(&value(), &flag),
                "--dim" => out.dim = parse_num(&value(), &flag),
                "--groups" => out.groups = parse_num(&value(), &flag),
                "--seed" => out.seed = parse_num(&value(), &flag) as u64,
                "--profile" => {
                    let v = value();
                    if v != "labelme" && v != "tiny" {
                        eprintln!("unknown profile {v:?} (labelme|tiny)");
                        std::process::exit(2);
                    }
                    out.profile = v;
                }
                "--out" => out.out = Some(value()),
                "--json" => out.json = Some(value()),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <bin> [--n N] [--queries Q] [--k K] [--reps R] \
                         [--dim D] [--groups G] [--seed S] [--profile labelme|tiny] \
                         [--out FILE.csv] [--json FILE.json]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag: {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    }
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid number {s:?} for {flag}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_without_flags() {
        let a = HarnessArgs::parse_from(strs(&[]));
        assert_eq!(a.n, 10_000);
        assert_eq!(a.k, 50);
        assert!(a.out.is_none());
    }

    #[test]
    fn profile_flag_parses() {
        let a = HarnessArgs::parse_from(strs(&["--profile", "tiny"]));
        assert_eq!(a.profile, "tiny");
        assert_eq!(HarnessArgs::default().profile, "labelme");
    }

    #[test]
    fn flags_override_defaults() {
        let a = HarnessArgs::parse_from(strs(&[
            "--n",
            "500",
            "--queries",
            "20",
            "--k",
            "7",
            "--reps",
            "2",
            "--dim",
            "16",
            "--groups",
            "4",
            "--seed",
            "9",
            "--out",
            "x.csv",
            "--json",
            "x.json",
        ]));
        assert_eq!(a.n, 500);
        assert_eq!(a.queries, 20);
        assert_eq!(a.k, 7);
        assert_eq!(a.reps, 2);
        assert_eq!(a.dim, 16);
        assert_eq!(a.groups, 4);
        assert_eq!(a.seed, 9);
        assert_eq!(a.out.as_deref(), Some("x.csv"));
        assert_eq!(a.json.as_deref(), Some("x.json"));
    }
}
