//! The cross-PR perf record: `BENCH_<pr>.json` writer and validator.
//!
//! Every `ext_*` harness can dump its measurements as a single JSON *run
//! record* via `--json FILE`; the checked-in `BENCH_<pr>.json` at the repo
//! root collects the runs that justify a PR's perf claims (baseline build
//! and current build on the same box). CI's bench-smoke step re-runs the
//! harnesses at tiny scale and validates both the fresh dumps and the
//! checked-in record against the `knn-bench/1` schema, so the record can
//! never rot into prose.
//!
//! Schema `knn-bench/1`:
//!
//! ```json
//! {
//!   "schema": "knn-bench/1",
//!   "pr": 6,
//!   "generated": "2026-08-08",
//!   "host": { "cores": 1 },
//!   "runs": [
//!     {
//!       "label": "pre-PR baseline (commit abc1234)",
//!       "bench": "ext_ooc",
//!       "params": { "n": 10000, "dim": 64 },
//!       "metrics": { "serial_per_row_ms": 123.4 }
//!     }
//!   ]
//! }
//! ```
//!
//! A bare run object (what `--json` emits) is also accepted by
//! [`validate`]. Rules: `schema` must match exactly, `runs` must be
//! non-empty, every run needs a non-empty `label`, `bench`, and `metrics`
//! map, and every metric value must be a finite number. The parser is
//! hand-rolled (like `core`'s config fallback) so validation works even
//! where the `serde_json` backend is a vendored stub.

use std::fmt::Write as _;

/// The schema tag every record must carry.
pub const SCHEMA: &str = "knn-bench/1";

/// One harness invocation's worth of measurements.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// Human label: what build / configuration produced these numbers.
    pub label: String,
    /// The harness binary name (`ext_ooc`, `ext_end_to_end`, ...).
    pub bench: String,
    /// Workload parameters, emitted as numbers when they parse as one.
    pub params: Vec<(String, String)>,
    /// Measurements; values must be finite.
    pub metrics: Vec<(String, f64)>,
}

impl RunRecord {
    /// New record for a harness binary.
    pub fn new(bench: &str, label: &str) -> Self {
        Self { bench: bench.to_string(), label: label.to_string(), ..Self::default() }
    }

    /// Adds a workload parameter (numeric strings are emitted unquoted).
    pub fn param(&mut self, key: &str, value: impl ToString) {
        self.params.push((key.to_string(), value.to_string()));
    }

    /// Adds a measurement.
    pub fn metric(&mut self, key: &str, value: f64) {
        assert!(value.is_finite(), "metric {key} must be finite, got {value}");
        self.metrics.push((key.to_string(), value));
    }

    /// Serializes the run as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"label\": {},", quote(&self.label));
        let _ = writeln!(s, "  \"bench\": {},", quote(&self.bench));
        s.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            // Numeric parameter values stay numbers in the document.
            if v.parse::<f64>().is_ok() {
                let _ = write!(s, "{sep}{}: {v}", quote(k));
            } else {
                let _ = write!(s, "{sep}{}: {}", quote(k), quote(v));
            }
        }
        s.push_str(" },\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            let _ = write!(s, "{sep}{}: {}", quote(k), fmt_num(*v));
        }
        s.push_str(" }\n}\n");
        s
    }

    /// Writes the run record to `path` and reports it on stderr.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())?;
        eprintln!("wrote run record {path}");
        Ok(())
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_num(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Summary of a validated record, for the CLI's one-line report.
#[derive(Debug, PartialEq, Eq)]
pub struct BenchSummary {
    /// PR number the record belongs to (0 for a bare run dump).
    pub pr: u64,
    /// Number of runs in the document.
    pub runs: usize,
    /// Total metrics across all runs.
    pub metrics: usize,
}

/// Validates a `BENCH_*.json` document or a bare `--json` run dump.
pub fn validate(text: &str) -> Result<BenchSummary, String> {
    let doc = Json::parse(text)?;
    // A bare run dump has no schema tag; dispatch on its presence.
    if doc.get("schema").is_none() && doc.get("bench").is_some() {
        let metrics = validate_run(&doc, 0)?;
        return Ok(BenchSummary { pr: 0, runs: 1, metrics });
    }
    let schema =
        doc.get("schema").and_then(Json::as_str).ok_or("missing top-level \"schema\" string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?} is not {SCHEMA:?}"));
    }
    let pr = doc.get("pr").and_then(Json::as_u64).ok_or("missing integer \"pr\"")?;
    doc.get("generated").and_then(Json::as_str).ok_or("missing \"generated\" date string")?;
    let runs = match doc.get("runs") {
        Some(Json::Arr(runs)) if !runs.is_empty() => runs,
        Some(Json::Arr(_)) => return Err("\"runs\" must be non-empty".into()),
        _ => return Err("missing \"runs\" array".into()),
    };
    let mut metrics = 0;
    for (i, run) in runs.iter().enumerate() {
        metrics += validate_run(run, i)?;
    }
    Ok(BenchSummary { pr, runs: runs.len(), metrics })
}

fn validate_run(run: &Json, i: usize) -> Result<usize, String> {
    for key in ["label", "bench"] {
        match run.get(key).and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("run {i}: missing non-empty \"{key}\" string")),
        }
    }
    if let Some(params) = run.get("params") {
        let Json::Obj(_) = params else {
            return Err(format!("run {i}: \"params\" must be an object"));
        };
    }
    let Some(Json::Obj(metrics)) = run.get("metrics") else {
        return Err(format!("run {i}: missing \"metrics\" object"));
    };
    if metrics.is_empty() {
        return Err(format!("run {i}: \"metrics\" must be non-empty"));
    }
    for (k, v) in metrics {
        match v.as_f64() {
            Some(x) if x.is_finite() => {}
            _ => return Err(format!("run {i}: metric {k:?} is not a finite number")),
        }
    }
    Ok(metrics.len())
}

/// Minimal JSON tree for validation (strings, numbers, bools, null,
/// arrays, objects; escape support limited to what [`RunRecord`] emits).
#[derive(Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, validated as `f64` at parse time.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one document; trailing non-whitespace is an error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Cursor { bytes: src.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Number as `f64`, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".into())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(format!("unexpected character '{}' at byte {}", b as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if self.peek()? != b':' {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let x: f64 = text.parse().map_err(|_| format!("invalid number '{text}'"))?;
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunRecord {
        let mut r = RunRecord::new("ext_ooc", "current build");
        r.param("n", 10_000);
        r.param("profile", "labelme");
        r.metric("serial_per_row_ms", 120.5);
        r.metric("coalesced_4t_ms", 41.0);
        r
    }

    #[test]
    fn run_dump_roundtrips_through_validator() {
        let json = record().to_json();
        let summary = validate(&json).unwrap();
        assert_eq!(summary, BenchSummary { pr: 0, runs: 1, metrics: 2 });
    }

    #[test]
    fn full_record_validates() {
        let doc = format!(
            "{{ \"schema\": \"knn-bench/1\", \"pr\": 6, \"generated\": \"2026-08-08\",\n\
             \"host\": {{ \"cores\": 1 }},\n\
             \"runs\": [ {}, {} ] }}",
            record().to_json(),
            record().to_json()
        );
        let summary = validate(&doc).unwrap();
        assert_eq!(summary, BenchSummary { pr: 6, runs: 2, metrics: 4 });
    }

    #[test]
    fn numeric_params_stay_numbers() {
        let json = record().to_json();
        assert!(json.contains("\"n\": 10000"), "{json}");
        assert!(json.contains("\"profile\": \"labelme\""), "{json}");
    }

    #[test]
    fn rejects_malformed_records() {
        // Wrong schema tag.
        let bad = "{ \"schema\": \"knn-bench/0\", \"pr\": 1, \"generated\": \"x\", \
                    \"runs\": [] }";
        assert!(validate(bad).unwrap_err().contains("knn-bench/1"));
        // Empty runs.
        let bad = "{ \"schema\": \"knn-bench/1\", \"pr\": 1, \"generated\": \"x\", \
                    \"runs\": [] }";
        assert!(validate(bad).unwrap_err().contains("non-empty"));
        // Run without metrics.
        let bad = "{ \"schema\": \"knn-bench/1\", \"pr\": 1, \"generated\": \"x\", \
                    \"runs\": [ { \"label\": \"a\", \"bench\": \"b\", \"metrics\": {} } ] }";
        assert!(validate(bad).unwrap_err().contains("metrics"));
        // Non-finite metric (JSON has no NaN literal; a string sneaks in).
        let bad = "{ \"schema\": \"knn-bench/1\", \"pr\": 1, \"generated\": \"x\", \
                    \"runs\": [ { \"label\": \"a\", \"bench\": \"b\", \
                    \"metrics\": { \"ms\": \"fast\" } } ] }";
        assert!(validate(bad).unwrap_err().contains("finite"));
        // Not JSON at all.
        assert!(validate("BENCH results: fast").is_err());
    }

    #[test]
    fn metric_rejects_non_finite_at_insert() {
        let mut r = RunRecord::new("b", "l");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.metric("ms", f64::NAN);
        }));
        assert!(err.is_err());
    }
}
