//! Per-figure experiment drivers. Each figure binary is a thin wrapper over
//! one of these functions; keeping the logic here makes it unit-testable at
//! tiny scale.

use crate::args::HarnessArgs;
use crate::data::prepare;
use crate::methods::{method_config, MethodKind};
use crate::report::emit;
use crate::sweep::{sweep_one, sweep_widths, w_grid, MethodCurve};
use bilevel_lsh::{BiLevelConfig, BiLevelIndex, FlatIndex, Partition, Quantizer, WidthMode};
use rptree::SplitRule;
use shortlist::{shortlist_serial, shortlist_workqueue};
use std::time::Instant;
use vecstore::SquaredL2;

/// The paper's three table counts (Figures 5–10 panels a, b, c).
pub const PAPER_LS: [usize; 3] = [10, 20, 30];

/// Figures 5–10: one standard-vs-bilevel comparison per `L`, for a given
/// quantizer and method pair (plain / multiprobe / hierarchical).
pub fn pairwise_figure(
    title: &str,
    quantizer: Quantizer,
    standard: MethodKind,
    bilevel: MethodKind,
    args: &HarnessArgs,
) {
    let prepared = prepare(args);
    let widths = w_grid(&prepared, args.k);
    let mut curves = Vec::new();
    for l in PAPER_LS {
        for kind in [standard, bilevel] {
            let mut curve = sweep_widths(
                &prepared,
                kind,
                quantizer,
                &widths,
                args.groups,
                l,
                8,
                args.k,
                args.reps,
            );
            curve.label = format!("{}-L{l}", curve.label);
            curves.push(curve);
        }
    }
    emit(title, &args.out, &curves);
}

/// Figures 11–12: all six methods at `L = 10`, with query-deviation columns.
pub fn all_methods_figure(title: &str, quantizer: Quantizer, args: &HarnessArgs) {
    let prepared = prepare(args);
    let widths = w_grid(&prepared, args.k);
    let curves: Vec<MethodCurve> = MethodKind::ALL
        .iter()
        .map(|&kind| {
            sweep_widths(&prepared, kind, quantizer, &widths, args.groups, 10, 8, args.k, args.reps)
        })
        .collect();
    emit(title, &args.out, &curves);
}

/// Figure 13(a): group-count sweep `g ∈ {1, 8, 16, 32, 64}` at `L = 20`.
pub fn groups_figure(args: &HarnessArgs) {
    let prepared = prepare(args);
    let widths = w_grid(&prepared, args.k);
    let curves: Vec<MethodCurve> = [1usize, 8, 16, 32, 64]
        .iter()
        .map(|&g| {
            let points = widths
                .iter()
                .map(|&w| {
                    sweep_one(
                        &prepared,
                        |run| {
                            let mut cfg =
                                method_config(MethodKind::BiLevel, Quantizer::Zm, w, g, 20, 8, run);
                            if g == 1 {
                                cfg.partition = Partition::None;
                            }
                            cfg
                        },
                        args.k,
                        args.reps,
                        w,
                    )
                })
                .collect();
            MethodCurve { label: format!("groups-{g}"), points }
        })
        .collect();
    emit("Figure 13(a): quality vs number of level-1 groups (L = 20)", &args.out, &curves);
}

/// Figure 13(b): `M` sweep for Bi-level vs standard at `L = 20`.
pub fn m_figure(args: &HarnessArgs) {
    let prepared = prepare(args);
    let widths = w_grid(&prepared, args.k);
    let mut curves = Vec::new();
    for m in [6usize, 8, 10] {
        for kind in [MethodKind::Standard, MethodKind::BiLevel] {
            let mut curve = sweep_widths(
                &prepared,
                kind,
                Quantizer::Zm,
                &widths,
                args.groups,
                20,
                m,
                args.k,
                args.reps,
            );
            curve.label = format!("{}-M{m}", curve.label);
            curves.push(curve);
        }
    }
    emit(
        "Figure 13(b): Bi-level vs standard across hash dimensions M (L = 20)",
        &args.out,
        &curves,
    );
}

/// Figure 13(c): RP-tree vs K-means as the level-1 partitioner, `L = 20`.
pub fn partitioner_figure(args: &HarnessArgs) {
    let prepared = prepare(args);
    let widths = w_grid(&prepared, args.k);
    let variants: [(&str, Partition); 3] = [
        ("rptree-mean", Partition::RpTree { groups: args.groups, rule: SplitRule::Mean }),
        ("rptree-max", Partition::RpTree { groups: args.groups, rule: SplitRule::Max }),
        ("kmeans", Partition::KMeans { groups: args.groups }),
    ];
    let curves: Vec<MethodCurve> = variants
        .iter()
        .map(|(label, partition)| {
            let points = widths
                .iter()
                .map(|&w| {
                    sweep_one(
                        &prepared,
                        |run| {
                            let mut cfg = method_config(
                                MethodKind::BiLevel,
                                Quantizer::Zm,
                                w,
                                args.groups,
                                20,
                                8,
                                run,
                            );
                            cfg.partition = *partition;
                            cfg
                        },
                        args.k,
                        args.reps,
                        w,
                    )
                })
                .collect();
            MethodCurve { label: label.to_string(), points }
        })
        .collect();
    emit("Figure 13(c): RP-tree vs K-means level-1 partitioning (L = 20)", &args.out, &curves);
}

/// One row of Figure 4's timing comparison. Probe (candidate generation)
/// and rank (short-list) phases are timed separately, so organization
/// effects on each phase are visible instead of folded into one number.
#[derive(Debug, Clone)]
pub struct ShortlistTiming {
    /// Mean short-list candidates per query at this width.
    pub mean_candidates: f64,
    /// Table-storage probe phase on one worker (the serial baseline).
    pub probe_serial_ms: f64,
    /// Table-storage probe phase on [`PROBE_THREADS`] workers.
    pub probe_parallel_ms: f64,
    /// Serial heap ranking of the table candidates ("CPU-lshkit" rank).
    pub cpu_rank_ms: f64,
    /// Cuckoo/flat storage lookup + serial heap ranking
    /// ("GPU hash table + CPU short-list").
    pub hash_ms: f64,
    /// Batched work-queue ranking of the flat candidates ("pure GPU").
    pub wq_rank_ms: f64,
}

/// Worker count of the parallel probe column (the ≥4-thread configuration
/// the pipeline speedup is reported at).
pub const PROBE_THREADS: usize = 4;

/// Figure 4: short-list search organization comparison over a candidate-
/// count sweep (driven by `W`), with the probe phase timed separately from
/// ranking.
pub fn shortlist_figure(args: &HarnessArgs) -> Vec<ShortlistTiming> {
    let prepared = prepare(args);
    let mut rows = Vec::new();
    println!("\n## Figure 4: short-list search timing (k = {}, L = 10, M = 8)\n", args.k);
    println!(
        "| mean candidates | probe 1t ms | probe {PROBE_THREADS}t ms | CPU rank ms \
         | hash+CPU ms | WQ rank ms |"
    );
    println!("|---|---|---|---|---|---|");
    for &w in &w_grid(&prepared, args.k) {
        let cfg = BiLevelConfig {
            l: 10,
            m: 8,
            width: WidthMode::Fixed(w),
            partition: Partition::None,
            quantizer: Quantizer::Zm,
            probe: bilevel_lsh::Probe::Home,
            table_pool: None,
            projection: bilevel_lsh::Projection::Dense,
            metric: bilevel_lsh::MetricKind::L2,
            family: bilevel_lsh::FamilyKind::PStable,
            seed: 0xF16,
        };
        let table_index = BiLevelIndex::build(&prepared.train, &cfg);
        let flat_index = FlatIndex::build(&prepared.train, &cfg);

        // Probe phase, table storage: serial vs worker pool.
        let t0 = Instant::now();
        let cands_table = table_index.candidates_batch_with(&prepared.queries, 1);
        let probe_serial_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _ = table_index.candidates_batch_with(&prepared.queries, PROBE_THREADS);
        let probe_parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Method 1 rank phase: serial heap over the table candidates.
        let t2 = Instant::now();
        let _ =
            shortlist_serial(&prepared.train, &prepared.queries, &cands_table, args.k, &SquaredL2);
        let cpu_rank_ms = t2.elapsed().as_secs_f64() * 1e3;

        // Method 2: flat cuckoo storage + serial short-list.
        let t3 = Instant::now();
        let cands_flat = flat_index.candidates_batch_with(&prepared.queries, 1);
        let _ =
            shortlist_serial(&prepared.train, &prepared.queries, &cands_flat, args.k, &SquaredL2);
        let hash_ms = t3.elapsed().as_secs_f64() * 1e3;

        // Method 3 rank phase: batched work queue over the flat candidates.
        let t4 = Instant::now();
        let _ = shortlist_workqueue(
            &prepared.train,
            &prepared.queries,
            &cands_flat,
            args.k,
            &SquaredL2,
            2,
            1 << 16,
        );
        let wq_rank_ms = t4.elapsed().as_secs_f64() * 1e3;

        let mean_candidates =
            cands_flat.iter().map(Vec::len).sum::<usize>() as f64 / cands_flat.len().max(1) as f64;
        println!(
            "| {mean_candidates:.1} | {probe_serial_ms:.1} | {probe_parallel_ms:.1} \
             | {cpu_rank_ms:.1} | {hash_ms:.1} | {wq_rank_ms:.1} |"
        );
        rows.push(ShortlistTiming {
            mean_candidates,
            probe_serial_ms,
            probe_parallel_ms,
            cpu_rank_ms,
            hash_ms,
            wq_rank_ms,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> HarnessArgs {
        HarnessArgs {
            n: 250,
            queries: 25,
            k: 5,
            reps: 1,
            dim: 16,
            groups: 4,
            ..HarnessArgs::default()
        }
    }

    #[test]
    fn shortlist_figure_produces_rows() {
        let rows = shortlist_figure(&tiny_args());
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.cpu_rank_ms >= 0.0 && r.wq_rank_ms >= 0.0));
        assert!(rows.iter().all(|r| r.probe_serial_ms >= 0.0 && r.probe_parallel_ms >= 0.0));
        // Candidate counts grow with W.
        assert!(rows.last().unwrap().mean_candidates >= rows[0].mean_candidates);
    }

    #[test]
    fn groups_figure_runs_at_tiny_scale() {
        // Smoke test: must not panic with g=1 (Partition::None path).
        groups_figure(&tiny_args());
    }

    #[test]
    fn m_and_partitioner_figures_run_at_tiny_scale() {
        m_figure(&tiny_args());
        partitioner_figure(&tiny_args());
    }

    #[test]
    fn pairwise_figure_runs_for_both_quantizers() {
        let args = tiny_args();
        pairwise_figure("t", Quantizer::Zm, MethodKind::Standard, MethodKind::BiLevel, &args);
        pairwise_figure("t", Quantizer::E8, MethodKind::Standard, MethodKind::BiLevel, &args);
    }
}
