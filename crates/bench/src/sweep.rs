//! The bucket-width sweep: the inner loop of Figures 5–13.
//!
//! For each `W` in an ascending grid, the sweep builds `reps` indexes with
//! fresh projections, evaluates all queries against ground truth, and
//! reduces the `reps × queries` evaluation matrix to one
//! [`SeriesPoint`] carrying means and both deviation sources.

use crate::data::Prepared;
use crate::methods::{method_config, MethodKind};
use bilevel_lsh::{evaluate_index, BiLevelConfig, BiLevelIndex, Quantizer, SeriesPoint};
use knn_metrics::RunAggregate;
use lsh::DistanceProfile;

/// One method's full selectivity/quality curve.
#[derive(Debug, Clone)]
pub struct MethodCurve {
    /// Method label for reporting.
    pub label: String,
    /// One point per swept `W`, ascending.
    pub points: Vec<SeriesPoint>,
}

/// Data-driven `W` grid: geometric multiples of the sampled k-NN distance.
///
/// The p-stable collision probability depends only on the ratio `W / c`, so
/// anchoring the grid at the dataset's own neighbor distance makes the sweep
/// span tiny buckets (selectivity ≈ 0) through buckets wide enough to push
/// recall toward 1, at any data scale.
pub fn w_grid(prepared: &Prepared, k: usize) -> Vec<f32> {
    let profile = DistanceProfile::fit(&prepared.train, k, 200);
    let base = profile.d_knn as f32;
    [1.0f32, 2.0, 4.0, 8.0, 16.0, 32.0].iter().map(|m| m * base).collect()
}

/// Sweeps one method over the width grid.
#[allow(clippy::too_many_arguments)]
pub fn sweep_widths(
    prepared: &Prepared,
    kind: MethodKind,
    quantizer: Quantizer,
    widths: &[f32],
    groups: usize,
    l: usize,
    m: usize,
    k: usize,
    reps: usize,
) -> MethodCurve {
    let points = widths
        .iter()
        .map(|&w| {
            sweep_one(
                prepared,
                |run| method_config(kind, quantizer, w, groups, l, m, run),
                k,
                reps,
                w,
            )
        })
        .collect();
    MethodCurve { label: kind.label().to_string(), points }
}

/// Evaluates `reps` runs of an arbitrary config generator at one width.
pub fn sweep_one<F>(
    prepared: &Prepared,
    config_for_run: F,
    k: usize,
    reps: usize,
    w: f32,
) -> SeriesPoint
where
    F: Fn(usize) -> BiLevelConfig,
{
    let evals: Vec<_> = (0..reps)
        .map(|run| {
            let index = BiLevelIndex::build(&prepared.train, &config_for_run(run));
            evaluate_index(&index, &prepared.queries, &prepared.truth, k)
        })
        .collect();
    RunAggregate::new(evals).series_point(w as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::HarnessArgs;
    use crate::data::prepare;

    fn tiny() -> Prepared {
        prepare(&HarnessArgs { n: 300, queries: 40, k: 5, dim: 16, ..HarnessArgs::default() })
    }

    #[test]
    fn selectivity_increases_with_w() {
        let p = tiny();
        let curve =
            sweep_widths(&p, MethodKind::Standard, Quantizer::Zm, &[0.5, 4.0, 32.0], 1, 5, 8, 5, 2);
        assert_eq!(curve.points.len(), 3);
        for pair in curve.points.windows(2) {
            assert!(
                pair[0].selectivity <= pair[1].selectivity + 1e-9,
                "selectivity must grow with W"
            );
        }
    }

    #[test]
    fn recall_reaches_one_for_huge_w() {
        let p = tiny();
        let curve = sweep_widths(&p, MethodKind::Standard, Quantizer::Zm, &[1e5], 1, 5, 8, 5, 1);
        assert!(curve.points[0].recall > 0.99);
    }
}
