//! CSV and markdown emitters for the figure harnesses.

use crate::sweep::MethodCurve;
use std::io::Write;

/// CSV header matching [`write_csv`]'s row layout.
pub const CSV_HEADER: &str = "method,w,selectivity,selectivity_std_proj,selectivity_std_query,\
recall,recall_std_proj,recall_std_query,error_ratio,error_std_proj,error_std_query";

/// Writes every curve as CSV rows (one file per figure).
pub fn write_csv(path: &str, curves: &[MethodCurve]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{CSV_HEADER}")?;
    for curve in curves {
        for p in &curve.points {
            writeln!(
                f,
                "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                curve.label,
                p.w,
                p.selectivity,
                p.selectivity_std_proj,
                p.selectivity_std_query,
                p.recall,
                p.recall_std_proj,
                p.recall_std_query,
                p.error_ratio,
                p.error_std_proj,
                p.error_std_query,
            )?;
        }
    }
    f.flush()
}

/// Prints the curves as a markdown table to stdout — the "figure" the
/// harness reproduces, in series form.
pub fn print_markdown_table(title: &str, curves: &[MethodCurve]) {
    println!("\n## {title}\n");
    println!(
        "| method | W | selectivity τ | recall ρ (±proj / ±query) | error κ (±proj / ±query) |"
    );
    println!("|---|---|---|---|---|");
    for curve in curves {
        for p in &curve.points {
            println!(
                "| {} | {:.2} | {:.4} | {:.4} (±{:.4} / ±{:.4}) | {:.4} (±{:.4} / ±{:.4}) |",
                curve.label,
                p.w,
                p.selectivity,
                p.recall,
                p.recall_std_proj,
                p.recall_std_query,
                p.error_ratio,
                p.error_std_proj,
                p.error_std_query,
            );
        }
    }
}

/// Writes the CSV when the caller provided `--out`, always prints markdown.
pub fn emit(title: &str, out: &Option<String>, curves: &[MethodCurve]) {
    print_markdown_table(title, curves);
    if let Some(path) = out {
        match write_csv(path, curves) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_metrics::SeriesPoint;

    fn point(w: f64) -> SeriesPoint {
        SeriesPoint {
            w,
            selectivity: 0.1,
            selectivity_std_proj: 0.01,
            selectivity_std_query: 0.02,
            recall: 0.9,
            recall_std_proj: 0.03,
            recall_std_query: 0.04,
            error_ratio: 0.95,
            error_std_proj: 0.05,
            error_std_query: 0.06,
        }
    }

    #[test]
    fn csv_roundtrip_row_count() {
        let curves = vec![
            MethodCurve { label: "a".into(), points: vec![point(1.0), point(2.0)] },
            MethodCurve { label: "b".into(), points: vec![point(1.0)] },
        ];
        let dir = std::env::temp_dir().join("bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(path.to_str().unwrap(), &curves).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert!(lines[0].starts_with("method,w,"));
        assert!(lines[1].starts_with("a,1,"));
        assert!(lines[3].starts_with("b,1,"));
    }
}
