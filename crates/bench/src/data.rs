//! Dataset preparation for the harnesses: synthetic GIST-substitute corpus
//! plus exact ground truth (the expensive part, hence the in-process cache
//! of prepared scenarios keyed by the argument tuple).

use crate::args::HarnessArgs;
use bilevel_lsh::ground_truth;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Dataset, Neighbor};

/// A ready-to-run scenario: train set, query set, and exact k-NN truth.
pub struct Prepared {
    /// Training vectors the index is built over.
    pub train: Dataset,
    /// Held-out query vectors.
    pub queries: Dataset,
    /// Exact k-nearest neighbors of every query (L2 distances).
    pub truth: Vec<Vec<Neighbor>>,
}

/// Generates the synthetic corpus and computes ground truth.
///
/// The generator mimics GIST descriptors of image corpora: high ambient
/// dimension, low intrinsic dimension, anisotropic multi-modal clusters
/// (see DESIGN.md §3 for the substitution argument).
pub fn prepare(args: &HarnessArgs) -> Prepared {
    let total = args.n + args.queries;
    let spec = match args.profile.as_str() {
        "tiny" => ClusteredSpec::benchmark_tiny(args.dim, total),
        _ => ClusteredSpec::benchmark(args.dim, total),
    };
    let corpus = synth::clustered(&spec, args.seed);
    let (train, queries) = corpus.split_at(args.n);
    let truth = ground_truth(&train, &queries, args.k, 1);
    Prepared { train, queries, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_profile_differs_from_labelme() {
        let base = HarnessArgs { n: 150, queries: 10, k: 3, dim: 16, ..HarnessArgs::default() };
        let tiny = HarnessArgs { profile: "tiny".into(), ..base.clone() };
        let a = prepare(&base);
        let b = prepare(&tiny);
        assert_eq!(a.train.len(), b.train.len());
        assert_ne!(a.train, b.train, "profiles must generate different corpora");
    }

    #[test]
    fn prepare_shapes_match_args() {
        let args = HarnessArgs { n: 200, queries: 30, k: 5, dim: 16, ..HarnessArgs::default() };
        let p = prepare(&args);
        assert_eq!(p.train.len(), 200);
        assert_eq!(p.queries.len(), 30);
        assert_eq!(p.truth.len(), 30);
        assert!(p.truth.iter().all(|t| t.len() == 5));
        assert_eq!(p.train.dim(), 16);
    }
}
