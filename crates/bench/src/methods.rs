//! The six method variants of Figures 11–12 as named configurations.

use bilevel_lsh::{BiLevelConfig, Partition, Probe, Quantizer, WidthMode};
use rptree::SplitRule;

/// Neighborhood size the per-group width profiles are fitted with.
const PROFILE_K: usize = 20;

/// Multi-probe budget used throughout the paper's evaluation.
pub const PAPER_PROBES: usize = 240;

/// One of the six compared methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Standard (single-level) LSH, home-bucket probing.
    Standard,
    /// Standard LSH + 240-probe multi-probe.
    MultiStandard,
    /// Standard LSH + bucket hierarchy.
    HierStandard,
    /// Bi-level LSH (RP-tree level 1), home-bucket probing.
    BiLevel,
    /// Bi-level + multi-probe.
    MultiBiLevel,
    /// Bi-level + hierarchy.
    HierBiLevel,
}

impl MethodKind {
    /// All six methods, in the ordering the paper's figures use.
    pub const ALL: [MethodKind; 6] = [
        MethodKind::Standard,
        MethodKind::MultiStandard,
        MethodKind::HierStandard,
        MethodKind::BiLevel,
        MethodKind::MultiBiLevel,
        MethodKind::HierBiLevel,
    ];

    /// Short label used in CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Standard => "standard",
            MethodKind::MultiStandard => "multiprobe-standard",
            MethodKind::HierStandard => "hierarchical-standard",
            MethodKind::BiLevel => "bilevel",
            MethodKind::MultiBiLevel => "multiprobe-bilevel",
            MethodKind::HierBiLevel => "hierarchical-bilevel",
        }
    }

    /// Whether level 1 uses the RP-tree.
    pub fn is_bilevel(self) -> bool {
        matches!(self, MethodKind::BiLevel | MethodKind::MultiBiLevel | MethodKind::HierBiLevel)
    }
}

/// Builds the configuration for one method at bucket width `w`.
///
/// `groups` is the level-1 leaf count used by the bi-level variants; `l` the
/// table count; `m` the code dimension; `run` perturbs the seed so each
/// repetition draws fresh projections.
pub fn method_config(
    kind: MethodKind,
    quantizer: Quantizer,
    w: f32,
    groups: usize,
    l: usize,
    m: usize,
    run: usize,
) -> BiLevelConfig {
    // The bi-level variants use the *max* split rule and per-group scaled
    // widths: the max rule's diameter-bounded jitter preserves neighborhoods
    // markedly better on the synthetic GIST substitute (EXPERIMENTS.md §
    // "split-rule deviation"), and per-group width scaling is the paper's
    // Section IV-B per-cluster parameter tuning in sweepable form.
    let partition = if kind.is_bilevel() {
        Partition::RpTree { groups, rule: SplitRule::Max }
    } else {
        Partition::None
    };
    let probe = match kind {
        MethodKind::Standard | MethodKind::BiLevel => Probe::Home,
        MethodKind::MultiStandard | MethodKind::MultiBiLevel => Probe::Multi(PAPER_PROBES),
        MethodKind::HierStandard | MethodKind::HierBiLevel => {
            Probe::Hierarchical { min_candidates: 1 }
        }
    };
    let width = if kind.is_bilevel() {
        WidthMode::Scaled { base: w, k: PROFILE_K }
    } else {
        WidthMode::Fixed(w)
    };
    BiLevelConfig {
        l,
        m,
        width,
        partition,
        quantizer,
        probe,
        table_pool: None,
        projection: bilevel_lsh::Projection::Dense,
        metric: bilevel_lsh::MetricKind::L2,
        family: bilevel_lsh::FamilyKind::PStable,
        seed: 0xF16 ^ ((run as u64) << 32) ^ (run as u64).wrapping_mul(0x9E3779B97F4A7C15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_labels() {
        let mut labels: Vec<&str> = MethodKind::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn bilevel_methods_use_rptree() {
        for kind in MethodKind::ALL {
            let cfg = method_config(kind, Quantizer::Zm, 1.0, 16, 10, 8, 0);
            let expect_groups = if kind.is_bilevel() { 16 } else { 1 };
            assert_eq!(cfg.partition.groups(), expect_groups, "{kind:?}");
            cfg.validate();
        }
    }

    #[test]
    fn runs_perturb_seed() {
        let a = method_config(MethodKind::Standard, Quantizer::Zm, 1.0, 16, 10, 8, 0);
        let b = method_config(MethodKind::Standard, Quantizer::Zm, 1.0, 16, 10, 8, 1);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn probe_matches_kind() {
        let multi = method_config(MethodKind::MultiBiLevel, Quantizer::E8, 1.0, 8, 10, 8, 0);
        assert_eq!(multi.probe, Probe::Multi(PAPER_PROBES));
        let hier = method_config(MethodKind::HierStandard, Quantizer::Zm, 1.0, 8, 10, 8, 0);
        assert!(matches!(hier.probe, Probe::Hierarchical { .. }));
    }
}
