//! Ablation: work-queue capacity — how the batched short-list engine's
//! throughput depends on the queue budget (the GPU global-memory analog).

fn main() {
    use bench::data::prepare;
    use bilevel_lsh::{BiLevelConfig, BiLevelIndex};
    use shortlist::shortlist_workqueue;
    use std::time::Instant;
    use vecstore::SquaredL2;
    let args = bench::HarnessArgs::parse();
    let p = prepare(&args);
    let index = BiLevelIndex::build(&p.train, &BiLevelConfig::standard(64.0));
    let candidates = index.candidates_batch(&p.queries);
    let total: usize = candidates.iter().map(Vec::len).sum();
    println!("\n## Ablation: work-queue capacity (total candidates = {total})\n");
    println!("| queue capacity | ms |");
    println!("|---|---|");
    for cap in [256usize, 1024, 4096, 16384, 65536, 262144] {
        if cap <= args.k {
            continue;
        }
        let t = Instant::now();
        let _ = shortlist_workqueue(&p.train, &p.queries, &candidates, args.k, &SquaredL2, 2, cap);
        println!("| {cap} | {:.1} |", t.elapsed().as_secs_f64() * 1e3);
    }
}
