//! Figure 13(c): RP-tree (mean and max rules) vs K-means as the level-1
//! partitioner, L = 20.

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::partitioner_figure(&args);
}
