//! Extension: network serving — pipelined framed-protocol throughput
//! against a one-request-per-round-trip baseline, both over loopback TCP.
//!
//! The baseline client is strictly synchronous: write one frame, flush,
//! block for the response, repeat — every query pays a full socket round
//! trip plus the server's dispatch wake-up. The pipelined client writes a
//! whole window of frames with a single flush before reading any
//! response, so the round trip and the syscalls amortize across the
//! window *and* the server's session loop coalesces the burst into the
//! service's micro-batches (its reader thread keeps decoding while
//! earlier queries execute).
//!
//! Correctness is asserted inline: the pipelined replies must be
//! byte-identical to the synchronous replies, response order must match
//! request order, and the server's net telemetry must have counted every
//! frame. The throughput gate (pipelined >= 2x baseline) needs >= 2
//! cores — with the client, the session, its reader, and the dispatcher
//! time-slicing one core, pipelining still wins on syscalls but the gate
//! is report-only, matching `ext_serve`'s precedent.

use bilevel_lsh::telemetry::Counter;
use bilevel_lsh::{BiLevelConfig, Probe, WidthMode};
use knn_net::{NetClient, NetServer, Registry, ServerConfig, TenantConfig};
use knn_serve::protocol::format_vector;
use knn_serve::ServiceConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::synth::{self, ClusteredSpec};

/// Frames per pipelined window: deep enough to amortize the flush and
/// fill micro-batches, shallow enough that neither side's socket buffer
/// fills while the client is still writing.
const WINDOW: usize = 128;

fn main() {
    let args = bench::HarnessArgs::parse();
    let spec = match args.profile.as_str() {
        "tiny" => ClusteredSpec::benchmark_tiny(args.dim, args.n + args.queries),
        _ => ClusteredSpec::benchmark(args.dim, args.n + args.queries),
    };
    let corpus = synth::clustered(&spec, args.seed);
    let (train, queries) = corpus.split_at(args.n);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Recall-tuned widths with multi-probe: substantial per-query work,
    // corpus-independent configuration (same shape as ext_serve).
    let mut cfg = BiLevelConfig::paper_default(1.0).probe(Probe::Multi(4)).tables(6);
    cfg.width = WidthMode::Tuned { target_recall: 0.8, k: args.k };

    let registry = Arc::new(Registry::new());
    registry
        .register_replica(
            "bench",
            train,
            &cfg,
            1,
            TenantConfig::default().k(args.k).service(
                ServiceConfig::default().max_batch(32).max_wait(Duration::from_micros(200)),
            ),
        )
        .expect("register bench tenant");
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let client = NetClient::connect(&addr).expect("dial loopback");

    let lines: Vec<String> = (0..queries.len()).map(|q| format_vector(queries.row(q))).collect();

    // Ground truth + warmup in one pass: the synchronous replies.
    let reference: Vec<String> =
        lines.iter().map(|l| client.request(l).expect("warmup request")).collect();
    assert!(reference.iter().all(|r| !r.starts_with("ERROR")), "bench queries must not error");

    println!(
        "\n## Network serving: {} queries x {} reps over loopback, k = {}, {} core(s)\n",
        queries.len(),
        args.reps,
        args.k,
        cores
    );

    // Baseline: one request per round trip.
    let timer = Instant::now();
    for _ in 0..args.reps {
        for (line, expected) in lines.iter().zip(&reference) {
            let reply = client.request(line).expect("sync request");
            assert_eq!(&reply, expected, "synchronous replies must be stable");
        }
    }
    let sync_elapsed = timer.elapsed();
    let sync_qps = (lines.len() * args.reps) as f64 / sync_elapsed.as_secs_f64();

    // Pipelined: windows of frames, one flush per window.
    let timer = Instant::now();
    for _ in 0..args.reps {
        for (chunk, expected) in lines.chunks(WINDOW).zip(reference.chunks(WINDOW)) {
            let replies = client.pipeline(chunk).expect("pipelined window");
            assert_eq!(replies, expected, "pipelined replies diverged from synchronous");
        }
    }
    let pipe_elapsed = timer.elapsed();
    let pipe_qps = (lines.len() * args.reps) as f64 / pipe_elapsed.as_secs_f64();
    let speedup = pipe_qps / sync_qps;

    let recorder = registry.recorder();
    let net_requests = recorder.counter(Counter::NetRequests);
    let bytes_in = recorder.counter(Counter::NetBytesIn);
    let bytes_out = recorder.counter(Counter::NetBytesOut);
    // Warmup + both timed phases, one frame per request, all counted.
    let expected_requests = (lines.len() * (2 * args.reps + 1)) as u64;
    assert_eq!(net_requests, expected_requests, "every frame counted exactly once");
    assert!(bytes_in > 0 && bytes_out > 0);

    println!("| client | qps | wall | vs 1-per-round-trip |");
    println!("|---|---|---|---|");
    println!("| 1 sync | {sync_qps:.0} | {sync_elapsed:?} | 1.00x |");
    println!("| pipelined x{WINDOW} | {pipe_qps:.0} | {pipe_elapsed:?} | {speedup:.2}x |");
    println!(
        "\nserver counters: {net_requests} requests, {bytes_in} bytes in, {bytes_out} bytes out"
    );
    if cores >= 2 {
        assert!(
            speedup >= 2.0,
            "pipelining must at least double one-request-per-round-trip throughput \
             on loopback (got {speedup:.2}x)"
        );
    } else {
        println!(
            "\n(single core: client, session, reader, and dispatcher time-slice one CPU, \
             so the 2x gate is report-only; every pipelined reply was still verified \
             byte-identical to the synchronous baseline)"
        );
    }

    if let Some(path) = &args.json {
        let mut record = bench::RunRecord::new("ext_net", "pipelined vs sync over loopback TCP");
        record.param("n", args.n);
        record.param("queries", lines.len());
        record.param("dim", args.dim);
        record.param("k", args.k);
        record.param("reps", args.reps);
        record.param("window", WINDOW);
        record.param("cores", cores);
        record.metric("sync_qps", sync_qps);
        record.metric("pipelined_qps", pipe_qps);
        record.metric("speedup", speedup);
        record.metric("net_requests", net_requests as f64);
        record.metric("net_bytes_in", bytes_in as f64);
        record.metric("net_bytes_out", bytes_out as f64);
        record.write(path).expect("write run record");
    }

    server.shutdown();
}
