//! Extension: end-to-end in-memory query path with the rank stage isolated
//! — the PR 6 kernel-layer measurement. Three comparisons on one corpus:
//!
//! 1. **rank per-pair vs batch kernel** — the same candidate sets ranked by
//!    the pre-kernel inner loop (one `Metric::distance` call per candidate,
//!    gather-loading each row) and by the current engines, which stream
//!    sorted id runs through `vecstore::kernel::squared_l2_batch`. Asserted
//!    bit-identical: the batch kernel's fixed summation order matches the
//!    per-pair kernel exactly.
//! 2. **pipeline exact vs quantized rerank** — `query_batch_opts` with
//!    `rerank` off (exact f32 rank of every candidate) and on (i8 quantized
//!    first pass keeps the `depth` best, exact rerank of survivors), with
//!    recall@k of the rerank path against the exact path and brute force.
//! 3. **telemetry accounting** — pruned/reranked counters from the run.
//!
//! `--json FILE` dumps the measurements as a `knn-bench/1` run record for
//! `BENCH_*.json` (see `bench::record`).

use bilevel_lsh::telemetry::{Counter, InMemoryRecorder};
use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Probe, QueryOptions};
use shortlist::shortlist_serial;
use std::time::Instant;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{
    knn_batch, total_dist_cmp, Dataset, Metric, Neighbor, PreparedQuery, QuantizedCorpus,
    SquaredL2, TopK,
};

/// The quantized-first-pass rank stage over pregenerated candidates: i8
/// approximate scores select the `depth` best per query, then only the
/// survivors get exact f32 distances — the same prune `QueryOptions::rerank`
/// runs inside the index, reproduced through the public `vecstore` API so
/// the stage can be timed in isolation.
fn rank_quantized(
    data: &Dataset,
    qc: &QuantizedCorpus,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    depth: usize,
    metric: &dyn Metric,
) -> Vec<Vec<Neighbor>> {
    let mut prep = PreparedQuery::default();
    let mut scores: Vec<f32> = Vec::new();
    let pruned: Vec<Vec<u32>> = candidates
        .iter()
        .enumerate()
        .map(|(q, cands)| {
            let mut unique = cands.clone();
            unique.sort_unstable();
            unique.dedup();
            if unique.len() > depth {
                qc.prepare_into(queries.row(q), &mut prep);
                scores.clear();
                qc.approx_scores_into(&prep, &unique, &mut scores);
                let mut keyed: Vec<(f32, u32)> =
                    scores.iter().copied().zip(unique.iter().copied()).collect();
                keyed.select_nth_unstable_by(depth - 1, |a, b| {
                    total_dist_cmp(a.0, b.0).then_with(|| a.1.cmp(&b.1))
                });
                keyed.truncate(depth);
                unique.clear();
                unique.extend(keyed.iter().map(|&(_, id)| id));
                unique.sort_unstable();
            }
            unique
        })
        .collect();
    shortlist_serial(data, queries, &pruned, k, metric)
}

/// The pre-kernel rank stage, reproduced exactly: sort + dedup the
/// candidate list, then one `Metric::distance` call per surviving id.
fn rank_per_pair(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    metric: &dyn Metric,
) -> Vec<Vec<Neighbor>> {
    candidates
        .iter()
        .enumerate()
        .map(|(q, cands)| {
            let mut unique = cands.clone();
            unique.sort_unstable();
            unique.dedup();
            let query = queries.row(q);
            let mut top = TopK::new(k);
            for &id in &unique {
                top.push(id as usize, metric.distance(query, data.row(id as usize)));
            }
            top.into_sorted()
        })
        .collect()
}

fn bits(r: &[Vec<Neighbor>]) -> Vec<Vec<(usize, u32)>> {
    r.iter().map(|q| q.iter().map(|n| (n.id, n.dist.to_bits())).collect()).collect()
}

fn mean_recall(exact: &[Vec<Neighbor>], approx: &[Vec<Neighbor>]) -> f64 {
    let sum: f64 = exact.iter().zip(approx).map(|(e, a)| knn_metrics::quality::recall(e, a)).sum();
    sum / exact.len() as f64
}

fn main() {
    let args = bench::HarnessArgs::parse();
    let spec = match args.profile.as_str() {
        "tiny" => ClusteredSpec::benchmark_tiny(args.dim, args.n + args.queries),
        _ => ClusteredSpec::benchmark(args.dim, args.n + args.queries),
    };
    let (corpus, labels) = synth::clustered_with_labels(&spec, args.seed);
    let (train_raw, queries) = corpus.split_at(args.n);
    // Store training rows in generating-cluster order (acquisition order, as
    // in ext_ooc): near neighbors sit at nearby row ids, so candidate lists
    // form dense id runs — the layout the batch kernels and the quantized
    // first pass stream through.
    let mut order: Vec<usize> = (0..train_raw.len()).collect();
    order.sort_by_key(|&i| labels[i]);
    let data = train_raw.gather(&order);
    let cfg = BiLevelConfig::paper_default(40.0).probe(Probe::Multi(8));
    let index = BiLevelIndex::build(&data, &cfg);

    let mut record = bench::RunRecord::new("ext_end_to_end", "current build");
    record.param("n", args.n);
    record.param("queries", args.queries);
    record.param("dim", args.dim);
    record.param("k", args.k);
    record.param("reps", args.reps);
    record.param("profile", args.profile.clone());

    // --- Rank stage in isolation: identical candidates, two inner loops.
    let candidates = index.candidates_batch_with(&queries, 1);
    let total: usize = candidates.iter().map(Vec::len).sum();
    let mean_cands = total as f64 / queries.len() as f64;
    println!(
        "\n## Rank stage: {} queries x {:.1} mean candidates, k = {}\n",
        queries.len(),
        mean_cands,
        args.k
    );
    record.metric("mean_candidates", mean_cands);

    let timer = Instant::now();
    let mut per_pair = Vec::new();
    for _ in 0..args.reps {
        per_pair = rank_per_pair(&data, &queries, &candidates, args.k, &SquaredL2);
    }
    let per_pair_ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;

    let timer = Instant::now();
    let mut batched = Vec::new();
    for _ in 0..args.reps {
        batched = shortlist_serial(&data, &queries, &candidates, args.k, &SquaredL2);
    }
    let batch_ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;
    assert_eq!(bits(&per_pair), bits(&batched), "batch kernel drifted from per-pair rank");

    let depth = 4 * args.k;
    let qc = QuantizedCorpus::from_dataset(&data);
    let timer = Instant::now();
    let mut quantized = Vec::new();
    for _ in 0..args.reps {
        quantized = rank_quantized(&data, &qc, &queries, &candidates, args.k, depth, &SquaredL2);
    }
    let quant_ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;
    let quant_rank_recall = mean_recall(&batched, &quantized);

    println!("| rank inner loop | ms | speedup | recall@{} vs exact rank |", args.k);
    println!("|---|---|---|---|");
    println!("| per-pair (pre-kernel) | {per_pair_ms:.1} | 1.00x | 1.0000 |");
    println!("| batch kernel | {batch_ms:.1} | {:.2}x | 1.0000 |", per_pair_ms / batch_ms);
    println!(
        "| quantized prune (depth {depth}) + batch rerank | {quant_ms:.1} | {:.2}x | {:.4} |",
        per_pair_ms / quant_ms,
        quant_rank_recall
    );
    record.metric("rank_per_pair_ms", per_pair_ms);
    record.metric("rank_batch_ms", batch_ms);
    record.metric("rank_batch_speedup", per_pair_ms / batch_ms);
    record.metric("rank_quantized_ms", quant_ms);
    record.metric("rank_quantized_speedup", per_pair_ms / quant_ms);
    record.metric("rank_quantized_recall_at_k", quant_rank_recall);

    // --- Full pipeline: exact rank vs quantized first pass + rerank.
    let timer = Instant::now();
    let mut exact = None;
    for _ in 0..args.reps {
        exact = Some(index.query_batch_opts(&queries, &QueryOptions::new(args.k)));
    }
    let exact_ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;
    let exact = exact.unwrap();

    let rec = InMemoryRecorder::new();
    let timer = Instant::now();
    let mut rerank = None;
    for _ in 0..args.reps {
        rerank =
            Some(index.query_batch_opts(
                &queries,
                &QueryOptions::new(args.k).rerank(depth).recorder(&rec),
            ));
    }
    let rerank_ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;
    let rerank = rerank.unwrap();

    let truth = knn_batch(&data, &queries, args.k, &SquaredL2, 1);
    let exact_recall = mean_recall(&truth, &exact.neighbors);
    let rerank_vs_exact = mean_recall(&exact.neighbors, &rerank.neighbors);
    let rerank_recall = mean_recall(&truth, &rerank.neighbors);
    let pruned = rec.counter(Counter::CandidatesPruned) as f64 / args.reps as f64;
    let reranked = rec.counter(Counter::CandidatesReranked) as f64 / args.reps as f64;

    println!("\n## Pipeline: exact vs quantized first pass (rerank depth = {depth})\n");
    println!("| pipeline | ms | speedup | recall@{} vs brute force |", args.k);
    println!("|---|---|---|---|");
    println!("| exact rank | {exact_ms:.1} | 1.00x | {exact_recall:.4} |");
    println!(
        "| quantized + rerank | {rerank_ms:.1} | {:.2}x | {rerank_recall:.4} |",
        exact_ms / rerank_ms
    );
    println!(
        "\nrerank vs exact-path recall@{}: {rerank_vs_exact:.4} \
         ({pruned:.0} candidates pruned, {reranked:.0} reranked per rep)",
        args.k
    );
    record.metric("pipeline_exact_ms", exact_ms);
    record.metric("pipeline_rerank_ms", rerank_ms);
    record.metric("pipeline_rerank_speedup", exact_ms / rerank_ms);
    record.metric("rerank_depth", depth as f64);
    record.metric("exact_recall_at_k", exact_recall);
    record.metric("rerank_recall_at_k", rerank_recall);
    record.metric("rerank_vs_exact_recall_at_k", rerank_vs_exact);
    record.metric("candidates_pruned_per_rep", pruned);
    record.metric("candidates_reranked_per_rep", reranked);

    if let Some(path) = &args.json {
        record.write(path).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}
