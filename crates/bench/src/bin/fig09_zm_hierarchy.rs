//! Figure 9: hierarchical standard vs hierarchical Bi-level LSH, Z^M lattice
//! (Morton-curve hierarchy, median-threshold escalation).

use bench::methods::MethodKind;
use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::pairwise_figure(
        "Figure 9: hierarchical standard vs hierarchical Bi-level (Z^M Morton hierarchy)",
        Quantizer::Zm,
        MethodKind::HierStandard,
        MethodKind::HierBiLevel,
        &args,
    );
}
