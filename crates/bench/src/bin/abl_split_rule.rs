//! Ablation: RP-tree split rule (mean vs max) — recall ceiling imposed by
//! level-1 leaf boundaries, per group count.
//!
//! The ceiling is the fraction of each query's exact k-NN that share the
//! query's leaf: no bi-level method can exceed it. On the synthetic GIST
//! substitute the max rule preserves neighborhoods better than the mean rule
//! (the opposite of the paper's ranking on real GIST; see EXPERIMENTS.md).

fn main() {
    use bench::{data::prepare, HarnessArgs};
    use rptree::{Partitioner, RpTree, RpTreeConfig, SplitRule};
    let args = HarnessArgs::parse();
    let p = prepare(&args);
    println!("\n## Ablation: split rule vs recall ceiling (n = {}, k = {})\n", args.n, args.k);
    println!("| groups | rule | recall ceiling |");
    println!("|---|---|---|");
    for groups in [8usize, 16, 32, 64] {
        for rule in [SplitRule::Mean, SplitRule::Max] {
            let cfg = RpTreeConfig::with_leaves(groups).rule(rule);
            let (tree, assign) = RpTree::fit(&p.train, &cfg);
            let mut total = 0.0f64;
            for (q, truth) in p.truth.iter().enumerate() {
                let qg = tree.assign(p.queries.row(q));
                let inside = truth.iter().filter(|n| assign[n.id] == qg).count();
                total += inside as f64 / truth.len() as f64;
            }
            println!("| {groups} | {rule:?} | {:.4} |", total / p.truth.len() as f64);
        }
    }
}
