//! Figure 13(b): Bi-level vs standard LSH across hash dimensions M, L = 20 —
//! showing the improvement comes from better (not longer) codes.

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::m_figure(&args);
}
