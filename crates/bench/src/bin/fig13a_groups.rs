//! Figure 13(a): Bi-level quality as a function of the number of level-1
//! partitions (1, 8, 16, 32, 64), L = 20.

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::groups_figure(&args);
}
