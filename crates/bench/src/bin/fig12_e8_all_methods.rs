//! Figure 12: all six methods on the E8 lattice, including the deviation
//! caused by different queries.

use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::all_methods_figure(
        "Figure 12: all six methods, query-deviation comparison (E8 lattice)",
        Quantizer::E8,
        &args,
    );
}
