//! Ablation: the curse of dimensionality for exact tree search — the
//! paper's introductory claim that space-partitioning exact methods fall
//! back to (or below) brute-force cost beyond ~10 dimensions, which is what
//! justifies approximate LSH in the first place.

fn main() {
    use rptree::KdKnn;
    use std::time::Instant;
    use vecstore::synth;
    use vecstore::{knn, SquaredL2};
    let args = bench::HarnessArgs::parse();
    let n = args.n.min(20_000);
    let nq = args.queries.min(100);
    println!("\n## Ablation: exact Kd-tree vs brute force across dimensions (n = {n})\n");
    println!("| dim | distance evals/query | fraction of n | kd ms/query | brute ms/query |");
    println!("|---|---|---|---|---|");
    for dim in [2usize, 4, 8, 16, 32, 64, 128] {
        let data = synth::gaussian(dim, n, 1.0, args.seed);
        let queries = synth::gaussian(dim, nq, 1.0, args.seed + 1);
        let tree = KdKnn::build(&data);
        let mut evals = 0usize;
        let t0 = Instant::now();
        for q in queries.iter() {
            let (_, stats) = tree.knn_with_stats(q, args.k);
            evals += stats.distance_evals;
        }
        let kd_ms = t0.elapsed().as_secs_f64() * 1e3 / nq as f64;
        let t1 = Instant::now();
        for q in queries.iter() {
            let _ = knn(&data, q, args.k, &SquaredL2);
        }
        let brute_ms = t1.elapsed().as_secs_f64() * 1e3 / nq as f64;
        let per_query = evals as f64 / nq as f64;
        println!(
            "| {dim} | {per_query:.0} | {:.3} | {kd_ms:.2} | {brute_ms:.2} |",
            per_query / n as f64
        );
    }
}
