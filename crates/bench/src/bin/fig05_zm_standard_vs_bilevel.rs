//! Figure 5: standard vs Bi-level LSH on the Z^M lattice, L ∈ {10, 20, 30},
//! selectivity→recall and selectivity→error with projection-deviation stats.

use bench::methods::MethodKind;
use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::pairwise_figure(
        "Figure 5: standard vs Bi-level LSH (Z^M lattice)",
        Quantizer::Zm,
        MethodKind::Standard,
        MethodKind::BiLevel,
        &args,
    );
}
