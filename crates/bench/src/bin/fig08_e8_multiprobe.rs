//! Figure 8: multi-probed standard vs multi-probed Bi-level LSH, E8 lattice
//! (probes = the 240 lattice roots).

use bench::methods::MethodKind;
use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::pairwise_figure(
        "Figure 8: multi-probed standard vs multi-probed Bi-level (E8 lattice, 240 roots)",
        Quantizer::E8,
        MethodKind::MultiStandard,
        MethodKind::MultiBiLevel,
        &args,
    );
}
