//! Figure 11: all six methods on the Z^M lattice, including the deviation
//! caused by different queries.

use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::all_methods_figure(
        "Figure 11: all six methods, query-deviation comparison (Z^M lattice)",
        Quantizer::Zm,
        &args,
    );
}
