//! Figure 4: short-list search timing — per-query hash maps + serial heap
//! ("CPU-lshkit") vs flat cuckoo storage + serial heap vs flat storage +
//! work-queue engine, over a candidate-count sweep.

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::shortlist_figure(&args);
}
