//! CI gate: validates `BENCH_*.json` perf records (and bare `--json` run
//! dumps) against the `knn-bench/1` schema in `bench::record`.
//!
//! ```text
//! validate_bench [FILE...]
//! ```
//!
//! With no arguments, validates every `BENCH_*.json` in the current
//! directory (and fails if there is none — the perf record is mandatory
//! once seeded). Exits non-zero on the first malformed file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        let mut found: Vec<String> = std::fs::read_dir(".")
            .expect("reading current directory")
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
            .collect();
        found.sort();
        if found.is_empty() {
            eprintln!("validate_bench: no BENCH_*.json in the current directory");
            return ExitCode::FAILURE;
        }
        files = found;
    }
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match bench::record::validate(&text) {
            Ok(summary) => println!(
                "{path}: ok (pr {}, {} run{}, {} metrics)",
                summary.pr,
                summary.runs,
                if summary.runs == 1 { "" } else { "s" },
                summary.metrics
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
