//! Ablation: why E8 — quantization error and packing density of Z^8 vs E8
//! at equal cell volume (the paper's Section II-B density argument).

fn main() {
    use lattice::density::*;
    let samples = 500_000;
    println!("\n## Ablation: Z^8 vs E8 lattice quality (unit cell volume)\n");
    println!("| lattice | quantization MSE (Monte-Carlo, {samples} samples) | packing density |");
    println!("|---|---|---|");
    println!("| Z^8 | {:.4} | {:.4} |", z8_quantization_mse(samples, 1), z8_packing_density());
    println!("| E8 | {:.4} | {:.4} |", e8_quantization_mse(samples, 2), e8_packing_density());
    println!(
        "\nE8 packs {:.1}x denser and quantizes with {:.1}% lower error — the\n\
         better-shaped cells behind the paper's E8 bucket quality argument.",
        e8_packing_density() / z8_packing_density(),
        100.0 * (1.0 - e8_quantization_mse(samples, 3) / z8_quantization_mse(samples, 4)),
    );
}
