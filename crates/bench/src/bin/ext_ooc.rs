//! Extension: out-of-core path — parallel streaming build and coalesced
//! batch queries against the serial per-row baselines, over a real on-disk
//! fvecs corpus (no figure in the paper; Section VII future work).
//!
//! Correctness is asserted inline: every thread count must produce the
//! byte-identical linear bucket array, and every coalesced batch must
//! return exactly the serial baseline's `(id, dist)` lists.

fn main() {
    use bilevel_lsh::telemetry::InMemoryRecorder;
    use bilevel_lsh::{BiLevelConfig, Engine, OocFlatIndex, Probe, QueryOptions};
    use std::time::Instant;
    use vecstore::io::write_fvecs;
    use vecstore::ooc::OocDataset;
    use vecstore::synth::{self, ClusteredSpec};

    let args = bench::HarnessArgs::parse();
    let spec = match args.profile.as_str() {
        "tiny" => ClusteredSpec::benchmark_tiny(args.dim, args.n + args.queries),
        _ => ClusteredSpec::benchmark(args.dim, args.n + args.queries),
    };
    let (corpus, labels) = synth::clustered_with_labels(&spec, args.seed);
    let (train_raw, queries) = corpus.split_at(args.n);
    // Corpus files in the wild are written in acquisition order — cluster by
    // cluster, shot by shot — so near neighbors sit at nearby file offsets.
    // Group the training rows by generating cluster to model that locality;
    // it is exactly what the coalesced fetch path exploits.
    let mut order: Vec<usize> = (0..train_raw.len()).collect();
    order.sort_by_key(|&i| labels[i]);
    let train = train_raw.gather(&order);

    let dir = std::env::temp_dir().join("bilevel_bench_ooc");
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("creating scratch dir {}: {e}", dir.display()));
    let path = dir.join(format!("corpus_{}x{}.fvecs", args.n, args.dim));
    write_fvecs(&path, &train)
        .unwrap_or_else(|e| panic!("writing bench corpus {}: {e}", path.display()));
    let source = OocDataset::open(&path)
        .unwrap_or_else(|e| panic!("opening bench corpus {}: {e}", path.display()));
    let cfg = BiLevelConfig::paper_default(40.0).probe(Probe::Multi(8));
    let threads = [1usize, 2, 4, 8];
    let mut record = bench::RunRecord::new("ext_ooc", "current build");
    record.param("n", args.n);
    record.param("queries", args.queries);
    record.param("dim", args.dim);
    record.param("k", args.k);
    record.param("reps", args.reps);
    record.param("profile", args.profile.clone());

    println!("\n## Out-of-core: parallel build ({} rows × {} dims on disk)\n", args.n, args.dim);
    println!("| build threads | s | speedup |");
    println!("|---|---|---|");
    let mut serial_build = 0.0f64;
    let mut reference: Option<Vec<u32>> = None;
    for t in threads {
        let timer = Instant::now();
        let mut built = None;
        for _ in 0..args.reps {
            built = Some(
                OocFlatIndex::build_with(&source, &cfg, usize::MAX, t)
                    .unwrap_or_else(|e| panic!("{t}-thread out-of-core build failed: {e}")),
            );
        }
        let secs = timer.elapsed().as_secs_f64() / args.reps as f64;
        let built = built.unwrap();
        match &reference {
            None => {
                serial_build = secs;
                reference = Some(built.linear_ids().to_vec());
            }
            Some(want) => assert_eq!(want, built.linear_ids(), "{t}-thread build diverged"),
        }
        println!("| {t} | {secs:.2} | {:.2}x |", serial_build / secs);
        record.metric(&format!("build_{t}t_s"), secs);
    }

    let index = OocFlatIndex::build(&source, &cfg, usize::MAX)
        .unwrap_or_else(|e| panic!("out-of-core build failed: {e}"));
    println!("\n## Out-of-core: batch query, {} queries, k = {}\n", queries.len(), args.k);
    println!("| method | ms | speedup |");
    println!("|---|---|---|");
    let timer = Instant::now();
    let mut baseline = Vec::new();
    for _ in 0..args.reps {
        baseline = index
            .query_batch_per_row(&queries, args.k)
            .unwrap_or_else(|e| panic!("serial per-row baseline failed: {e}"));
    }
    let serial_ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;
    println!("| serial per-row | {serial_ms:.1} | 1.00x |");
    record.metric("serial_per_row_ms", serial_ms);
    let recorder = InMemoryRecorder::new();
    for t in threads {
        let timer = Instant::now();
        let mut got = Vec::new();
        for _ in 0..args.reps {
            got = index
                .query_batch_opts(
                    &queries,
                    &QueryOptions::new(args.k)
                        .engine(Engine::PerQuery { threads: t })
                        .recorder(&recorder),
                )
                .unwrap_or_else(|e| panic!("coalesced batch at {t} threads failed: {e}"));
        }
        let ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;
        for (a, b) in baseline.iter().zip(&got) {
            let a: Vec<(usize, f32)> = a.iter().map(|n| (n.id, n.dist)).collect();
            let b: Vec<(usize, f32)> = b.iter().map(|n| (n.id, n.dist)).collect();
            assert_eq!(a, b, "coalesced batch at {t} threads diverged from serial");
        }
        println!(
            "| coalesced, {t} thread{} | {ms:.1} | {:.2}x |",
            if t == 1 { "" } else { "s" },
            serial_ms / ms
        );
        record.metric(&format!("coalesced_{t}t_ms"), ms);
    }
    println!("\n### Stage breakdown (coalesced batches, all thread counts)\n");
    println!("```\n{}```", recorder.snapshot().render_table());
    if let Some(out) = &args.json {
        record.write(out).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    }
    std::fs::remove_file(&path).ok();
}
