//! Extension: the level-2 hash family zoo measured end to end — the PR 10
//! family-redesign measurement. One corpus, one harness, every family:
//!
//! | family | metric | hash |
//! |---|---|---|
//! | p-stable (baseline) | L2 | Gaussian projections, quantized offsets |
//! | SRP | cosine | sign codes (width-free) |
//! | asymmetric MIPS | inner product | Shrivastava–Li embedding + p-stable |
//! | ℓp p-stable | ℓp, p ∈ (0, 2) | stable-law projections (CMS sampler) |
//!
//! For each family the harness sweeps a short per-family width grid at a
//! fixed probe budget, keeps the best-recall width (sign codes ignore the
//! width, so SRP's grid is a single entry), and reports build time, batch
//! query time, recall@k against a brute-force scan *under the family's own
//! metric*, and mean candidates per query. Recall is the point of the
//! table: every family must be probeable to high recall on the same corpus
//! the L2 baseline uses, or the family is miswired.
//!
//! `--json FILE` dumps the measurements as a `knn-bench/1` run record for
//! `BENCH_*.json` (see `bench::record`).

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, MetricKind, Probe, QueryOptions, WidthMode};
use std::time::Instant;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{knn_batch, Cosine, InnerProduct, Lp, Metric, Neighbor, SquaredL2};

/// One family's sweep definition: record key, config metric, rank metric
/// for the brute-force truth, and the width grid to sweep.
struct FamilySpec {
    tag: &'static str,
    metric: MetricKind,
    truth: Box<dyn Metric>,
    widths: &'static [f32],
}

fn mean_recall(truth: &[Vec<Neighbor>], got: &[Vec<Neighbor>]) -> f64 {
    let sum: f64 = truth.iter().zip(got).map(|(t, g)| knn_metrics::quality::recall(t, g)).sum();
    sum / truth.len() as f64
}

fn main() {
    let args = bench::HarnessArgs::parse();
    let spec = match args.profile.as_str() {
        "tiny" => ClusteredSpec::benchmark_tiny(args.dim, args.n + args.queries),
        _ => ClusteredSpec::benchmark(args.dim, args.n + args.queries),
    };
    let corpus = synth::clustered(&spec, args.seed);
    let (data, queries) = corpus.split_at(args.n);

    // Width grids are per-family because the projection scales differ by
    // orders of magnitude: sign codes are width-free, the MIPS embedding
    // normalizes both sides near the unit sphere, and ℓp stable draws get
    // heavier-tailed as p falls. Each grid brackets the useful range on
    // the synthetic GIST substitute.
    let families = [
        FamilySpec {
            tag: "pstable_l2",
            metric: MetricKind::L2,
            truth: Box::new(SquaredL2),
            widths: &[10.0, 40.0, 160.0],
        },
        FamilySpec {
            tag: "srp_cosine",
            metric: MetricKind::Cosine,
            truth: Box::new(Cosine),
            widths: &[1.0],
        },
        FamilySpec {
            tag: "mips_ip",
            metric: MetricKind::InnerProduct,
            truth: Box::new(InnerProduct),
            widths: &[0.5, 1.0, 2.0],
        },
        FamilySpec {
            tag: "lp_p05",
            metric: MetricKind::Lp { p: 0.5 },
            truth: Box::new(Lp::new(0.5)),
            widths: &[8_192.0, 65_536.0, 524_288.0],
        },
        FamilySpec {
            tag: "lp_p10",
            metric: MetricKind::Lp { p: 1.0 },
            truth: Box::new(Lp::new(1.0)),
            widths: &[128.0, 512.0, 2_048.0],
        },
        FamilySpec {
            tag: "lp_p15",
            metric: MetricKind::Lp { p: 1.5 },
            truth: Box::new(Lp::new(1.5)),
            widths: &[16.0, 64.0, 256.0],
        },
    ];

    let mut record = bench::RunRecord::new("ext_families", "current build");
    record.param("n", args.n);
    record.param("queries", args.queries);
    record.param("dim", args.dim);
    record.param("k", args.k);
    record.param("reps", args.reps);
    record.param("profile", args.profile.clone());

    println!(
        "\n## Level-2 families: {} vectors x dim {}, {} queries, k = {}, probe = Multi(64)\n",
        args.n,
        args.dim,
        queries.len(),
        args.k
    );
    println!("| family | width | build ms | query ms | recall@{} | mean candidates |", args.k);
    println!("|---|---|---|---|---|---|");

    for family in &families {
        let truth = knn_batch(&data, &queries, args.k, family.truth.as_ref(), 1);
        let mut best: Option<(f64, f32, f64, f64, f64)> = None;
        for &w in family.widths {
            let mut config = BiLevelConfig::standard(1.0)
                .metric(family.metric)
                .tables(12)
                .probe(Probe::Multi(64));
            config.width = WidthMode::Fixed(w);

            let timer = Instant::now();
            let index = BiLevelIndex::build(&data, &config);
            let build_ms = timer.elapsed().as_secs_f64() * 1e3;

            let candidates = index.candidates_batch_with(&queries, 1);
            let total: usize = candidates.iter().map(Vec::len).sum();
            let mean_cands = total as f64 / queries.len() as f64;

            let timer = Instant::now();
            let mut res = None;
            for _ in 0..args.reps {
                res = Some(index.query_batch_opts(&queries, &QueryOptions::new(args.k)));
            }
            let query_ms = timer.elapsed().as_secs_f64() * 1e3 / args.reps as f64;
            let recall = mean_recall(&truth, &res.unwrap().neighbors);

            if best.is_none_or(|(r, ..)| recall > r) {
                best = Some((recall, w, build_ms, query_ms, mean_cands));
            }
        }
        let (recall, w, build_ms, query_ms, mean_cands) = best.unwrap();
        println!(
            "| {} | {w} | {build_ms:.1} | {query_ms:.1} | {recall:.4} | {mean_cands:.1} |",
            family.tag
        );
        record.metric(&format!("{}_width", family.tag), w as f64);
        record.metric(&format!("{}_build_ms", family.tag), build_ms);
        record.metric(&format!("{}_query_ms", family.tag), query_ms);
        record.metric(&format!("{}_recall_at_k", family.tag), recall);
        record.metric(&format!("{}_mean_candidates", family.tag), mean_cands);
    }

    if let Some(path) = &args.json {
        record.write(path).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}
