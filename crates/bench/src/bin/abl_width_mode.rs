//! Ablation: bucket-width modes — fixed global `W` vs per-group scaled `W`
//! (the paper's Section IV-B per-cluster tuning), crossed with the RP-tree
//! split rule. Prints the raw selectivity/recall pairs per swept width so
//! the equal-selectivity comparison of DESIGN.md's headline claim can be
//! read off directly.
fn main() {
    use bench::{data::prepare, HarnessArgs};
    use bilevel_lsh::*;
    use rptree::SplitRule;
    let args = HarnessArgs::parse();
    let p = prepare(&args);
    let grid = bench::w_grid(&p, args.k);
    for (name, partition, scaled, rule) in [
        ("standard", false, false, SplitRule::Mean),
        ("bilevel-mean-fixed", true, false, SplitRule::Mean),
        ("bilevel-max-fixed", true, false, SplitRule::Max),
        ("bilevel-max-scaled", true, true, SplitRule::Max),
        ("bilevel-mean-scaled", true, true, SplitRule::Mean),
    ] {
        for &w in &grid {
            let cfg = BiLevelConfig {
                l: 10,
                m: 8,
                width: if scaled {
                    WidthMode::Scaled { base: w, k: args.k }
                } else {
                    WidthMode::Fixed(w)
                },
                partition: if partition {
                    Partition::RpTree { groups: args.groups, rule }
                } else {
                    Partition::None
                },
                quantizer: Quantizer::Zm,
                probe: Probe::Home,
                table_pool: None,
                projection: bilevel_lsh::Projection::Dense,
                metric: bilevel_lsh::MetricKind::L2,
                family: bilevel_lsh::FamilyKind::PStable,
                seed: 0xF16,
            };
            let index = BiLevelIndex::build(&p.train, &cfg);
            let evals = evaluate_index(&index, &p.queries, &p.truth, args.k);
            let n = evals.len() as f64;
            let rho: f64 = evals.iter().map(|e| e.recall).sum::<f64>() / n;
            let tau: f64 = evals.iter().map(|e| e.selectivity).sum::<f64>() / n;
            println!("{name} w={w:.1} tau={tau:.4} rho={rho:.4}");
        }
        println!();
    }
}
