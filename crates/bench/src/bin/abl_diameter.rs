//! Ablation: Egecioglu–Kalantari diameter approximation — estimate accuracy
//! and cost as a function of the iteration budget `m` (the paper uses
//! m ≈ 40; Section IV-A2).

fn main() {
    use rptree::approx_diameter;
    use std::time::Instant;
    use vecstore::stats::exact_diameter;
    use vecstore::synth::{self, ClusteredSpec};
    let args = bench::HarnessArgs::parse();
    let n = args.n.min(4000); // exact diameter is O(n²)
    let ds = synth::clustered(&ClusteredSpec::benchmark(args.dim, n), args.seed);
    let ids: Vec<usize> = (0..ds.len()).collect();
    let t0 = Instant::now();
    let truth = exact_diameter(&ds, &ids);
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("\n## Ablation: approximate diameter vs iteration budget (n = {n})\n");
    println!("exact diameter = {truth:.3} ({exact_ms:.1} ms, O(n²) scan)\n");
    println!("| rounds m | estimate | relative error | upper bound | ms |");
    println!("|---|---|---|---|---|");
    for m in [1usize, 2, 5, 10, 20, 40, 80] {
        let t1 = Instant::now();
        let est = approx_diameter(&ds, &ids, m);
        let ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "| {m} | {:.3} | {:.4} | {:.3} | {ms:.2} |",
            est.estimate(),
            (truth - est.estimate()).abs() / truth,
            est.upper
        );
    }
}
