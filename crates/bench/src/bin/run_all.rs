//! Runs every figure and ablation binary in sequence, writing results to a
//! directory — the one-command reproduction of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p bench --bin run_all -- --n 6000 --queries 500 --k 25 --reps 3
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig04_shortlist",
    "fig05_zm_standard_vs_bilevel",
    "fig06_e8_standard_vs_bilevel",
    "fig07_zm_multiprobe",
    "fig08_e8_multiprobe",
    "fig09_zm_hierarchy",
    "fig10_e8_hierarchy",
    "fig11_zm_all_methods",
    "fig12_e8_all_methods",
    "fig13a_groups",
    "fig13b_dims",
    "fig13c_partitioner",
    "abl_split_rule",
    "abl_width_mode",
    "abl_diameter",
    "abl_batch",
    "abl_curse",
    "abl_lattice_density",
    "ext_forest",
    "ext_adaptive",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results dir");
    let self_exe = std::env::current_exe().expect("own path");
    let bin_dir = self_exe.parent().expect("bin dir");

    let mut failures = Vec::new();
    for bin in BINARIES {
        eprintln!("=== {bin} ===");
        let md = out_dir.join(format!("{bin}.md"));
        let csv = out_dir.join(format!("{bin}.csv"));
        let mut args = passthrough.clone();
        if bin.starts_with("fig") {
            args.push("--out".into());
            args.push(csv.to_string_lossy().into_owned());
        }
        let output = Command::new(bin_dir.join(bin)).args(&args).output();
        match output {
            Ok(out) if out.status.success() => {
                std::fs::write(&md, &out.stdout).expect("write md");
            }
            Ok(out) => {
                failures.push(*bin);
                eprintln!("{bin} exited with {:?}", out.status.code());
                std::fs::write(&md, &out.stderr).ok();
            }
            Err(e) => {
                failures.push(*bin);
                eprintln!("{bin} failed to launch: {e} (build with `cargo build --release -p bench` first)");
            }
        }
    }
    if failures.is_empty() {
        eprintln!("all {} experiments written to {}", BINARIES.len(), out_dir.display());
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
