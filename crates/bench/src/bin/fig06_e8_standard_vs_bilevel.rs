//! Figure 6: standard vs Bi-level LSH on the E8 lattice.

use bench::methods::MethodKind;
use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::pairwise_figure(
        "Figure 6: standard vs Bi-level LSH (E8 lattice)",
        Quantizer::E8,
        MethodKind::Standard,
        MethodKind::BiLevel,
        &args,
    );
}
