//! Extension: concurrent serving — micro-batched service throughput
//! against the 1-request-per-call service baseline, plus an open-loop
//! burst showing deadline-aware degradation and admission backpressure
//! (no figure in the paper; the serving analog of its batched GPU
//! work-queue argument).
//!
//! The baseline drives the service with synchronous 1-request-per-call
//! clients against `max_batch = 1`: every request pays the full submit →
//! dispatch → execute → reply → wake round trip, one serial engine call
//! per request — a single query cannot be parallelized. The batched rows
//! drive it with pipelined clients and a batch window, so the dispatcher
//! amortizes the round-trip overhead across the micro-batch *and* hands
//! the whole batch to a parallel engine — the serving analog of the
//! paper's point that batching exists to feed parallel hardware. All
//! engines return bit-identical results (a core repo contract), so the
//! correctness assertions are unchanged.
//!
//! Correctness is asserted inline: every response must be bit-identical to
//! the serial single-query answer and at full service level. On machines
//! with >= 4 cores the batched rows must clear 2x the unbatched baseline's
//! throughput; with fewer cores the parallel engine degenerates toward the
//! inline serial loop, so the throughput rows are report-only (batching
//! cannot buy wall-clock throughput when the batch still executes one
//! query at a time on the same core that runs the clients).

use bilevel_lsh::telemetry::InMemoryRecorder;
use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Engine, Probe, WidthMode};
use knn_serve::{Service, ServiceConfig, SubmitError, Ticket};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Dataset, Neighbor};

const PRODUCERS: usize = 8;

/// Closed-loop load generator: `producers` threads round-robin the query
/// set through the service, each keeping up to `depth` requests in flight
/// (`producers = 1, depth = 1` is the strict submit-then-wait
/// 1-request-per-call client). Every response is verified bit-identical
/// to `expected` and at full service level. Returns the elapsed
/// wall-clock time.
fn drive(
    service: &Service,
    queries: &Dataset,
    expected: &[Vec<Neighbor>],
    k: usize,
    producers: usize,
    depth: usize,
) -> Duration {
    let total = queries.len();
    let timer = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let handle = service.handle().expect("service is running");
            scope.spawn(move || {
                let mut inflight: VecDeque<(usize, Ticket)> = VecDeque::new();
                let verify = |(idx, ticket): (usize, Ticket)| {
                    let response = ticket.wait().expect("every request gets a response");
                    assert!(response.level.is_full());
                    assert_eq!(
                        response.neighbors, expected[idx],
                        "batched answer diverged from serial for query {idx}"
                    );
                };
                for idx in (p..total).step_by(producers) {
                    if inflight.len() == depth {
                        verify(inflight.pop_front().unwrap());
                    }
                    let ticket = handle
                        .submit(queries.row(idx), k, None)
                        .expect("closed loop never overflows the queue");
                    inflight.push_back((idx, ticket));
                }
                inflight.into_iter().for_each(verify);
            });
        }
    });
    timer.elapsed()
}

fn main() {
    let args = bench::HarnessArgs::parse();
    let spec = match args.profile.as_str() {
        "tiny" => ClusteredSpec::benchmark_tiny(args.dim, args.n + args.queries),
        _ => ClusteredSpec::benchmark(args.dim, args.n + args.queries),
    };
    let corpus = synth::clustered(&spec, args.seed);
    let (train, queries) = corpus.split_at(args.n);
    // Multi-probe with recall-tuned (and therefore corpus-independent)
    // widths keeps per-query engine work substantial, so the batched rows
    // have real work to fan across cores while the baseline executes it
    // one query per call.
    let mut cfg = BiLevelConfig::paper_default(1.0).probe(Probe::Multi(4)).tables(6);
    cfg.width = WidthMode::Tuned { target_recall: 0.8, k: args.k };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let batch_engine = Engine::PerQuery { threads: cores.min(8) };

    // Serial ground truth for the bit-identical assertion.
    let reference = BiLevelIndex::build(&train, &cfg);
    let expected: Vec<Vec<Neighbor>> =
        (0..queries.len()).map(|q| reference.query(queries.row(q), args.k)).collect();

    println!(
        "\n## Serving: {} producers x {} queries x {} reps, k = {}, {} core(s)\n",
        PRODUCERS,
        queries.len(),
        args.reps,
        args.k,
        cores
    );
    println!(
        "| client | max_batch | engine threads | qps | mean batch | p95 latency | vs 1-per-call |"
    );
    println!("|---|---|---|---|---|---|---|");
    let mut baseline_qps = 0.0f64;
    for (max_batch, producers, depth) in
        [(1usize, 1usize, 1usize), (8, PRODUCERS, 8), (32, PRODUCERS, 8)]
    {
        let engine = if max_batch == 1 { Engine::Serial } else { batch_engine };
        let recorder = Arc::new(InMemoryRecorder::new());
        let service = Service::start(
            BiLevelIndex::build_owned(train.clone(), &cfg),
            ServiceConfig::default()
                .engine(engine)
                .max_batch(max_batch)
                .max_wait(Duration::from_micros(if max_batch == 1 { 0 } else { 200 }))
                .recorder(recorder.clone()),
        );
        // Warm up schedulers and the dispatcher's latency estimates.
        drive(&service, &queries, &expected, args.k, producers, depth);
        let mut elapsed = Duration::ZERO;
        for _ in 0..args.reps {
            elapsed += drive(&service, &queries, &expected, args.k, producers, depth);
        }
        let total = queries.len() * (args.reps + 1);
        let stats = service.stats();
        assert_eq!(stats.completed, total as u64, "every request answered exactly once");
        assert_eq!(stats.shed, 0);
        let qps = (queries.len() * args.reps) as f64 / elapsed.as_secs_f64();
        if max_batch == 1 {
            baseline_qps = qps;
            assert!(
                (stats.mean_batch_size() - 1.0).abs() < 1e-9,
                "baseline must run 1 request per call"
            );
        }
        let speedup = qps / baseline_qps;
        println!(
            "| {} | {max_batch} | {} | {qps:.0} | {:.1} | {:?} | {speedup:.2}x |",
            if depth == 1 { "1 sync" } else { "8 pipelined" },
            engine.threads(),
            stats.mean_batch_size(),
            stats.latency_p95,
        );
        if max_batch >= 8 && cores >= 4 {
            assert!(
                speedup >= 2.0,
                "micro-batching at window {max_batch} must at least double the \
                 1-request-per-call service throughput (got {speedup:.2}x)"
            );
        }
        service.shutdown();
        if max_batch == 32 {
            println!("\n### Stage breakdown (max_batch = 32 row)\n");
            println!("```\n{}```", recorder.snapshot().render_table());
        }
    }
    if cores < 4 {
        println!(
            "\n(only {cores} core(s): a micro-batch still executes one query at a time, so \
             the 2x throughput gate needs >= 4 cores; rows above are report-only and every \
             response was still verified bit-identical to serial)"
        );
    }

    // Open loop: a burst far above capacity, every request carrying a tight
    // deadline — the dispatcher sheds probe budget down the ladder instead
    // of missing deadlines, and the bounded queue rejects the overflow.
    println!("\n## Serving: open-loop burst with tight deadlines\n");
    let burst_cfg = BiLevelConfig::paper_default(40.0).probe(Probe::Multi(8)).tables(6);
    let burst_reference = BiLevelIndex::build(&train, &burst_cfg);
    let burst_recorder = Arc::new(InMemoryRecorder::new());
    let service = Service::start(
        BiLevelIndex::build_owned(train.clone(), &burst_cfg),
        ServiceConfig::default()
            .max_batch(32)
            .max_wait(Duration::from_micros(200))
            .queue_capacity(64)
            .recorder(burst_recorder.clone()),
    );
    // Prime the rung-0 estimate so the ladder has something to shed from.
    let warmup = 8.min(queries.len());
    for q in 0..warmup {
        let resp = service
            .submit(queries.row(q), args.k, None)
            .unwrap_or_else(|e| panic!("warmup query {q} rejected at admission: {e}"))
            .wait()
            .unwrap_or_else(|e| panic!("warmup query {q} lost its response: {e}"));
        assert_eq!(resp.neighbors, burst_reference.query(queries.row(q), args.k));
    }
    let deadline_budget = Duration::from_micros(500);
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for q in 0..queries.len() {
        match service.submit(queries.row(q), args.k, Some(Instant::now() + deadline_budget)) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let accepted = tickets.len();
    let mut degraded = 0u64;
    for t in tickets {
        let response = t.wait().expect("accepted request lost its response");
        if !response.level.is_full() {
            degraded += 1;
        }
    }
    let stats = service.stats();
    println!("| accepted | rejected (backpressure) | degraded | deadline missed |");
    println!("|---|---|---|---|");
    println!("| {accepted} | {rejected} | {degraded} | {} |", stats.deadline_missed);
    println!("\nresponses by service level: {:?}", stats.responses_by_level);
    println!(
        "failure containment: {} panicked, {} partial-coverage, {} dispatcher restarts",
        stats.panicked, stats.partial_responses, stats.dispatcher_restarts
    );
    assert_eq!(stats.completed as usize, accepted + warmup, "every accepted request answered");
    assert_eq!(stats.overloaded, rejected);
    // A healthy benchmark run must see zero containment events.
    assert_eq!(stats.panicked, 0);
    assert_eq!(stats.dispatcher_restarts, 0);
    assert_eq!(stats.partial_responses, 0);
    service.shutdown();
    println!("\n### Stage breakdown (burst, deadline-aware)\n");
    println!("```\n{}```", burst_recorder.snapshot().render_table());
}
