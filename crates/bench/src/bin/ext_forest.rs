//! Extension experiment (beyond the paper): LSH-Forest (Bawa et al., the
//! self-tuning related work of §II-B) against standard and Bi-level LSH on
//! the same corpus, quality at matched candidate budgets.

fn main() {
    use bench::{data::prepare, HarnessArgs};
    use bilevel_lsh::{evaluate_index, BiLevelConfig, BiLevelIndex};
    use knn_metrics::recall;
    use lsh::{DistanceProfile, ForestConfig, LshForest};
    let args = HarnessArgs::parse();
    let p = prepare(&args);
    let base_w = DistanceProfile::fit(&p.train, args.k, 200).d_knn as f32;

    println!("\n## Extension: LSH-Forest vs fixed-M LSH (n = {}, k = {})\n", args.n, args.k);
    println!("| method | recall | mean candidates | selectivity |");
    println!("|---|---|---|---|");

    // LSH-Forest at a sweep of candidate budgets.
    let forest = LshForest::build(&p.train, &ForestConfig::new(base_w));
    for budget in [50usize, 200, 800] {
        let mut total_recall = 0.0f64;
        let mut total_cands = 0usize;
        for (q, truth) in p.truth.iter().enumerate() {
            let cands = forest.candidates(p.queries.row(q), budget);
            total_cands += cands.len();
            let got = forest.query(p.queries.row(q), args.k, budget);
            total_recall += recall(truth, &got);
        }
        let nq = p.queries.len() as f64;
        println!(
            "| lsh-forest (budget {budget}) | {:.3} | {:.0} | {:.4} |",
            total_recall / nq,
            total_cands as f64 / nq,
            total_cands as f64 / (nq * p.train.len() as f64),
        );
    }

    // Standard and Bi-level at a couple of widths for context.
    for (label, cfg) in [
        ("standard W=4d", BiLevelConfig::standard(base_w * 4.0)),
        ("standard W=8d", BiLevelConfig::standard(base_w * 8.0)),
        ("bilevel W=4d", BiLevelConfig::paper_default(base_w * 4.0)),
        ("bilevel W=8d", BiLevelConfig::paper_default(base_w * 8.0)),
    ] {
        let index = BiLevelIndex::build(&p.train, &cfg);
        let evals = evaluate_index(&index, &p.queries, &p.truth, args.k);
        let n = evals.len() as f64;
        let rho: f64 = evals.iter().map(|e| e.recall).sum::<f64>() / n;
        let tau: f64 = evals.iter().map(|e| e.selectivity).sum::<f64>() / n;
        println!("| {label} | {rho:.3} | {:.0} | {tau:.4} |", tau * p.train.len() as f64);
    }
}
