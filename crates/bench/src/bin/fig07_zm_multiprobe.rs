//! Figure 7: multi-probed standard vs multi-probed Bi-level LSH, Z^M, 240 probes.

use bench::methods::MethodKind;
use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::pairwise_figure(
        "Figure 7: multi-probed standard vs multi-probed Bi-level (Z^M lattice, 240 probes)",
        Quantizer::Zm,
        MethodKind::MultiStandard,
        MethodKind::MultiBiLevel,
        &args,
    );
}
