//! Extension experiment (beyond the paper): query-adaptive hash-function
//! selection (Jégou et al., the paper's reference \[12\]) — draw a pool of
//! L' > L hash functions, probe only the L most central per query — against
//! using a fixed set of L tables, at equal per-query table count.

fn main() {
    use bench::{data::prepare, HarnessArgs};
    use knn_metrics::{paired_bootstrap, recall};
    use lsh::{select_tables, DistanceProfile, HashFamily, LshTable};
    use vecstore::{Metric, SquaredL2, TopK};

    let args = HarnessArgs::parse();
    let p = prepare(&args);
    let w = DistanceProfile::fit(&p.train, args.k, 200).d_knn as f32 * 4.0;
    let (l, pool_size, m) = (10usize, 30usize, 8usize);

    // Pool of L' families and their tables.
    let families: Vec<HashFamily> =
        (0..pool_size).map(|i| HashFamily::sample(p.train.dim(), m, w, 0xADA + i as u64)).collect();
    let tables: Vec<LshTable> = families
        .iter()
        .map(|f| {
            let mut t = LshTable::new();
            for (i, row) in p.train.iter().enumerate() {
                t.insert(&f.hash_zm(row), i as u32);
            }
            t
        })
        .collect();

    let run = |pick: &dyn Fn(&[f32]) -> Vec<usize>| -> (Vec<f64>, f64) {
        let mut recalls = Vec::with_capacity(p.queries.len());
        let mut cands_total = 0usize;
        for (q, truth) in p.truth.iter().enumerate() {
            let query = p.queries.row(q);
            let mut cands: Vec<u32> = Vec::new();
            for &t in &pick(query) {
                cands.extend_from_slice(tables[t].bucket(&families[t].hash_zm(query)));
            }
            cands.sort_unstable();
            cands.dedup();
            cands_total += cands.len();
            let mut top = TopK::new(args.k);
            for &id in &cands {
                top.push(id as usize, SquaredL2.distance(query, p.train.row(id as usize)));
            }
            let mut hits = top.into_sorted();
            for n in &mut hits {
                n.dist = n.dist.sqrt();
            }
            recalls.push(recall(truth, &hits));
        }
        let tau = cands_total as f64 / (p.queries.len() * p.train.len()) as f64;
        (recalls, tau)
    };

    let fixed = |_: &[f32]| (0..l).collect::<Vec<usize>>();
    let adaptive = |q: &[f32]| select_tables(&families, q, l);
    let (r_fixed, tau_fixed) = run(&fixed);
    let (r_adaptive, tau_adaptive) = run(&adaptive);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;

    println!("\n## Extension: query-adaptive table selection (L = {l} of L' = {pool_size})\n");
    println!("| method | recall | selectivity |");
    println!("|---|---|---|");
    println!("| fixed L tables | {:.4} | {tau_fixed:.4} |", mean(&r_fixed));
    println!("| adaptive (most central) | {:.4} | {tau_adaptive:.4} |", mean(&r_adaptive));
    let boot = paired_bootstrap(&r_adaptive, &r_fixed, 2_000, 0xB007);
    println!(
        "\nper-query recall difference: {:+.4} (95% CI [{:+.4}, {:+.4}], p = {:.3}{})",
        boot.mean_diff,
        boot.ci95.0,
        boot.ci95.1,
        boot.p_value,
        if boot.significant(0.05) { ", significant" } else { "" },
    );
}
