//! Figure 10: hierarchical standard vs hierarchical Bi-level LSH, E8 lattice
//! (scaled-decode hierarchy).

use bench::methods::MethodKind;
use bilevel_lsh::Quantizer;

fn main() {
    let args = bench::HarnessArgs::parse();
    bench::figures::pairwise_figure(
        "Figure 10: hierarchical standard vs hierarchical Bi-level (E8 hierarchy)",
        Quantizer::E8,
        MethodKind::HierStandard,
        MethodKind::HierBiLevel,
        &args,
    );
}
