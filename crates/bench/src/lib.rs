#![warn(missing_docs)]

//! Shared harness for the figure-reproduction binaries.
//!
//! Every `figNN_*` binary follows the same shape: parse [`args::HarnessArgs`]
//! from the command line, prepare a dataset + ground truth via [`data`],
//! pick method configurations from [`methods`], run the bucket-width sweep
//! in [`sweep`], and emit CSV plus a markdown summary via [`report`].
//!
//! Scale defaults are container-sized (10k train / 1k query / k = 50 /
//! 3 repetitions); pass `--n 100000 --queries 100000 --k 500 --reps 10` to
//! run at the paper's scale.

pub mod args;
pub mod data;
pub mod figures;
pub mod methods;
pub mod record;
pub mod report;
pub mod sweep;

pub use args::HarnessArgs;
pub use data::Prepared;
pub use methods::{method_config, MethodKind};
pub use record::RunRecord;
pub use report::{print_markdown_table, write_csv};
pub use sweep::{sweep_widths, w_grid, MethodCurve};
