//! Golden-file compatibility: a checked-in v2 snapshot must keep loading,
//! answering, and re-saving byte-identically in every future build. The
//! load → save path involves no randomness, so the byte comparison is
//! environment-independent; a failure here means the v2 wire layout
//! drifted, which needs a version bump, not a silent change.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Probe};
use std::path::Path;
use vecstore::io::read_fvecs;

const DATA: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.fvecs");
const SNAP: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v2.snap");

/// The configuration the fixture was generated with (see
/// [`regenerate_golden_fixture`]).
fn golden_config() -> BiLevelConfig {
    BiLevelConfig::paper_default(5.0).probe(Probe::Multi(8))
}

#[test]
fn golden_v2_snapshot_loads_and_resaves_identically() {
    let data = read_fvecs(Path::new(DATA)).unwrap();
    let snap = std::fs::read(SNAP).unwrap();
    let index = BiLevelIndex::load_from(&data, snap.as_slice()).unwrap();

    let mut resaved = Vec::new();
    index.save_to(&mut resaved).unwrap();
    assert_eq!(resaved, snap, "v2 byte layout drifted — bump the format version");

    // The loaded index answers sanely: every indexed row finds itself.
    for probe in [0usize, data.len() / 2, data.len() - 1] {
        let hits = index.query(data.row(probe), 3);
        assert_eq!(hits.first().map(|n| n.id), Some(probe), "row {probe} must find itself");
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}

#[test]
#[ignore = "writes the golden fixture; run manually after a deliberate format change"]
fn regenerate_golden_fixture() {
    use vecstore::io::write_fvecs;
    use vecstore::synth::{self, ClusteredSpec};

    let data = synth::clustered(&ClusteredSpec::small(240), 2012);
    std::fs::create_dir_all(Path::new(SNAP).parent().unwrap()).unwrap();
    write_fvecs(Path::new(DATA), &data).unwrap();
    let index = BiLevelIndex::build(&data, &golden_config());
    index.save(Path::new(SNAP)).unwrap();
}
