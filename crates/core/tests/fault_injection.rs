//! Chaos tests for the out-of-core path: a seeded fault plan injects
//! transient I/O failures into every disk read, and the retry layer must
//! absorb them — build and query results stay **bit-identical** to the
//! fault-free run, serial and parallel alike. Permanent failures must
//! surface as typed errors, never as silent corruption.

use bilevel_lsh::{BiLevelConfig, Engine, OocFlatIndex, Probe, QueryOptions};
use vecstore::fault::{FaultKind, FaultPlan, FaultyDataset};
use vecstore::io::write_fvecs;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Neighbor, OocDataset};

const K: usize = 8;
const SAMPLE: usize = 200;

fn ooc_config() -> BiLevelConfig {
    BiLevelConfig::paper_default(2.0).probe(Probe::Multi(4))
}

/// Writes a clustered corpus to a temp fvecs file; returns (path, queries).
fn fixture(name: &str) -> (std::path::PathBuf, vecstore::Dataset) {
    let all = synth::clustered(&ClusteredSpec::small(600), 77);
    let (data, queries) = all.split_at(520);
    let dir = std::env::temp_dir().join("bilevel_fault_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_fvecs(&path, &data).unwrap();
    (path, queries)
}

/// The fault-free reference: build + serial batch answers.
fn baseline(ooc: &OocDataset, queries: &vecstore::Dataset) -> Vec<Vec<Neighbor>> {
    let index = OocFlatIndex::build_with(ooc, &ooc_config(), SAMPLE, 2).unwrap();
    index.query_batch_per_row(queries, K).unwrap()
}

/// The seeded fault matrix: every transient class × 1% and 5% rates ×
/// serial and parallel query paths. All faults are transient and capped
/// below the retry policy's attempt budget, so every run must reproduce
/// the fault-free answers bit-for-bit.
#[test]
fn transient_fault_matrix_is_bit_identical_to_fault_free() {
    let (path, queries) = fixture("matrix.fvecs");
    let ooc = OocDataset::open(&path).unwrap();
    let want = baseline(&ooc, &queries);

    let classes = [FaultKind::Eio, FaultKind::Eintr, FaultKind::ShortRead, FaultKind::BitFlip];
    for (ci, &kind) in classes.iter().enumerate() {
        for (ri, &rate) in [0.01f64, 0.05].iter().enumerate() {
            let seed = 0x9E37 + (ci * 10 + ri) as u64;
            let plan = FaultPlan::none(seed).with_rate(kind, rate);
            let faulty = FaultyDataset::new(&ooc, plan);
            let index = OocFlatIndex::build_with(&faulty, &ooc_config(), SAMPLE, 2)
                .unwrap_or_else(|e| panic!("{kind} @ {rate}: transient-only build failed: {e}"));
            for threads in [1usize, 4] {
                let got = index
                    .query_batch_opts(
                        &queries,
                        &QueryOptions::new(K).engine(Engine::PerQuery { threads }),
                    )
                    .unwrap_or_else(|e| panic!("{kind} @ {rate} x{threads}: query failed: {e}"));
                assert_eq!(
                    got, want,
                    "{kind} @ {rate} x{threads}: answers diverged from fault-free run"
                );
            }
            // The plan really fired and the retry layer really worked. At
            // 1% a class can legitimately draw zero faults over this many
            // reads; the 5% point must always fire.
            let (retries, recovered, exhausted, permanent) = index.retry_stats().snapshot();
            if rate >= 0.05 {
                assert!(
                    faulty.stats().injected(kind) > 0,
                    "{kind} @ {rate}: plan injected nothing — the matrix tested nothing"
                );
                assert!(retries > 0 && recovered > 0, "{kind} @ {rate}: no retries recorded");
            }
            assert_eq!(exhausted, 0, "{kind} @ {rate}: a capped transient plan exhausted retries");
            assert_eq!(permanent, 0);
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The full mix at 2%: every class firing together, still bit-identical.
#[test]
fn mixed_fault_plan_is_bit_identical_to_fault_free() {
    let (path, queries) = fixture("mixed.fvecs");
    let ooc = OocDataset::open(&path).unwrap();
    let want = baseline(&ooc, &queries);

    let faulty = FaultyDataset::new(&ooc, FaultPlan::transient_mix(0xDEAD, 0.02));
    let index = OocFlatIndex::build_with(&faulty, &ooc_config(), SAMPLE, 2).unwrap();
    for threads in [1usize, 4] {
        assert_eq!(
            index
                .query_batch_opts(
                    &queries,
                    &QueryOptions::new(K).engine(Engine::PerQuery { threads })
                )
                .unwrap(),
            want
        );
    }
    assert!(faulty.stats().total() > 0);
    std::fs::remove_file(&path).ok();
}

/// A permanently failing row is a typed, non-transient error wherever it
/// is touched — the retry layer must not spin on it, and the build must
/// fail cleanly rather than panic or corrupt.
#[test]
fn permanent_row_failure_surfaces_as_a_typed_error() {
    use vecstore::RowSource;
    let (path, _queries) = fixture("permanent.fvecs");
    let ooc = OocDataset::open(&path).unwrap();
    let plan = FaultPlan::none(0xBAD).with_permanent_rows(vec![0]);
    let faulty = FaultyDataset::new(&ooc, plan);

    // Direct read: typed error, classified non-transient, counted.
    let mut buf = vec![0.0f32; ooc.dim()];
    let err = faulty.read_row_into(0, &mut buf).unwrap_err();
    assert!(!vecstore::is_transient(&err), "permanent failure must not classify transient");
    assert_eq!(faulty.stats().permanent(), 1);

    // Build reads row 0 in its first chunk: fails with the typed I/O
    // variant, and quickly — the retry layer does not burn its budget on
    // a failure it knows is permanent.
    match OocFlatIndex::build_with(&faulty, &ooc_config(), SAMPLE, 2) {
        Err(bilevel_lsh::OocBuildError::Io(_)) => {}
        Err(other) => panic!("expected the Io variant, got {other}"),
        Ok(_) => panic!("build over a permanently dead row 0 must fail"),
    }
    std::fs::remove_file(&path).ok();
}

/// When a row faults more times than the retry policy will attempt, the
/// error surfaces instead of looping forever — and the same fault rate
/// under the default per-read cap succeeds, isolating exhaustion (not
/// rate) as the failure cause.
#[test]
fn exhausted_retry_budget_surfaces_the_error() {
    let (path, _queries) = fixture("exhausted.fvecs");
    let ooc = OocDataset::open(&path).unwrap();

    // Every read faults and keeps faulting past the policy's attempt cap:
    // the build's first read can never succeed.
    let mut plan = FaultPlan::none(0xEEE).with_rate(FaultKind::Eio, 1.0);
    plan.max_faults_per_read = u32::MAX;
    let faulty = FaultyDataset::new(&ooc, plan);
    assert!(
        OocFlatIndex::build_with(&faulty, &ooc_config(), SAMPLE, 2).is_err(),
        "unbounded faulting must exhaust the retry budget"
    );
    // Control: the identical 100% rate, but capped at the default two
    // faults per read (below the four attempts the default policy makes),
    // recovers completely.
    let plan = FaultPlan::none(0xEEE).with_rate(FaultKind::Eio, 1.0);
    let faulty = FaultyDataset::new(&ooc, plan);
    assert!(
        OocFlatIndex::build_with(&faulty, &ooc_config(), SAMPLE, 2).is_ok(),
        "capped faults within the attempt budget must recover"
    );
    std::fs::remove_file(&path).ok();
}
