//! Per-family end-to-end coverage for the pluggable level-2 hash zoo:
//! recall-vs-brute-force grids for SRP/cosine, asymmetric MIPS, and ℓp
//! p-stable hashing; the mutation path under a non-L2 family; and
//! snapshot round-trips for every family tag (including the legacy
//! auto-load-as-L2 path).
//!
//! The recall grids are the acceptance gate of the family redesign: each
//! new family must reach ≥0.9 recall@10 against a brute-force scan under
//! its own metric at *some* probe budget — an LSH family that can't be
//! probed to high recall is miswired, whatever its unit tests say.

use bilevel_lsh::{
    BiLevelConfig, BiLevelIndex, FamilyKind, MetricKind, Partition, Probe, QueryOptions, WidthMode,
};
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{knn_batch, Cosine, Dataset, InnerProduct, Lp, Metric, Neighbor};

const K: usize = 10;

fn corpus_and_queries(n: usize, nq: usize, seed: u64) -> (Dataset, Dataset) {
    synth::clustered(&ClusteredSpec::small(n + nq), seed).split_at(n)
}

/// Brute-force top-k under an arbitrary metric — only ids matter for
/// recall, so no distance post-transform is needed.
fn truth_under(data: &Dataset, queries: &Dataset, metric: &dyn Metric) -> Vec<Vec<Neighbor>> {
    knn_batch(data, queries, K, metric, 1)
}

/// Mean recall@k of `index` against `truth` at one probe budget.
fn recall_at(
    index: &BiLevelIndex,
    queries: &Dataset,
    truth: &[Vec<Neighbor>],
    probe: Probe,
) -> f64 {
    let mut options = QueryOptions::new(K);
    options.probe = Some(probe);
    let got = index.query_batch_opts(queries, &options);
    let total: f64 = truth.iter().zip(&got.neighbors).map(|(t, g)| knn_metrics::recall(t, g)).sum();
    total / truth.len() as f64
}

/// Sweeps widths × probe budgets for one family config and returns the
/// best mean recall plus the grid rendered for the failure message.
fn best_recall_over_grid(
    data: &Dataset,
    queries: &Dataset,
    truth: &[Vec<Neighbor>],
    base: &BiLevelConfig,
    widths: &[f32],
) -> (f64, String) {
    let probes =
        [Probe::Home, Probe::Multi(4), Probe::Multi(16), Probe::Multi(64), Probe::Multi(256)];
    let mut best = 0.0f64;
    let mut grid = String::new();
    for &w in widths {
        let mut config = base.clone();
        config.width = WidthMode::Fixed(w);
        let index = BiLevelIndex::build(data, &config);
        for probe in probes {
            let r = recall_at(&index, queries, truth, probe);
            best = best.max(r);
            grid.push_str(&format!("w={w} probe={probe:?}: recall {r:.3}\n"));
        }
    }
    (best, grid)
}

#[test]
fn srp_reaches_cosine_recall_target() {
    let (data, queries) = corpus_and_queries(600, 60, 11);
    let truth = truth_under(&data, &queries, &Cosine);
    // Sign codes ignore the width entirely, so the grid is probes only.
    let config = BiLevelConfig::standard(1.0).metric(MetricKind::Cosine).tables(12);
    let (best, grid) = best_recall_over_grid(&data, &queries, &truth, &config, &[1.0]);
    assert!(best >= 0.9, "SRP/cosine best recall@{K} {best:.3} < 0.9\n{grid}");
}

#[test]
fn mips_reaches_inner_product_recall_target() {
    let (data, queries) = corpus_and_queries(600, 60, 12);
    let truth = truth_under(&data, &queries, &InnerProduct);
    // The asymmetric embedding maps both sides onto (dim+1)-dim unit
    // vectors, so useful widths sit near the unit scale.
    let config = BiLevelConfig::standard(1.0).metric(MetricKind::InnerProduct).tables(12);
    let (best, grid) = best_recall_over_grid(&data, &queries, &truth, &config, &[0.5, 1.0, 2.0]);
    assert!(best >= 0.9, "MIPS/ip best recall@{K} {best:.3} < 0.9\n{grid}");
}

#[test]
fn lp_families_reach_recall_target_across_p() {
    let (data, queries) = corpus_and_queries(600, 60, 13);
    for p in [0.5f32, 1.0, 1.5] {
        let truth = truth_under(&data, &queries, &Lp::new(p));
        let config = BiLevelConfig::standard(1.0).metric(MetricKind::Lp { p }).tables(12);
        // ℓp draws are heavy-tailed (infinite variance for p < 2, Lévy
        // tails at p = 0.5), so projections — and the widths that bucket
        // them — span orders of magnitude as p falls.
        let (best, grid) = best_recall_over_grid(
            &data,
            &queries,
            &truth,
            &config,
            &[32.0, 512.0, 8192.0, 32768.0],
        );
        assert!(best >= 0.9, "Lp p={p} best recall@{K} {best:.3} < 0.9\n{grid}");
    }
}

/// Partitioned (bi-level) builds also answer sanely under a non-L2
/// family — the level-1 RP-tree is metric-agnostic routing, and every
/// group's level-2 tables hash under the family.
#[test]
fn partitioned_cosine_index_answers_sanely() {
    let (data, queries) = corpus_and_queries(500, 20, 14);
    let mut config =
        BiLevelConfig::standard(1.0).metric(MetricKind::Cosine).probe(Probe::Multi(16));
    config.partition = Partition::RpTree { groups: 4, rule: rptree::SplitRule::Max };
    let index = BiLevelIndex::build(&data, &config);
    let truth = truth_under(&data, &queries, &Cosine);
    let r = recall_at(&index, &queries, &truth, Probe::Multi(64));
    assert!(r > 0.5, "partitioned cosine recall collapsed: {r:.3}");
    // Distances are cosine distances: within [0, 2] and ascending.
    let got = index.query_batch_opts(&queries, &QueryOptions::new(K));
    for hits in &got.neighbors {
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(hits.iter().all(|n| (-1e-5..=2.0 + 1e-5).contains(&n.dist)));
    }
}

// ---------------------------------------------------------------------------
// Mutation path under a non-L2 family
// ---------------------------------------------------------------------------

/// Insert / update / delete / compact all work under the SRP/cosine
/// family, and the cosine rank path (cached norms) stays correct across
/// every rebuild funnel — a stale norms cache would surface here as a
/// wrong self-distance.
#[test]
fn mutations_work_under_cosine_family() {
    let (data, _) = corpus_and_queries(300, 1, 15);
    let config = BiLevelConfig::standard(1.0).metric(MetricKind::Cosine).probe(Probe::Multi(16));
    let mut index = BiLevelIndex::build_owned(data, &config);
    assert_eq!(index.config().family, FamilyKind::Srp);

    // Insert a distinctive new row: its nearest neighbor under cosine is
    // itself, at distance ~0 — this requires the norms cache to cover
    // the inserted row.
    let dim = index.data().dim();
    let novel: Vec<f32> = (0..dim).map(|i| if i % 2 == 0 { 3.0 } else { -2.0 }).collect();
    let mut txn = index.begin_txn();
    txn.insert(&novel).unwrap();
    let summary = index.commit(txn).unwrap();
    let new_id = summary.first_inserted_id.unwrap();
    let hits = index.query(&novel, 3);
    assert_eq!(hits.first().map(|n| n.id), Some(new_id), "inserted row must find itself");
    assert!(hits[0].dist.abs() < 1e-5, "self cosine distance {}", hits[0].dist);

    // Update it onto a different direction; the old direction no longer
    // matches, the new one does.
    let rotated: Vec<f32> = (0..dim).map(|i| if i % 3 == 0 { -4.0 } else { 1.5 }).collect();
    let mut txn = index.begin_txn();
    txn.update(new_id, &rotated).unwrap();
    index.commit(txn).unwrap();
    let hits = index.query(&rotated, 3);
    assert_eq!(hits.first().map(|n| n.id), Some(new_id));
    assert!(hits[0].dist.abs() < 1e-5);

    // Delete it: the tombstone hides it from every query.
    let mut txn = index.begin_txn();
    txn.delete(new_id);
    index.commit(txn).unwrap();
    assert!(index.query(&rotated, 5).iter().all(|n| n.id != new_id));

    // Compaction renumbers densely and keeps answering under cosine.
    let survivors = index.compact();
    assert!(!survivors.contains(&new_id));
    let probe = index.data().row(0).to_vec();
    let hits = index.query(&probe, 3);
    assert_eq!(hits.first().map(|n| n.id), Some(0), "row 0 must find itself post-compact");
    assert!(hits[0].dist.abs() < 1e-5);
}

// ---------------------------------------------------------------------------
// Snapshot round-trips
// ---------------------------------------------------------------------------

/// Every family tag survives a v2 save → load round-trip: the loaded
/// index answers bit-identically and re-saves to the same bytes.
#[test]
fn v2_snapshots_roundtrip_for_every_family() {
    let (data, queries) = corpus_and_queries(300, 20, 16);
    let metrics = [
        MetricKind::L2,
        MetricKind::Cosine,
        MetricKind::InnerProduct,
        MetricKind::Lp { p: 0.5 },
        MetricKind::Lp { p: 1.5 },
    ];
    for metric in metrics {
        let config = BiLevelConfig::standard(2.0).metric(metric).probe(Probe::Multi(8));
        let index = BiLevelIndex::build(&data, &config);
        let mut snap = Vec::new();
        index.save_to(&mut snap).unwrap();
        let loaded = BiLevelIndex::load_from(&data, snap.as_slice()).unwrap();
        assert_eq!(loaded.config().metric, metric);
        assert_eq!(loaded.config().family, metric.default_family());

        let want = index.query_batch_opts(&queries, &QueryOptions::new(K));
        let got = loaded.query_batch_opts(&queries, &QueryOptions::new(K));
        assert_eq!(want.neighbors.len(), got.neighbors.len());
        for (w, g) in want.neighbors.iter().zip(&got.neighbors) {
            assert_eq!(w.len(), g.len(), "metric {metric:?}");
            for (a, b) in w.iter().zip(g) {
                assert_eq!(a.id, b.id, "metric {metric:?}");
                assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "metric {metric:?}");
            }
        }

        let mut resaved = Vec::new();
        loaded.save_to(&mut resaved).unwrap();
        assert_eq!(resaved, snap, "metric {metric:?}: save→load→save must be byte-stable");
    }
}

/// Legacy v1 JSON snapshots predate the family tags, so they auto-load
/// as the L2 / p-stable configuration; saving a non-p-stable index as
/// JSON is a typed refusal, not silent data loss.
#[test]
fn legacy_json_snapshots_stay_l2_pstable_only() {
    let (data, queries) = corpus_and_queries(250, 10, 17);
    let config = BiLevelConfig::standard(4.0).probe(Probe::Multi(8));
    let index = BiLevelIndex::build(&data, &config);

    // Offline builds may link a stub serde_json that errors at runtime;
    // the legacy-load half of this test only runs where JSON works. The
    // family gate below fires before serialization, so it is checked
    // unconditionally.
    if serde_json::to_vec(&1u32).is_ok() {
        let mut json = Vec::new();
        index.save_json_to(&mut json).unwrap();
        let loaded = BiLevelIndex::load_from(&data, json.as_slice()).unwrap();
        assert_eq!(loaded.config().metric, MetricKind::L2);
        assert_eq!(loaded.config().family, FamilyKind::PStable);
        let want = index.query_batch_opts(&queries, &QueryOptions::new(K));
        let got = loaded.query_batch_opts(&queries, &QueryOptions::new(K));
        assert_eq!(want.neighbors, got.neighbors);
    }

    // A cosine index refuses the legacy format by name.
    let cosine =
        BiLevelIndex::build(&data, &BiLevelConfig::standard(1.0).metric(MetricKind::Cosine));
    let err = cosine.save_json_to(&mut Vec::new()).unwrap_err();
    assert!(
        err.to_string().contains("p-stable"),
        "JSON save of a non-p-stable family must name the limitation: {err}"
    );
}
