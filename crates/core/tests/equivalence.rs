//! The deprecation contract: every legacy query entry point must stay
//! bit-identical to its one-line [`QueryOptions`] replacement, across
//! probe modes and quantizers, and attaching a recorder must never change
//! an answer. This suite (with `crates/core/src/compat.rs`) is the only
//! place in the tree allowed to call the legacy signatures.
#![allow(deprecated)]

use bilevel_lsh::telemetry::{Counter, InMemoryRecorder, NoopRecorder, Value};
use bilevel_lsh::{
    BatchResult, BiLevelConfig, BiLevelIndex, Engine, OocFlatIndex, Partition, Probe, Quantizer,
    QueryOptions, ShardedIndex, WidthMode,
};
use rptree::SplitRule;
use vecstore::io::write_fvecs;
use vecstore::ooc::OocDataset;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Dataset, Neighbor};

fn corpus() -> (Dataset, Dataset) {
    let all = synth::clustered(&ClusteredSpec::benchmark(24, 640), 11);
    all.split_at(600)
}

fn config(probe: Probe, quantizer: Quantizer) -> BiLevelConfig {
    BiLevelConfig {
        l: 6,
        m: 6,
        width: WidthMode::Fixed(40.0),
        partition: Partition::RpTree { groups: 4, rule: SplitRule::Max },
        quantizer,
        probe,
        table_pool: None,
        projection: bilevel_lsh::Projection::Dense,
        metric: bilevel_lsh::MetricKind::L2,
        family: bilevel_lsh::FamilyKind::PStable,
        seed: 0x5eed,
    }
}

/// The three probe modes × two quantizers the deprecation contract is
/// proven over.
fn grid() -> Vec<BiLevelConfig> {
    let mut out = Vec::new();
    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        for probe in [Probe::Home, Probe::Multi(16), Probe::Hierarchical { min_candidates: 12 }] {
            out.push(config(probe, quantizer));
        }
    }
    out
}

/// Collapse a batch answer to exact bit patterns: any drift in id order,
/// distance rounding, or candidate accounting fails the comparison.
fn bits(r: &BatchResult) -> (Vec<Vec<(usize, u32)>>, Vec<usize>) {
    let neighbors =
        r.neighbors.iter().map(|q| q.iter().map(|n| (n.id, n.dist.to_bits())).collect()).collect();
    (neighbors, r.candidates.clone())
}

fn neighbor_bits(r: &[Vec<Neighbor>]) -> Vec<Vec<(usize, u32)>> {
    r.iter().map(|q| q.iter().map(|n| (n.id, n.dist.to_bits())).collect()).collect()
}

/// The deprecated concrete-family constructors in `compat` must keep
/// producing bit-identical p-stable families to the expressions they
/// replaced: `pstable_family` is the raw `HashFamily::sample_with`, and
/// `sample_level2_pstable` is the level-2 sampling rule (seed
/// `config.seed ^ (0x1000 + l)`, group width folded in) that the
/// metric-aware build now applies internally.
#[test]
fn legacy_family_constructors_match_internal_sampling() {
    use bilevel_lsh::compat::{pstable_family, sample_level2_pstable};
    use lsh::{HashFamily, Projection};

    for (dim, m, w, seed) in [(24usize, 6usize, 4.0f32, 0x5eed_u64), (64, 8, 2.5, 99)] {
        for projection in [Projection::Dense, Projection::Sparse { nnz: 4 }] {
            let shim = pstable_family(dim, m, w, seed, projection);
            let direct = HashFamily::sample_with(dim, m, w, seed, projection);
            assert_eq!(shim.to_parts(), direct.to_parts(), "pstable_family drifted");
        }
    }

    let cfg = config(Probe::Home, Quantizer::Zm);
    for l in 0..cfg.l as u64 {
        for group_w in [1.0f32, 17.5, 40.0] {
            let shim = sample_level2_pstable(24, &cfg, l, group_w);
            let direct =
                HashFamily::sample_with(24, cfg.m, 1.0, cfg.seed ^ (0x1000 + l), cfg.projection)
                    .with_w(group_w);
            assert_eq!(
                shim.to_parts(),
                direct.to_parts(),
                "sample_level2_pstable drifted (l={l}, w={group_w})"
            );
        }
    }
}

#[test]
fn bilevel_legacy_entry_points_match_query_batch_opts() {
    let (data, queries) = corpus();
    for cfg in grid() {
        let index = BiLevelIndex::build(&data, &cfg);
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);

        let legacy = index.query_batch(&queries, 10);
        let unified = index.query_batch_opts(&queries, &QueryOptions::new(10));
        assert_eq!(bits(&legacy), bits(&unified), "query_batch drifted ({label})");

        for engine in [Engine::Serial, Engine::PerQuery { threads: 4 }] {
            let legacy = index.query_batch_with(&queries, 10, engine);
            let unified = index.query_batch_opts(&queries, &QueryOptions::new(10).engine(engine));
            assert_eq!(bits(&legacy), bits(&unified), "query_batch_with drifted ({label})");

            // Explicit-probe (fixed-floor) path: probe at the built mode.
            let legacy = index.query_batch_at(&queries, 10, engine, cfg.probe);
            let unified = index
                .query_batch_opts(&queries, &QueryOptions::new(10).engine(engine).probe(cfg.probe));
            assert_eq!(bits(&legacy), bits(&unified), "query_batch_at drifted ({label})");
        }
    }
}

#[test]
fn sharded_legacy_entry_points_match_query_batch_opts() {
    let (data, queries) = corpus();
    for cfg in grid() {
        let index = ShardedIndex::build(data.clone(), &cfg, 3);
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);

        let legacy = index.query_batch(&queries, 10);
        let unified = index.query_batch_opts(&queries, &QueryOptions::new(10));
        assert_eq!(bits(&legacy), bits(&unified), "sharded query_batch drifted ({label})");

        let engine = Engine::PerQuery { threads: 4 };
        let legacy = index.query_batch_with(&queries, 10, engine);
        let unified = index.query_batch_opts(&queries, &QueryOptions::new(10).engine(engine));
        assert_eq!(bits(&legacy), bits(&unified), "sharded query_batch_with drifted ({label})");

        let legacy = index.query_batch_at(&queries, 10, engine, cfg.probe);
        let unified = index
            .query_batch_opts(&queries, &QueryOptions::new(10).engine(engine).probe(cfg.probe));
        assert_eq!(bits(&legacy), bits(&unified), "sharded query_batch_at drifted ({label})");

        for shard in 0..index.num_shards() {
            let legacy = index.query_shard_batch_at(shard, &queries, 10, engine, cfg.probe);
            let unified = index.query_shard_batch_opts(
                shard,
                &queries,
                &QueryOptions::new(10).engine(engine).probe(cfg.probe),
            );
            assert_eq!(
                bits(&legacy),
                bits(&unified),
                "query_shard_batch_at drifted (shard {shard}, {label})"
            );
        }
    }
}

#[test]
fn ooc_legacy_entry_points_match_replacements() {
    let (data, queries) = corpus();
    let dir = std::env::temp_dir().join("bilevel_equivalence_ooc");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.fvecs");
    write_fvecs(&path, &data).unwrap();
    let source = OocDataset::open(&path).unwrap();

    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        for probe in [Probe::Home, Probe::Multi(16)] {
            let cfg = config(probe, quantizer);
            let index = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
            let label = format!("{quantizer:?}/{probe:?}");

            // `query_batch` was the serial per-row baseline, now named
            // `query_batch_per_row`.
            let legacy = index.query_batch(&queries, 10).unwrap();
            let per_row = index.query_batch_per_row(&queries, 10).unwrap();
            assert_eq!(
                neighbor_bits(&legacy),
                neighbor_bits(&per_row),
                "ooc query_batch drifted from per-row baseline ({label})"
            );

            // `query_batch_with` was the coalesced thread-pool path.
            for threads in [1usize, 4] {
                let legacy = index.query_batch_with(&queries, 10, threads).unwrap();
                let unified = index
                    .query_batch_opts(
                        &queries,
                        &QueryOptions::new(10).engine(Engine::PerQuery { threads }),
                    )
                    .unwrap();
                assert_eq!(
                    neighbor_bits(&legacy),
                    neighbor_bits(&unified),
                    "ooc query_batch_with drifted ({label}, {threads} threads)"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn attaching_a_recorder_never_changes_answers() {
    let (data, queries) = corpus();
    let noop = NoopRecorder;
    for cfg in grid() {
        let index = BiLevelIndex::build(&data, &cfg);
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);

        let bare = index.query_batch_opts(&queries, &QueryOptions::new(10));
        let with_noop = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&noop));
        assert_eq!(bits(&bare), bits(&with_noop), "explicit NoopRecorder drifted ({label})");

        let live = InMemoryRecorder::new();
        let with_live = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&live));
        assert_eq!(bits(&bare), bits(&with_live), "InMemoryRecorder drifted ({label})");
    }
}

#[test]
fn recorder_counters_match_ground_truth() {
    let (data, queries) = corpus();
    let cfg = config(Probe::Hierarchical { min_candidates: 12 }, Quantizer::Zm);
    let index = BiLevelIndex::build(&data, &cfg);

    let rec = InMemoryRecorder::new();
    let result = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&rec));
    assert_eq!(rec.counter(Counter::QueriesProbed), queries.len() as u64);
    let total: usize = result.candidates.iter().sum();
    assert_eq!(rec.counter(Counter::CandidatesGenerated), total as u64);
    assert_eq!(rec.value(Value::CandidatesPerQuery).count, queries.len() as u64);
    assert_eq!(rec.value(Value::CandidatesPerQuery).sum, total as u64);

    // Forced-escalation workload: a floor no home bucket can satisfy makes
    // every query escalate exactly once (rounds grow geometrically inside).
    let rec = InMemoryRecorder::new();
    let floor = Probe::Hierarchical { min_candidates: data.len() };
    let _ = index.query_batch_opts(&queries, &QueryOptions::new(10).probe(floor).recorder(&rec));
    assert_eq!(rec.counter(Counter::Escalations), queries.len() as u64);
    assert!(rec.counter(Counter::EscalationRounds) >= rec.counter(Counter::Escalations));

    // A multi-probe override visits extra buckets and reports them.
    let rec = InMemoryRecorder::new();
    let _ = index
        .query_batch_opts(&queries, &QueryOptions::new(10).probe(Probe::Multi(16)).recorder(&rec));
    assert!(rec.counter(Counter::MultiProbeBuckets) > 0);
    assert_eq!(rec.counter(Counter::Escalations), 0);
}

#[test]
fn ooc_recorder_counts_reads_and_bytes() {
    let (data, queries) = corpus();
    let dir = std::env::temp_dir().join("bilevel_equivalence_ooc_telemetry");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.fvecs");
    write_fvecs(&path, &data).unwrap();
    let source = OocDataset::open(&path).unwrap();
    let cfg = config(Probe::Multi(8), Quantizer::Zm);
    let index = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();

    let rec = InMemoryRecorder::new();
    let _ = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&rec)).unwrap();
    assert_eq!(rec.counter(Counter::QueriesProbed), queries.len() as u64);
    let reads = rec.counter(Counter::OocReads);
    assert!(reads > 0, "coalesced path must report positioned reads");
    let bytes = rec.counter(Counter::OocBytesRead);
    assert!(bytes >= reads * (data.dim() * 4) as u64, "each read fetches >= one row");
    assert_eq!(rec.counter(Counter::OocRetries), 0, "healthy file must not retry");
    std::fs::remove_dir_all(&dir).ok();
}

/// Deterministic splitmix-style generator: keeps the randomized mutation
/// workload reproducible without pulling an RNG crate into the test.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self, m: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % m
    }
    fn f32(&mut self) -> f32 {
        (self.next(1 << 20) as f32 / (1 << 20) as f32) * 2.0 - 1.0
    }
}

/// Applies `ops` randomized insert/update/delete batches through the txn
/// path to both the index and a plain mirror model, returning the mirror.
fn mutate_randomly(
    index: &mut BiLevelIndex<'static>,
    lcg: &mut Lcg,
    batches: usize,
    batch_size: usize,
) -> (Vec<Vec<f32>>, std::collections::BTreeSet<usize>) {
    let dim = index.data().dim();
    let mut rows: Vec<Vec<f32>> = index.data().iter().map(|r| r.to_vec()).collect();
    let mut dead: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for _ in 0..batches {
        let len = rows.len();
        let mut txn = index.begin_txn();
        // Mirror the commit's apply order: deletes, then updates, then
        // inserts (an update in the same batch revives a delete).
        let mut deletes = Vec::new();
        let mut updates = Vec::new();
        let mut inserts = Vec::new();
        for _ in 0..batch_size {
            match lcg.next(10) {
                0..=3 => {
                    let v: Vec<f32> = (0..dim).map(|_| lcg.f32() * 40.0).collect();
                    inserts.push(v);
                }
                4..=6 => {
                    let id = lcg.next(len as u64) as usize;
                    let v: Vec<f32> = (0..dim).map(|_| lcg.f32() * 40.0).collect();
                    updates.push((id, v));
                }
                _ => {
                    // Never tombstone the whole corpus.
                    if len - dead.len() > batch_size + 1 {
                        deletes.push(lcg.next(len as u64) as usize);
                    }
                }
            }
        }
        for &id in &deletes {
            txn.delete(id);
        }
        for (id, v) in &updates {
            txn.update(*id, v).unwrap();
        }
        for v in &inserts {
            txn.insert(v).unwrap();
        }
        let summary = index.commit(txn).expect("in-range randomized batch commits");
        assert_eq!(summary.inserted, inserts.len());
        for id in deletes {
            dead.insert(id);
        }
        for (id, v) in updates {
            rows[id] = v;
            dead.remove(&id);
        }
        rows.extend(inserts);
    }
    (rows, dead)
}

/// The tentpole's recall-equivalence proof: after >= 1k randomized
/// insert/update/delete operations, compaction answers bit-identically to
/// a from-scratch rebuild over an independently tracked survivor set —
/// across the full probe x quantizer grid, with and without rerank.
#[test]
fn compaction_matches_from_scratch_rebuild_after_randomized_mutations() {
    let (data, queries) = corpus();
    for cfg in grid() {
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);
        let mut index = BiLevelIndex::build_owned(data.clone(), &cfg);
        let mut lcg = Lcg(0xdead_beef ^ cfg.seed);
        let (rows, dead) = mutate_randomly(&mut index, &mut lcg, 35, 30);

        let epoch_before = index.epoch();
        let survivors = index.compact();
        let expected: Vec<usize> = (0..rows.len()).filter(|i| !dead.contains(i)).collect();
        assert_eq!(survivors, expected, "survivor set drifted ({label})");
        assert_eq!(index.epoch(), epoch_before + 1, "compaction bumps the epoch once");
        assert!(index.deleted().is_empty(), "compaction clears tombstones");

        let fresh_rows: Vec<&[f32]> = expected.iter().map(|&i| rows[i].as_slice()).collect();
        let rebuilt = BiLevelIndex::build_owned(Dataset::from_rows(&fresh_rows), &cfg);
        for opts in [QueryOptions::new(10), QueryOptions::new(10).rerank(64)] {
            let compacted = index.query_batch_opts(&queries, &opts);
            let scratch = rebuilt.query_batch_opts(&queries, &opts);
            assert_eq!(
                bits(&compacted),
                bits(&scratch),
                "compacted index diverged from a fresh rebuild ({label})"
            );
        }
    }
}

/// Mutation/snapshot roundtrip: a mutated index saved to the v2 binary
/// format and loaded back answers bit-identically (tombstones, epoch, and
/// rerank behavior included), and re-saving reproduces the bytes exactly.
#[test]
fn mutated_index_snapshot_roundtrip_is_bit_identical() {
    let (data, queries) = corpus();
    for cfg in grid() {
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);
        let mut index = BiLevelIndex::build_owned(data.clone(), &cfg);
        let mut lcg = Lcg(cfg.seed.rotate_left(17));
        let _ = mutate_randomly(&mut index, &mut lcg, 4, 25);
        assert!(!index.deleted().is_empty(), "workload must leave tombstones ({label})");

        let mut bytes = Vec::new();
        index.save_to(&mut bytes).unwrap();
        let mutated_data = index.data().clone();
        let loaded = BiLevelIndex::load_from(&mutated_data, bytes.as_slice()).unwrap();

        assert_eq!(loaded.epoch(), index.epoch(), "epoch must persist ({label})");
        assert_eq!(
            loaded.deleted().iter().collect::<Vec<_>>(),
            index.deleted().iter().collect::<Vec<_>>(),
            "tombstones must persist ({label})"
        );
        for opts in [QueryOptions::new(10), QueryOptions::new(10).rerank(64)] {
            assert_eq!(
                bits(&loaded.query_batch_opts(&queries, &opts)),
                bits(&index.query_batch_opts(&queries, &opts)),
                "loaded index drifted ({label})"
            );
        }
        let mut again = Vec::new();
        loaded.save_to(&mut again).unwrap();
        assert_eq!(bytes, again, "save -> load -> save must be byte-stable ({label})");
    }
}

/// Deleted rows never surface — not from the exact path, not from the
/// quantized first pass of `rerank`, across the probe x quantizer grid.
#[test]
fn deleted_ids_never_surface_even_with_rerank() {
    let (data, queries) = corpus();
    for cfg in grid() {
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);
        let mut index = BiLevelIndex::build_owned(data.clone(), &cfg);
        // Delete everything the baseline answers, so every victim would
        // provably have been returned again.
        let baseline = index.query_batch_opts(&queries, &QueryOptions::new(10));
        let victims: std::collections::BTreeSet<usize> =
            baseline.neighbors.iter().flatten().map(|n| n.id).collect();
        assert!(!victims.is_empty() && victims.len() < data.len(), "sane workload ({label})");
        for &id in &victims {
            index.delete(id);
        }
        for opts in [
            QueryOptions::new(10),
            QueryOptions::new(10).rerank(32),
            QueryOptions::new(10).rerank(data.len()),
        ] {
            let after = index.query_batch_opts(&queries, &opts);
            for (q, neighbors) in after.neighbors.iter().enumerate() {
                for n in neighbors {
                    assert!(
                        !victims.contains(&n.id),
                        "query {q} surfaced deleted id {} ({label})",
                        n.id
                    );
                }
            }
        }
    }
}
