//! The deprecation contract: every legacy query entry point must stay
//! bit-identical to its one-line [`QueryOptions`] replacement, across
//! probe modes and quantizers, and attaching a recorder must never change
//! an answer. This suite (with `crates/core/src/compat.rs`) is the only
//! place in the tree allowed to call the legacy signatures.
#![allow(deprecated)]

use bilevel_lsh::telemetry::{Counter, InMemoryRecorder, NoopRecorder, Value};
use bilevel_lsh::{
    BatchResult, BiLevelConfig, BiLevelIndex, Engine, OocFlatIndex, Partition, Probe, Quantizer,
    QueryOptions, ShardedIndex, WidthMode,
};
use rptree::SplitRule;
use vecstore::io::write_fvecs;
use vecstore::ooc::OocDataset;
use vecstore::synth::{self, ClusteredSpec};
use vecstore::{Dataset, Neighbor};

fn corpus() -> (Dataset, Dataset) {
    let all = synth::clustered(&ClusteredSpec::benchmark(24, 640), 11);
    all.split_at(600)
}

fn config(probe: Probe, quantizer: Quantizer) -> BiLevelConfig {
    BiLevelConfig {
        l: 6,
        m: 6,
        width: WidthMode::Fixed(40.0),
        partition: Partition::RpTree { groups: 4, rule: SplitRule::Max },
        quantizer,
        probe,
        table_pool: None,
        projection: bilevel_lsh::Projection::Dense,
        seed: 0x5eed,
    }
}

/// The three probe modes × two quantizers the deprecation contract is
/// proven over.
fn grid() -> Vec<BiLevelConfig> {
    let mut out = Vec::new();
    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        for probe in [Probe::Home, Probe::Multi(16), Probe::Hierarchical { min_candidates: 12 }] {
            out.push(config(probe, quantizer));
        }
    }
    out
}

/// Collapse a batch answer to exact bit patterns: any drift in id order,
/// distance rounding, or candidate accounting fails the comparison.
fn bits(r: &BatchResult) -> (Vec<Vec<(usize, u32)>>, Vec<usize>) {
    let neighbors =
        r.neighbors.iter().map(|q| q.iter().map(|n| (n.id, n.dist.to_bits())).collect()).collect();
    (neighbors, r.candidates.clone())
}

fn neighbor_bits(r: &[Vec<Neighbor>]) -> Vec<Vec<(usize, u32)>> {
    r.iter().map(|q| q.iter().map(|n| (n.id, n.dist.to_bits())).collect()).collect()
}

#[test]
fn bilevel_legacy_entry_points_match_query_batch_opts() {
    let (data, queries) = corpus();
    for cfg in grid() {
        let index = BiLevelIndex::build(&data, &cfg);
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);

        let legacy = index.query_batch(&queries, 10);
        let unified = index.query_batch_opts(&queries, &QueryOptions::new(10));
        assert_eq!(bits(&legacy), bits(&unified), "query_batch drifted ({label})");

        for engine in [Engine::Serial, Engine::PerQuery { threads: 4 }] {
            let legacy = index.query_batch_with(&queries, 10, engine);
            let unified = index.query_batch_opts(&queries, &QueryOptions::new(10).engine(engine));
            assert_eq!(bits(&legacy), bits(&unified), "query_batch_with drifted ({label})");

            // Explicit-probe (fixed-floor) path: probe at the built mode.
            let legacy = index.query_batch_at(&queries, 10, engine, cfg.probe);
            let unified = index
                .query_batch_opts(&queries, &QueryOptions::new(10).engine(engine).probe(cfg.probe));
            assert_eq!(bits(&legacy), bits(&unified), "query_batch_at drifted ({label})");
        }
    }
}

#[test]
fn sharded_legacy_entry_points_match_query_batch_opts() {
    let (data, queries) = corpus();
    for cfg in grid() {
        let index = ShardedIndex::build(data.clone(), &cfg, 3);
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);

        let legacy = index.query_batch(&queries, 10);
        let unified = index.query_batch_opts(&queries, &QueryOptions::new(10));
        assert_eq!(bits(&legacy), bits(&unified), "sharded query_batch drifted ({label})");

        let engine = Engine::PerQuery { threads: 4 };
        let legacy = index.query_batch_with(&queries, 10, engine);
        let unified = index.query_batch_opts(&queries, &QueryOptions::new(10).engine(engine));
        assert_eq!(bits(&legacy), bits(&unified), "sharded query_batch_with drifted ({label})");

        let legacy = index.query_batch_at(&queries, 10, engine, cfg.probe);
        let unified = index
            .query_batch_opts(&queries, &QueryOptions::new(10).engine(engine).probe(cfg.probe));
        assert_eq!(bits(&legacy), bits(&unified), "sharded query_batch_at drifted ({label})");

        for shard in 0..index.num_shards() {
            let legacy = index.query_shard_batch_at(shard, &queries, 10, engine, cfg.probe);
            let unified = index.query_shard_batch_opts(
                shard,
                &queries,
                &QueryOptions::new(10).engine(engine).probe(cfg.probe),
            );
            assert_eq!(
                bits(&legacy),
                bits(&unified),
                "query_shard_batch_at drifted (shard {shard}, {label})"
            );
        }
    }
}

#[test]
fn ooc_legacy_entry_points_match_replacements() {
    let (data, queries) = corpus();
    let dir = std::env::temp_dir().join("bilevel_equivalence_ooc");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.fvecs");
    write_fvecs(&path, &data).unwrap();
    let source = OocDataset::open(&path).unwrap();

    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        for probe in [Probe::Home, Probe::Multi(16)] {
            let cfg = config(probe, quantizer);
            let index = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
            let label = format!("{quantizer:?}/{probe:?}");

            // `query_batch` was the serial per-row baseline, now named
            // `query_batch_per_row`.
            let legacy = index.query_batch(&queries, 10).unwrap();
            let per_row = index.query_batch_per_row(&queries, 10).unwrap();
            assert_eq!(
                neighbor_bits(&legacy),
                neighbor_bits(&per_row),
                "ooc query_batch drifted from per-row baseline ({label})"
            );

            // `query_batch_with` was the coalesced thread-pool path.
            for threads in [1usize, 4] {
                let legacy = index.query_batch_with(&queries, 10, threads).unwrap();
                let unified = index
                    .query_batch_opts(
                        &queries,
                        &QueryOptions::new(10).engine(Engine::PerQuery { threads }),
                    )
                    .unwrap();
                assert_eq!(
                    neighbor_bits(&legacy),
                    neighbor_bits(&unified),
                    "ooc query_batch_with drifted ({label}, {threads} threads)"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn attaching_a_recorder_never_changes_answers() {
    let (data, queries) = corpus();
    let noop = NoopRecorder;
    for cfg in grid() {
        let index = BiLevelIndex::build(&data, &cfg);
        let label = format!("{:?}/{:?}", cfg.quantizer, cfg.probe);

        let bare = index.query_batch_opts(&queries, &QueryOptions::new(10));
        let with_noop = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&noop));
        assert_eq!(bits(&bare), bits(&with_noop), "explicit NoopRecorder drifted ({label})");

        let live = InMemoryRecorder::new();
        let with_live = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&live));
        assert_eq!(bits(&bare), bits(&with_live), "InMemoryRecorder drifted ({label})");
    }
}

#[test]
fn recorder_counters_match_ground_truth() {
    let (data, queries) = corpus();
    let cfg = config(Probe::Hierarchical { min_candidates: 12 }, Quantizer::Zm);
    let index = BiLevelIndex::build(&data, &cfg);

    let rec = InMemoryRecorder::new();
    let result = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&rec));
    assert_eq!(rec.counter(Counter::QueriesProbed), queries.len() as u64);
    let total: usize = result.candidates.iter().sum();
    assert_eq!(rec.counter(Counter::CandidatesGenerated), total as u64);
    assert_eq!(rec.value(Value::CandidatesPerQuery).count, queries.len() as u64);
    assert_eq!(rec.value(Value::CandidatesPerQuery).sum, total as u64);

    // Forced-escalation workload: a floor no home bucket can satisfy makes
    // every query escalate exactly once (rounds grow geometrically inside).
    let rec = InMemoryRecorder::new();
    let floor = Probe::Hierarchical { min_candidates: data.len() };
    let _ = index.query_batch_opts(&queries, &QueryOptions::new(10).probe(floor).recorder(&rec));
    assert_eq!(rec.counter(Counter::Escalations), queries.len() as u64);
    assert!(rec.counter(Counter::EscalationRounds) >= rec.counter(Counter::Escalations));

    // A multi-probe override visits extra buckets and reports them.
    let rec = InMemoryRecorder::new();
    let _ = index
        .query_batch_opts(&queries, &QueryOptions::new(10).probe(Probe::Multi(16)).recorder(&rec));
    assert!(rec.counter(Counter::MultiProbeBuckets) > 0);
    assert_eq!(rec.counter(Counter::Escalations), 0);
}

#[test]
fn ooc_recorder_counts_reads_and_bytes() {
    let (data, queries) = corpus();
    let dir = std::env::temp_dir().join("bilevel_equivalence_ooc_telemetry");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.fvecs");
    write_fvecs(&path, &data).unwrap();
    let source = OocDataset::open(&path).unwrap();
    let cfg = config(Probe::Multi(8), Quantizer::Zm);
    let index = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();

    let rec = InMemoryRecorder::new();
    let _ = index.query_batch_opts(&queries, &QueryOptions::new(10).recorder(&rec)).unwrap();
    assert_eq!(rec.counter(Counter::QueriesProbed), queries.len() as u64);
    let reads = rec.counter(Counter::OocReads);
    assert!(reads > 0, "coalesced path must report positioned reads");
    let bytes = rec.counter(Counter::OocBytesRead);
    assert!(bytes >= reads * (data.dim() * 4) as u64, "each read fetches >= one row");
    assert_eq!(rec.counter(Counter::OocRetries), 0, "healthy file must not retry");
    std::fs::remove_dir_all(&dir).ok();
}
