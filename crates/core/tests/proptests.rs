//! Property-based tests for the assembled index: results are valid, bounded
//! and deterministic on arbitrary datasets and configurations, and the flat
//! storage stays equivalent to the table storage.

use bilevel_lsh::{
    BiLevelConfig, BiLevelIndex, FlatIndex, Partition, Probe, Quantizer, QueryOptions,
};
use proptest::prelude::*;
use rptree::SplitRule;
use vecstore::Dataset;

fn dataset() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 6), 8..80)
}

fn config() -> impl Strategy<Value = BiLevelConfig> {
    (
        1usize..4,     // l
        2usize..10,    // m
        0.5f32..80.0,  // w
        0usize..3,     // partition selector
        0usize..3,     // probe selector
        any::<bool>(), // quantizer
        any::<u64>(),  // seed
    )
        .prop_map(|(l, m, w, part, probe, e8, seed)| BiLevelConfig {
            l,
            m,
            width: bilevel_lsh::WidthMode::Fixed(w),
            partition: match part {
                0 => Partition::None,
                1 => Partition::RpTree { groups: 4, rule: SplitRule::Max },
                _ => Partition::KMeans { groups: 3 },
            },
            quantizer: if e8 { Quantizer::E8 } else { Quantizer::Zm },
            probe: match probe {
                0 => Probe::Home,
                1 => Probe::Multi(8),
                _ => Probe::Hierarchical { min_candidates: 4 },
            },
            table_pool: None,
            projection: bilevel_lsh::Projection::Dense,
            metric: bilevel_lsh::MetricKind::L2,
            family: bilevel_lsh::FamilyKind::PStable,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn query_results_are_valid(rows in dataset(), cfg in config(), k in 1usize..8) {
        let data = Dataset::from_rows(&rows);
        let index = BiLevelIndex::build(&data, &cfg);
        let queries = data.gather(&[0, rows.len() / 2]);
        let result = index.query_batch_opts(&queries, &QueryOptions::new(k));
        prop_assert_eq!(result.neighbors.len(), 2);
        for (hits, &cands) in result.neighbors.iter().zip(&result.candidates) {
            prop_assert!(hits.len() <= k);
            prop_assert!(hits.len() <= cands);
            prop_assert!(cands <= data.len());
            prop_assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
            let mut ids: Vec<usize> = hits.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), hits.len(), "duplicate result ids");
            prop_assert!(ids.iter().all(|&id| id < data.len()));
        }
    }

    #[test]
    fn querying_an_indexed_point_finds_itself(rows in dataset(), cfg in config()) {
        // A dataset point always collides with itself in every table, so it
        // must appear in its own result (distance 0, rank 1 modulo exact
        // duplicates).
        let data = Dataset::from_rows(&rows);
        let index = BiLevelIndex::build(&data, &cfg);
        let hits = index.query(data.row(3 % rows.len()), 1);
        prop_assert_eq!(hits.len(), 1);
        prop_assert!(hits[0].dist == 0.0, "self-query distance {}", hits[0].dist);
    }

    #[test]
    fn index_is_deterministic(rows in dataset(), cfg in config()) {
        let data = Dataset::from_rows(&rows);
        let queries = data.gather(&[1]);
        let a = BiLevelIndex::build(&data, &cfg).query_batch_opts(&queries, &QueryOptions::new(4));
        let b = BiLevelIndex::build(&data, &cfg).query_batch_opts(&queries, &QueryOptions::new(4));
        prop_assert_eq!(a.neighbors, b.neighbors);
        prop_assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn flat_equals_table_for_supported_probes(rows in dataset(), cfg in config()) {
        // FlatIndex supports Home and Multi only.
        let cfg = BiLevelConfig {
            probe: match cfg.probe {
                Probe::Hierarchical { .. } => Probe::Home,
                p => p,
            },
            ..cfg
        };
        let data = Dataset::from_rows(&rows);
        let queries = data.gather(&[0, rows.len() - 1]);
        let table = BiLevelIndex::build(&data, &cfg);
        let flat = FlatIndex::build(&data, &cfg);
        prop_assert_eq!(table.candidates_batch(&queries), flat.candidates_batch(&queries));
    }

    #[test]
    fn hierarchical_candidates_superset_of_home(rows in dataset(), seed in any::<u64>(), w in 1.0f32..40.0) {
        let data = Dataset::from_rows(&rows);
        let base = BiLevelConfig {
            probe: Probe::Home,
            ..BiLevelConfig::standard(w).seed(seed)
        };
        let hier = BiLevelConfig {
            probe: Probe::Hierarchical { min_candidates: data.len() },
            ..base.clone()
        };
        let queries = data.gather(&[0]);
        let home = BiLevelIndex::build(&data, &base).candidates_batch(&queries);
        let esc = BiLevelIndex::build(&data, &hier).candidates_batch(&queries);
        // Forcing the threshold to n makes escalation return every bucket
        // span — at least as many candidates as the home bucket.
        prop_assert!(esc[0].len() >= home[0].len());
    }
}
