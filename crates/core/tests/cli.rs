//! End-to-end tests of the `bilevel` command-line binary: build → stats →
//! query → exact, over a temporary `.fvecs` corpus.

use std::path::PathBuf;
use std::process::Command;
use vecstore::io::write_fvecs;
use vecstore::synth::{self, ClusteredSpec};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bilevel")
}

struct Fixture {
    dir: PathBuf,
    corpus: PathBuf,
    queries: PathBuf,
    index: PathBuf,
}

fn fixture(name: &str) -> Fixture {
    let all = synth::clustered(&ClusteredSpec::small(550), 83);
    let (data, queries) = all.split_at(500);
    let dir = std::env::temp_dir().join("bilevel_cli_test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.fvecs");
    let qpath = dir.join("queries.fvecs");
    write_fvecs(&corpus, &data).unwrap();
    write_fvecs(&qpath, &queries).unwrap();
    Fixture { index: dir.join("index.json"), dir, corpus, queries: qpath }
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin()).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn build_query_stats_roundtrip() {
    let f = fixture("roundtrip");
    let corpus = f.corpus.to_str().unwrap();
    let index = f.index.to_str().unwrap();
    let queries = f.queries.to_str().unwrap();

    let (_, err, ok) = run(&["build", corpus, index, "--w", "8", "--groups", "4", "--tables", "8"]);
    assert!(ok, "build failed: {err}");
    assert!(f.index.exists());

    let (out, err, ok) = run(&["query", corpus, index, queries, "--k", "5"]);
    assert!(ok, "query failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 50, "one line per query");
    // Each line: up to 5 id:distance pairs, ids within range, distances sorted.
    for line in &lines {
        let pairs: Vec<(usize, f32)> = line
            .split_whitespace()
            .map(|p| {
                let (id, d) = p.split_once(':').expect("id:dist");
                (id.parse().unwrap(), d.parse().unwrap())
            })
            .collect();
        assert!(pairs.len() <= 5);
        assert!(pairs.iter().all(|&(id, _)| id < 500));
        assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    let (out, err, ok) = run(&["stats", corpus, index]);
    assert!(ok, "stats failed: {err}");
    assert!(out.contains("\"num_vectors\": 500"), "stats json: {out}");
    assert!(out.contains("\"num_groups\": 4"));

    std::fs::remove_dir_all(&f.dir).ok();
}

#[test]
fn exact_subcommand_is_reference_quality() {
    let f = fixture("exact");
    let corpus = f.corpus.to_str().unwrap();
    let queries = f.queries.to_str().unwrap();
    let (out, err, ok) = run(&["exact", corpus, queries, "--k", "3"]);
    assert!(ok, "exact failed: {err}");
    assert_eq!(out.lines().count(), 50);
    std::fs::remove_dir_all(&f.dir).ok();
}

#[test]
fn wide_build_makes_cli_query_exact() {
    let f = fixture("wide");
    let corpus = f.corpus.to_str().unwrap();
    let index = f.index.to_str().unwrap();
    let queries = f.queries.to_str().unwrap();
    // Groups 1 + enormous W: the approximate query must equal exact search.
    let (_, err, ok) =
        run(&["build", corpus, index, "--w", "1000000", "--groups", "1", "--tables", "4"]);
    assert!(ok, "build failed: {err}");
    let (approx, _, ok1) = run(&["query", corpus, index, queries, "--k", "4"]);
    let (exact, _, ok2) = run(&["exact", corpus, queries, "--k", "4"]);
    assert!(ok1 && ok2);
    // Compare ids line by line (distances formatted identically).
    for (a, e) in approx.lines().zip(exact.lines()) {
        let ids = |s: &str| -> Vec<String> {
            s.split_whitespace().map(|p| p.split_once(':').unwrap().0.to_string()).collect()
        };
        assert_eq!(ids(a), ids(e));
    }
    std::fs::remove_dir_all(&f.dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, _, ok) = run(&["frobnicate"]);
    assert!(!ok);
    let (_, _, ok) = run(&["build", "/nonexistent.fvecs", "/tmp/x.json"]);
    assert!(!ok);
}
