//! Index diagnostics: structural statistics of a built [`BiLevelIndex`],
//! for capacity planning and for debugging partition/bucket balance.

use crate::index::BiLevelIndex;
use serde::Serialize;

/// Structural statistics of a built index.
#[derive(Debug, Clone, Serialize)]
pub struct IndexStats {
    /// Number of indexed vectors.
    pub num_vectors: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Level-1 group count.
    pub num_groups: usize,
    /// Vectors per group (from table 0 of each group).
    pub group_sizes: Vec<usize>,
    /// Bucket width per group.
    pub group_widths: Vec<f32>,
    /// Hash tables per group (`L`).
    pub tables_per_group: usize,
    /// Total non-empty buckets across all groups and tables.
    pub total_buckets: usize,
    /// Largest single bucket.
    pub max_bucket: usize,
    /// Mean bucket occupancy.
    pub mean_bucket: f64,
    /// Whether per-table hierarchies are present.
    pub has_hierarchies: bool,
}

impl IndexStats {
    /// Renders the stats as pretty-printed JSON (2-space indent, the same
    /// document `serde_json::to_string_pretty` produces for the derived
    /// `Serialize` impl), without requiring a working `serde_json` backend.
    pub fn to_json_pretty(&self) -> String {
        use crate::jsonio::{fmt_float, fmt_float32};
        fn array<T, F: Fn(&T) -> String>(items: &[T], fmt: F) -> String {
            if items.is_empty() {
                return "[]".to_string();
            }
            let body: Vec<String> = items.iter().map(|x| format!("    {}", fmt(x))).collect();
            format!("[\n{}\n  ]", body.join(",\n"))
        }
        format!(
            "{{\n  \"num_vectors\": {},\n  \"dim\": {},\n  \"num_groups\": {},\n  \
             \"group_sizes\": {},\n  \"group_widths\": {},\n  \"tables_per_group\": {},\n  \
             \"total_buckets\": {},\n  \"max_bucket\": {},\n  \"mean_bucket\": {},\n  \
             \"has_hierarchies\": {}\n}}",
            self.num_vectors,
            self.dim,
            self.num_groups,
            array(&self.group_sizes, |s| s.to_string()),
            array(&self.group_widths, |w| fmt_float32(*w)),
            self.tables_per_group,
            self.total_buckets,
            self.max_bucket,
            fmt_float(self.mean_bucket),
            self.has_hierarchies,
        )
    }

    /// Ratio of the largest to the smallest group — the level-1 balance
    /// indicator (1.0 is perfectly balanced).
    pub fn group_imbalance(&self) -> f64 {
        let max = self.group_sizes.iter().copied().max().unwrap_or(0);
        let min = self.group_sizes.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

impl BiLevelIndex<'_> {
    /// Computes structural statistics of the index.
    pub fn stats(&self) -> IndexStats {
        let mut group_sizes = Vec::with_capacity(self.tables.len());
        let mut total_buckets = 0usize;
        let mut max_bucket = 0usize;
        let mut total_entries = 0usize;
        let mut has_hierarchies = false;
        for per_group in &self.tables {
            if let Some(first) = per_group.first() {
                group_sizes.push(first.table.len());
            } else {
                group_sizes.push(0);
            }
            for gt in per_group {
                total_buckets += gt.table.num_buckets();
                max_bucket = max_bucket.max(gt.table.max_bucket_len());
                total_entries += gt.table.len();
                has_hierarchies |= gt.hierarchy.is_some();
            }
        }
        IndexStats {
            num_vectors: self.data().len(),
            dim: self.data().dim(),
            num_groups: self.tables.len(),
            group_sizes,
            group_widths: self.group_widths.clone(),
            tables_per_group: self.config().l,
            total_buckets,
            max_bucket,
            mean_bucket: if total_buckets == 0 {
                0.0
            } else {
                total_entries as f64 / total_buckets as f64
            },
            has_hierarchies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BiLevelConfig, Probe};
    use vecstore::synth::{self, ClusteredSpec};

    fn data() -> vecstore::Dataset {
        synth::clustered(&ClusteredSpec::small(500), 13)
    }

    #[test]
    fn stats_account_for_every_vector() {
        let data = data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(4.0));
        let stats = index.stats();
        assert_eq!(stats.num_vectors, 500);
        assert_eq!(stats.dim, 32);
        assert_eq!(stats.num_groups, 16);
        assert_eq!(stats.tables_per_group, 10);
        // Group sizes partition the dataset.
        assert_eq!(stats.group_sizes.iter().sum::<usize>(), 500);
        assert!(stats.total_buckets > 0);
        assert!(stats.max_bucket >= 1);
        assert!(stats.mean_bucket >= 1.0);
        assert!(!stats.has_hierarchies);
    }

    #[test]
    fn hierarchies_flagged_when_configured() {
        let data = data();
        let cfg =
            BiLevelConfig::paper_default(4.0).probe(Probe::Hierarchical { min_candidates: 4 });
        let index = BiLevelIndex::build(&data, &cfg);
        assert!(index.stats().has_hierarchies);
    }

    #[test]
    fn imbalance_of_single_group_is_one() {
        let data = data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(4.0));
        let stats = index.stats();
        assert_eq!(stats.num_groups, 1);
        assert!((stats.group_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pretty_json_has_serde_shape() {
        let data = data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(4.0));
        let text = index.stats().to_json_pretty();
        // The CLI's consumers grep for exactly this `"key": value` shape.
        assert!(text.contains("\"num_vectors\": 500"), "{text}");
        assert!(text.contains("\"num_groups\": 16"), "{text}");
        assert!(text.contains("\"group_widths\": [\n    4.0,"), "{text}");
        assert!(text.contains("\"has_hierarchies\": false"), "{text}");
        // And it must be valid JSON by our own parser.
        crate::jsonio::parse(&text).unwrap();
    }

    #[test]
    fn wider_buckets_mean_fewer_buckets() {
        let data = data();
        let narrow = BiLevelIndex::build(&data, &BiLevelConfig::standard(0.5)).stats();
        let wide = BiLevelIndex::build(&data, &BiLevelConfig::standard(500.0)).stats();
        assert!(wide.total_buckets < narrow.total_buckets);
        assert!(wide.max_bucket > narrow.max_bucket);
    }
}
