#![warn(missing_docs)]

//! # Bi-level LSH
//!
//! A from-scratch Rust implementation of *Bi-level Locality Sensitive
//! Hashing for k-Nearest Neighbor Computation* (Pan & Manocha, ICDE 2012).
//!
//! The index is a two-level scheme:
//!
//! 1. **Level 1** partitions the dataset into clusters with bounded aspect
//!    ratio using a random projection tree (or a K-means / Kd baseline).
//! 2. **Level 2** hashes each cluster into `L` locality-sensitive hash
//!    tables with per-cluster-tuned bucket widths, quantizing with either
//!    the `Z^M` integer lattice or the densest-packing E8 lattice, and
//!    optionally probing through a bucket hierarchy (Morton curve for
//!    `Z^M`, scaled-decode tree for E8) or a query-directed multi-probe
//!    sequence.
//!
//! # Quick start
//!
//! ```
//! use bilevel_lsh::{BiLevelConfig, BiLevelIndex};
//! use vecstore::synth::{self, ClusteredSpec};
//!
//! // A synthetic "image descriptor" corpus.
//! let corpus = synth::clustered(&ClusteredSpec::small(500), 7);
//! let (data, queries) = corpus.split_at(450);
//!
//! // Build the paper-default index (RP-tree + Z^M, L = 10, M = 8).
//! let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(2.0));
//!
//! // 10-NN for the first held-out query.
//! let hits = index.query(queries.row(0), 10);
//! assert!(hits.len() <= 10);
//! assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
//! ```

pub mod binio;
pub mod code;
pub mod compat;
pub mod config;
pub mod evaluate;
pub mod flat;
pub mod index;
pub mod interval;
pub(crate) mod jsonio;
pub mod ooc;
pub mod options;
pub mod persist;
pub mod shard;
pub mod stats;

/// The telemetry crate every pipeline stage reports into, re-exported so
/// downstream users can name recorders without a separate dependency.
pub use knn_telemetry as telemetry;

pub use code::{compress_code, BiLevelCode};
pub use config::{
    BiLevelConfig, FamilyKind, FamilyMetricError, MetricKind, Partition, Probe, Quantizer,
    WidthMode,
};
pub use evaluate::{evaluate_index, evaluate_runs, ground_truth};
pub use flat::FlatIndex;
pub use index::{
    BatchResult, BiLevelIndex, CompactionPolicy, CorpusTooLarge, Engine, InsertError, Txn,
    TxnSummary,
};
pub use interval::IntervalTable;
pub use ooc::{OocBuildError, OocFlatIndex};
pub use options::QueryOptions;
pub use persist::PersistError;
pub use shard::ShardedIndex;
pub use stats::IndexStats;

// Re-export the pieces user code needs to interpret results.
pub use knn_metrics::{QueryEval, SeriesPoint};
pub use lsh::Projection;
pub use vecstore::fault::{FaultKind, FaultPlan, FaultyDataset, RetryPolicy, RetryStats};
pub use vecstore::ooc::RowSource;
pub use vecstore::{Dataset, Neighbor, Tombstones};
