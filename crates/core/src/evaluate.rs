//! Evaluation harness glue: run an index over a query set against ground
//! truth and produce per-query [`QueryEval`] records — the inner loop of
//! every figure-reproduction binary.

use crate::index::BiLevelIndex;
use knn_metrics::{QueryEval, RunAggregate, SeriesPoint};
use vecstore::{knn_batch, Dataset, Neighbor, SquaredL2};

/// Exact ground truth for a query set (squared-L2 ranking, distances
/// reported as true L2 to match index output).
pub fn ground_truth(
    data: &Dataset,
    queries: &Dataset,
    k: usize,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    let mut truth = knn_batch(data, queries, k, &SquaredL2, threads);
    for hits in &mut truth {
        for n in hits.iter_mut() {
            n.dist = n.dist.sqrt();
        }
    }
    truth
}

/// Evaluates one built index against precomputed ground truth.
pub fn evaluate_index(
    index: &BiLevelIndex,
    queries: &Dataset,
    truth: &[Vec<Neighbor>],
    k: usize,
) -> Vec<QueryEval> {
    assert_eq!(queries.len(), truth.len(), "one ground-truth row per query");
    let result = index.query_batch_opts(queries, &crate::QueryOptions::new(k));
    result
        .neighbors
        .iter()
        .zip(&result.candidates)
        .zip(truth)
        .map(|((approx, &cands), exact)| {
            QueryEval::compute(exact, approx, cands, index.data().len())
        })
        .collect()
}

/// Runs `runs` independent evaluations (fresh projection seeds) of one
/// configuration and reduces them to a curve point for width `w`.
///
/// `build` receives the run index and must return an index built with a
/// run-specific seed; this is how the harness models the paper's
/// "10 executions with different random projections".
pub fn evaluate_runs<'a, F>(
    build: F,
    queries: &Dataset,
    truth: &[Vec<Neighbor>],
    k: usize,
    runs: usize,
    w: f64,
) -> SeriesPoint
where
    F: Fn(usize) -> BiLevelIndex<'a>,
{
    assert!(runs > 0, "need at least one run");
    let evals: Vec<Vec<QueryEval>> =
        (0..runs).map(|r| evaluate_index(&build(r), queries, truth, k)).collect();
    RunAggregate::new(evals).series_point(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BiLevelConfig;
    use vecstore::synth::{self, ClusteredSpec};

    fn small_data() -> (Dataset, Dataset) {
        synth::clustered(&ClusteredSpec::small(300), 23).split_at(250)
    }

    #[test]
    fn exact_truth_scores_perfectly_against_itself() {
        let (data, queries) = small_data();
        let truth = ground_truth(&data, &queries, 5, 1);
        // A maximally wide index returns the exact neighbors.
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(1e6));
        let evals = evaluate_index(&index, &queries, &truth, 5);
        let mean: f64 = evals.iter().map(|e| e.recall).sum::<f64>() / evals.len() as f64;
        assert!(mean > 0.999, "recall {mean}");
        assert!(evals.iter().all(|e| e.error_ratio > 0.999));
    }

    #[test]
    fn evaluate_runs_aggregates_variance() {
        let (data, queries) = small_data();
        let truth = ground_truth(&data, &queries, 5, 1);
        let point = evaluate_runs(
            |r| BiLevelIndex::build(&data, &BiLevelConfig::standard(1.0).seed(100 + r as u64)),
            &queries,
            &truth,
            5,
            3,
            1.0,
        );
        assert!(point.recall >= 0.0 && point.recall <= 1.0);
        assert!(point.selectivity >= 0.0 && point.selectivity <= 1.0);
        assert!(point.recall_std_proj >= 0.0);
        assert_eq!(point.w, 1.0);
    }

    #[test]
    fn ground_truth_distances_are_l2() {
        let data = Dataset::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        let queries = Dataset::from_rows(&[vec![0.0, 0.0]]);
        let truth = ground_truth(&data, &queries, 2, 1);
        assert_eq!(truth[0][1].dist, 5.0);
    }
}
