//! Bucket-interval storage for the flat (GPU-style) layouts: compressed
//! code → `(start, len)` span over the sorted linear id array.
//!
//! The spans are kept as explicit 64-bit pairs in a side table, with the
//! cuckoo map storing only the span *index*. The previous layout packed
//! `(start << 32) | end` into the cuckoo payload, which silently corrupts
//! every interval once the linear array reaches `2^32` entries (`n × L`
//! pairs — well within reach of the out-of-core datasets the paper's
//! Section VII targets). With explicit spans there is no width to overflow:
//! positions stay `u64` end to end, and [`IntervalTable::from_runs`] lets a
//! test drive the boundary with synthetic run lengths instead of a
//! 2^32-row dataset.

use cuckoo::{CuckooError, CuckooParts, CuckooTable, InvalidParts};

/// Compressed code → `(start, len)` interval map.
pub struct IntervalTable {
    /// Bucket spans as `(start, len)`, in insertion (sorted-key) order.
    spans: Vec<(u64, u64)>,
    /// Compressed code → index into `spans`.
    lookup: CuckooTable,
}

/// Plain-data form of an [`IntervalTable`] for persistence.
pub(crate) struct IntervalParts {
    pub(crate) spans: Vec<(u64, u64)>,
    pub(crate) lookup: CuckooParts,
}

impl IntervalTable {
    /// Builds the interval map from `(key, id)` pairs already sorted by key:
    /// each maximal run of equal keys becomes one `(start, len)` span.
    ///
    /// # Errors
    ///
    /// Propagates cuckoo construction failure.
    ///
    /// # Panics
    ///
    /// Panics if `keyed` is not sorted by key.
    pub fn from_sorted_entries(keyed: &[(u64, u32)], seed: u64) -> Result<Self, CuckooError> {
        assert!(keyed.windows(2).all(|w| w[0].0 <= w[1].0), "entries must be sorted by key");
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut i = 0usize;
        while i < keyed.len() {
            let key = keyed[i].0;
            let mut j = i + 1;
            while j < keyed.len() && keyed[j].0 == key {
                j += 1;
            }
            runs.push((key, (j - i) as u64));
            i = j;
        }
        Self::from_runs(runs, seed)
    }

    /// Builds the interval map from `(key, len)` runs in key order, with
    /// spans accumulated in `u64` — the width-injection point: tests hand
    /// this synthetic run lengths to place spans across any boundary (e.g.
    /// past `2^32`) without materializing a linear array of that size.
    ///
    /// # Errors
    ///
    /// Propagates cuckoo construction failure.
    ///
    /// # Panics
    ///
    /// Panics on duplicate keys (via the cuckoo build), a zero-length run,
    /// or a cumulative length overflowing `u64`.
    pub fn from_runs<I>(runs: I, seed: u64) -> Result<Self, CuckooError>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut spans = Vec::new();
        let mut items: Vec<(u64, u64)> = Vec::new();
        let mut start = 0u64;
        for (key, len) in runs {
            assert!(len > 0, "zero-length bucket run");
            items.push((key, spans.len() as u64));
            spans.push((start, len));
            start = start.checked_add(len).expect("cumulative bucket length overflows u64");
        }
        let lookup = CuckooTable::build(items, seed)?;
        Ok(Self { spans, lookup })
    }

    /// The `(start, len)` span of `key`'s bucket, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<(u64, u64)> {
        self.lookup.get(key).map(|idx| self.spans[idx as usize])
    }

    /// Number of distinct buckets.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the table holds no buckets.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total number of linear-array entries covered by all spans.
    pub fn covered(&self) -> u64 {
        self.spans.iter().map(|&(_, len)| len).sum()
    }

    /// Exports the table for persistence.
    pub(crate) fn to_parts(&self) -> IntervalParts {
        IntervalParts { spans: self.spans.clone(), lookup: self.lookup.to_parts() }
    }

    /// Reassembles a table from persisted parts, validating that every
    /// lookup value indexes a span and that spans tile `[0, covered)`
    /// contiguously (the layout `from_runs` produces).
    pub(crate) fn from_parts(parts: IntervalParts) -> Result<Self, InvalidParts> {
        let lookup = CuckooTable::from_parts(parts.lookup)?;
        if lookup.len() != parts.spans.len() {
            return Err(InvalidParts(format!(
                "{} lookup entries for {} spans",
                lookup.len(),
                parts.spans.len()
            )));
        }
        let mut expect_start = 0u64;
        for (i, &(start, len)) in parts.spans.iter().enumerate() {
            if start != expect_start || len == 0 {
                return Err(InvalidParts(format!("span {i} ({start}, {len}) breaks the tiling")));
            }
            expect_start = start
                .checked_add(len)
                .ok_or_else(|| InvalidParts("span end overflows u64".into()))?;
        }
        let table = Self { spans: parts.spans, lookup };
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_entries_produce_contiguous_spans() {
        let keyed: Vec<(u64, u32)> = vec![(3, 10), (3, 11), (3, 12), (7, 20), (9, 30), (9, 31)];
        let t = IntervalTable::from_sorted_entries(&keyed, 1).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(3), Some((0, 3)));
        assert_eq!(t.get(7), Some((3, 1)));
        assert_eq!(t.get(9), Some((4, 2)));
        assert_eq!(t.get(4), None);
        assert_eq!(t.covered(), keyed.len() as u64);
    }

    #[test]
    fn empty_table_answers_nothing() {
        let t = IntervalTable::from_sorted_entries(&[], 1).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
    }

    /// The tentpole boundary contract: spans crossing and landing beyond
    /// `2^32` survive exactly. Under the old packed-u64 layout the first
    /// span past the boundary would have folded its start into the end
    /// field; here the injected run lengths prove positions stay 64-bit
    /// without allocating a 2^32-entry array.
    #[test]
    fn spans_beyond_2_to_32_are_exact() {
        const GIB4: u64 = 1 << 32;
        // Three runs: one ending just below the boundary, one straddling
        // it, one far beyond it.
        let runs = vec![(100u64, GIB4 - 5), (200u64, 10), (300u64, GIB4)];
        let t = IntervalTable::from_runs(runs, 7).unwrap();
        assert_eq!(t.get(100), Some((0, GIB4 - 5)));
        assert_eq!(t.get(200), Some((GIB4 - 5, 10)));
        assert_eq!(t.get(300), Some((GIB4 + 5, GIB4)));
        assert_eq!(t.covered(), 2 * GIB4 + 5);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn cumulative_overflow_is_caught() {
        let _ = IntervalTable::from_runs(vec![(1u64, u64::MAX), (2u64, 2)], 1);
    }

    #[test]
    #[should_panic(expected = "sorted by key")]
    fn unsorted_entries_rejected() {
        let _ = IntervalTable::from_sorted_entries(&[(5, 0), (3, 1)], 1);
    }

    #[test]
    fn parts_roundtrip_and_tamper_rejection() {
        let keyed: Vec<(u64, u32)> =
            (0..500u64).flat_map(|k| [(k * 3, 0u32), (k * 3, 1)]).collect();
        let t = IntervalTable::from_sorted_entries(&keyed, 3).unwrap();
        let rt = IntervalTable::from_parts(t.to_parts()).unwrap();
        for k in (0..500u64).map(|k| k * 3) {
            assert_eq!(rt.get(k), t.get(k));
        }

        let mut bad = t.to_parts();
        bad.spans[1].0 += 1; // breaks the contiguous tiling
        assert!(IntervalTable::from_parts(bad).is_err());

        let mut bad = t.to_parts();
        bad.spans.pop(); // span/lookup count mismatch
        assert!(IntervalTable::from_parts(bad).is_err());
    }
}
