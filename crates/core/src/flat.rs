//! Flat GPU-style index storage (Section V-A).
//!
//! Instead of one hash map per `(group, table)` pair, the GPU layout keeps
//! *one* sorted linear array of all item ids, ordered by their compressed
//! Bi-level code across all `L` tables, plus a cuckoo hash table mapping
//! each compressed code to its `(start, end)` interval — "we store all the
//! Bi-level LSH codes in one hash table, because the group index can
//! distinguish codes from different groups". This module is that layout on
//! CPU, built on the `cuckoo` crate.

use crate::code::compress_code;
use crate::config::{BiLevelConfig, Partition, Probe};
use crate::index::{probe_sequence, quantize};
use crate::interval::IntervalTable;
use lsh::{HashFamily, ProjectionScratch};
use rptree::{KMeans, KdPartitioner, Partitioner, RpTree, RpTreeConfig, SinglePartition};
use shortlist::parallel_fill_with;
use vecstore::Dataset;

/// Flat-array Bi-level index: sorted id array + cuckoo interval table.
///
/// Supports `Probe::Home` and `Probe::Multi`; hierarchical probing needs
/// the per-table structures of [`crate::BiLevelIndex`].
pub struct FlatIndex<'a> {
    data: &'a Dataset,
    config: BiLevelConfig,
    partitioner: Box<dyn Partitioner + Send + Sync + 'a>,
    /// Per-table projections, shared by every group (flat layout folds the
    /// group into the key instead of the width — widths here are global).
    families: Vec<HashFamily>,
    /// All item ids sorted by (table, compressed code).
    linear: Vec<u32>,
    /// Compressed code → `(start, len)` interval into `linear`.
    intervals: IntervalTable,
}

impl<'a> FlatIndex<'a> {
    /// Builds the flat index. `width` must be `WidthMode::Fixed` (the GPU
    /// layout in the paper uses a single table; per-group widths would
    /// change code semantics per group, which the compressed key cannot
    /// express).
    ///
    /// # Panics
    ///
    /// Panics on empty data, invalid config, non-fixed width mode, or
    /// hierarchical probing.
    pub fn build(data: &'a Dataset, config: &BiLevelConfig) -> Self {
        config.validate();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let crate::config::WidthMode::Fixed(w) = config.width else {
            panic!("FlatIndex requires WidthMode::Fixed");
        };
        assert!(
            !matches!(config.probe, Probe::Hierarchical { .. }),
            "FlatIndex does not support hierarchical probing"
        );
        crate::index::check_id_space(data.len()).unwrap_or_else(|e| panic!("{e}"));
        let config = config.clone();

        let partitioner: Box<dyn Partitioner + Send + Sync> = match config.partition {
            Partition::None => Box::new(SinglePartition),
            Partition::RpTree { groups, rule } => {
                let cfg = RpTreeConfig::with_leaves(groups).rule(rule).seed(config.seed ^ 0xA11);
                Box::new(RpTree::fit(data, &cfg).0)
            }
            Partition::KMeans { groups } => {
                Box::new(KMeans::fit(data, groups, 50, config.seed ^ 0xB22).0)
            }
            Partition::Kd { groups } => Box::new(KdPartitioner::fit(data, groups).0),
        };

        let families: Vec<HashFamily> = (0..config.l)
            .map(|l| {
                HashFamily::sample_with(
                    data.dim(),
                    config.m,
                    1.0,
                    config.seed ^ (0x1000 + l as u64),
                    config.projection,
                )
                .with_w(w)
            })
            .collect();

        // Compressed key of every (item, table) pair.
        let mut raw = vec![0.0f32; config.m];
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(data.len() * config.l);
        for (i, row) in data.iter().enumerate() {
            let g = partitioner.assign(row) as u32;
            let id = u32::try_from(i).expect("row count checked against u32 id space");
            for (l, family) in families.iter().enumerate() {
                family.project_into(row, &mut raw);
                let code = quantize(&raw, config.quantizer);
                keyed.push((compress_code(l, g, &code), id));
            }
        }
        // Sort by key: buckets become contiguous intervals.
        keyed.sort_unstable();
        let linear: Vec<u32> = keyed.iter().map(|&(_, id)| id).collect();
        let intervals = IntervalTable::from_sorted_entries(&keyed, config.seed ^ 0xC0C0)
            .expect("cuckoo build failed");

        Self { data, config, partitioner, families, linear, intervals }
    }

    /// Length of the linear array (`n · L`).
    pub fn linear_len(&self) -> usize {
        self.linear.len()
    }

    /// Number of distinct buckets across all tables.
    pub fn num_buckets(&self) -> usize {
        self.intervals.len()
    }

    /// Deduplicated short-list candidates for one query.
    pub fn candidates(&self, v: &[f32]) -> Vec<u32> {
        self.candidates_with(v, &mut ProjectionScratch::new(self.config.m))
    }

    /// Scratch-reusing probe, the flat-layout analog of the table index's
    /// worker routine.
    fn candidates_with(&self, v: &[f32], scratch: &mut ProjectionScratch) -> Vec<u32> {
        assert_eq!(v.len(), self.data.dim(), "query dimension mismatch");
        let g = self.partitioner.assign(v) as u32;
        let mut out = Vec::new();
        for (l, family) in self.families.iter().enumerate() {
            let raw = scratch.project(family, v);
            let home = quantize(raw, self.config.quantizer);
            let probes = match self.config.probe {
                Probe::Home => vec![home],
                Probe::Multi(t) => probe_sequence(raw, &home, t, self.config.quantizer),
                Probe::Hierarchical { .. } => unreachable!("rejected at build"),
            };
            for code in probes {
                if let Some((start, len)) = self.intervals.get(compress_code(l, g, &code)) {
                    out.extend_from_slice(&self.linear[start as usize..(start + len) as usize]);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate sets for a batch of queries, on all available cores.
    pub fn candidates_batch(&self, queries: &Dataset) -> Vec<Vec<u32>> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.candidates_batch_with(queries, threads)
    }

    /// Candidate generation on `threads` workers; identical output to the
    /// serial path (per-query probes are independent).
    pub fn candidates_batch_with(&self, queries: &Dataset, threads: usize) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        parallel_fill_with(
            &mut out,
            threads,
            || ProjectionScratch::new(self.config.m),
            |scratch, q, slot| *slot = self.candidates_with(queries.row(q), scratch),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Quantizer;
    use crate::index::BiLevelIndex;
    use vecstore::synth::{self, ClusteredSpec};

    fn small_data() -> (Dataset, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(400), 17);
        all.split_at(350)
    }

    #[test]
    fn flat_matches_table_index_candidates() {
        let (data, queries) = small_data();
        for quantizer in [Quantizer::Zm, Quantizer::E8] {
            let cfg = BiLevelConfig::paper_default(2.0).quantizer(quantizer);
            let table = BiLevelIndex::build(&data, &cfg);
            let flat = FlatIndex::build(&data, &cfg);
            let a = table.candidates_batch(&queries);
            let b = flat.candidates_batch(&queries);
            assert_eq!(a, b, "quantizer {quantizer:?}");
        }
    }

    #[test]
    fn flat_matches_table_index_with_multiprobe() {
        let (data, queries) = small_data();
        let cfg = BiLevelConfig::standard(1.0).probe(Probe::Multi(16));
        let table = BiLevelIndex::build(&data, &cfg);
        let flat = FlatIndex::build(&data, &cfg);
        assert_eq!(table.candidates_batch(&queries), flat.candidates_batch(&queries));
    }

    #[test]
    fn flat_parallel_candidates_match_serial() {
        let (data, queries) = small_data();
        let cfg = BiLevelConfig::standard(2.0).probe(Probe::Multi(8));
        let flat = FlatIndex::build(&data, &cfg);
        let serial = flat.candidates_batch_with(&queries, 1);
        assert_eq!(serial, flat.candidates_batch_with(&queries, 4));
    }

    #[test]
    fn linear_array_has_n_times_l_entries() {
        let (data, _) = small_data();
        let cfg = BiLevelConfig::paper_default(2.0);
        let flat = FlatIndex::build(&data, &cfg);
        assert_eq!(flat.linear_len(), data.len() * cfg.l);
        assert!(flat.num_buckets() > 0);
    }

    #[test]
    #[should_panic(expected = "hierarchical")]
    fn hierarchical_probe_rejected() {
        let (data, _) = small_data();
        let cfg =
            BiLevelConfig::paper_default(2.0).probe(Probe::Hierarchical { min_candidates: 4 });
        let _ = FlatIndex::build(&data, &cfg);
    }

    #[test]
    #[should_panic(expected = "WidthMode::Fixed")]
    fn non_fixed_width_rejected() {
        let (data, _) = small_data();
        let mut cfg = BiLevelConfig::paper_default(2.0);
        cfg.width = crate::config::WidthMode::Scaled { base: 1.0, k: 5 };
        let _ = FlatIndex::build(&data, &cfg);
    }
}
