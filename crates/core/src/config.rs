//! Configuration of a Bi-level LSH index.
//!
//! Every method variant the paper evaluates (Figures 5–13) is one point in
//! this configuration space:
//!
//! * standard LSH            = `Partition::None` + `Probe::Home`
//! * multi-probed LSH        = `Partition::None` + `Probe::Multi(t)`
//! * hierarchical LSH        = `Partition::None` + `Probe::Hierarchical`
//! * Bi-level LSH            = `Partition::RpTree` + `Probe::Home`
//! * multi-probed Bi-level   = `Partition::RpTree` + `Probe::Multi(t)`
//! * hierarchical Bi-level   = `Partition::RpTree` + `Probe::Hierarchical`
//!
//! each with either the `Z^M` or the E8 quantizer.

use lsh::Projection;
use rptree::SplitRule;
use serde::{Deserialize, Serialize};

/// Level-1 partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// No partitioning — degenerates to standard (single-level) LSH.
    None,
    /// Random projection tree with `groups` leaves.
    RpTree {
        /// Number of leaf groups.
        groups: usize,
        /// Split rule (the paper prefers `Mean`).
        rule: SplitRule,
    },
    /// K-means baseline (Figure 13c).
    KMeans {
        /// Number of clusters.
        groups: usize,
    },
    /// Kd-style axis-median baseline.
    Kd {
        /// Number of cells.
        groups: usize,
    },
}

impl Partition {
    /// Requested group count (1 for `None`).
    pub fn groups(&self) -> usize {
        match *self {
            Partition::None => 1,
            Partition::RpTree { groups, .. }
            | Partition::KMeans { groups }
            | Partition::Kd { groups } => groups,
        }
    }
}

/// Level-2 space quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantizer {
    /// Integer lattice `Z^M` (floor quantization).
    Zm,
    /// E8 lattice blocks (`⌈M/8⌉` concatenated decoders).
    E8,
}

/// Bucket-probing strategy at query time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Probe {
    /// Only the bucket containing the query (standard LSH).
    Home,
    /// Query-directed multi-probe with `t` extra probes per table
    /// (perturbation sets for `Z^M`, nearest lattice roots for E8).
    Multi(usize),
    /// Hierarchical escalation: queries whose candidate sets fall below a
    /// threshold re-probe coarser hierarchy levels. In batch queries the
    /// threshold defaults to the batch median (the paper's rule); a fixed
    /// floor is used for single queries. The escalation pass runs on the
    /// same worker pool as the base probe — see
    /// [`Engine`](crate::Engine) — and stays deterministic at any thread
    /// count.
    Hierarchical {
        /// Fixed candidate floor used when no batch median is available.
        min_candidates: usize,
    },
}

impl Probe {
    /// The degradation ladder for this probe mode: successively cheaper
    /// probe configurations, starting at full budget and ending at the
    /// cheapest rung. A serving layer walks the ladder when a request's
    /// deadline cannot afford the full budget (the `serve` crate's
    /// deadline-aware degradation).
    ///
    /// * `Home` has nothing to shed: the ladder is `[Home]`.
    /// * `Multi(t)` halves the extra-probe budget down to one, then falls
    ///   back to the home bucket: `[Multi(t), Multi(t/2), .., Multi(1), Home]`.
    /// * `Hierarchical { min_candidates }` halves the escalation floor —
    ///   each rung escalates less aggressively — then drops escalation
    ///   entirely: `[Hierarchical(f), Hierarchical(f/2), .., Home]`.
    pub fn ladder(&self) -> Vec<Probe> {
        let mut rungs = Vec::new();
        match *self {
            Probe::Home => rungs.push(Probe::Home),
            Probe::Multi(t) => {
                let mut t = t;
                while t > 0 {
                    rungs.push(Probe::Multi(t));
                    t /= 2;
                }
                rungs.push(Probe::Home);
            }
            Probe::Hierarchical { min_candidates } => {
                let mut floor = min_candidates;
                while floor > 0 {
                    rungs.push(Probe::Hierarchical { min_candidates: floor });
                    floor /= 2;
                }
                rungs.push(Probe::Home);
            }
        }
        rungs
    }
}

/// How the bucket width `W` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WidthMode {
    /// One fixed `W` for every group (what the harness sweeps).
    Fixed(f32),
    /// `base` scaled per group by the ratio of the group's k-NN distance to
    /// the global one — the per-cluster adaptation of Section IV-B run in a
    /// sweepable form.
    Scaled {
        /// Baseline width, scaled per group.
        base: f32,
        /// Neighborhood size the distance profiles are fitted for.
        k: usize,
    },
    /// Fully automatic per-group tuning to a recall target (Dong et al.).
    Tuned {
        /// Modeled recall target in `(0, 1)`.
        target_recall: f64,
        /// Neighborhood size the distance profiles are fitted for.
        k: usize,
    },
}

/// Full index configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiLevelConfig {
    /// Number of hash tables `L`.
    pub l: usize,
    /// Hash code dimension `M`.
    pub m: usize,
    /// Bucket width selection.
    pub width: WidthMode,
    /// Level-1 partitioning.
    pub partition: Partition,
    /// Level-2 quantizer.
    pub quantizer: Quantizer,
    /// Probing strategy.
    pub probe: Probe,
    /// Query-adaptive table pool (Jégou et al., the paper's reference
    /// \[12\]): when `Some(pool)` with `pool > l`, each group builds `pool`
    /// hash tables and every query probes only the `l` tables in which it
    /// sits most centrally. `None` (default) probes a fixed set of `l`.
    #[serde(default)]
    pub table_pool: Option<usize>,
    /// How level-2 projection vectors are drawn. `Dense` (default) is the
    /// paper's i.i.d. Gaussian matrix; `Sparse { nnz }` samples `nnz`
    /// coordinates per hash function (Li–Hastie–Church very sparse random
    /// projections), cutting hashing cost from `O(d·m)` toward `O(nnz·m)`.
    #[serde(default)]
    pub projection: Projection,
    /// Master RNG seed (projections, tree directions, table seeds).
    pub seed: u64,
}

impl BiLevelConfig {
    /// The paper's defaults: `L = 10`, `M = 8`, 16 RP-tree (mean rule)
    /// groups, `Z^M` quantizer, home-bucket probing.
    pub fn paper_default(w: f32) -> Self {
        Self {
            l: 10,
            m: 8,
            width: WidthMode::Fixed(w),
            partition: Partition::RpTree { groups: 16, rule: SplitRule::Mean },
            quantizer: Quantizer::Zm,
            probe: Probe::Home,
            table_pool: None,
            projection: Projection::Dense,
            seed: 0x0b11_e7e1,
        }
    }

    /// Standard-LSH baseline with the same `L`, `M`, `W`.
    pub fn standard(w: f32) -> Self {
        Self { partition: Partition::None, ..Self::paper_default(w) }
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style table-count override.
    pub fn tables(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Builder-style probe override.
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Builder-style quantizer override.
    pub fn quantizer(mut self, quantizer: Quantizer) -> Self {
        self.quantizer = quantizer;
        self
    }

    /// Builder-style query-adaptive pool override (see
    /// [`BiLevelConfig::table_pool`]).
    pub fn table_pool(mut self, pool: usize) -> Self {
        self.table_pool = Some(pool);
        self
    }

    /// Builder-style projection override (see [`BiLevelConfig::projection`]).
    pub fn projection(mut self, projection: Projection) -> Self {
        self.projection = projection;
        self
    }

    /// Serializes to a JSON document with the same shape `serde_json`
    /// produces for the derived `Serialize` impl (externally tagged enums,
    /// `null` for an absent table pool), without requiring a working
    /// `serde_json` backend.
    pub fn to_json(&self) -> String {
        use crate::jsonio::{fmt_float, fmt_float32};
        let width = match self.width {
            WidthMode::Fixed(w) => format!("{{\"Fixed\":{}}}", fmt_float32(w)),
            WidthMode::Scaled { base, k } => {
                format!("{{\"Scaled\":{{\"base\":{},\"k\":{k}}}}}", fmt_float32(base))
            }
            WidthMode::Tuned { target_recall, k } => {
                format!(
                    "{{\"Tuned\":{{\"target_recall\":{},\"k\":{k}}}}}",
                    fmt_float(target_recall)
                )
            }
        };
        let partition = match self.partition {
            Partition::None => "\"None\"".to_string(),
            Partition::RpTree { groups, rule } => {
                let rule = match rule {
                    SplitRule::Max => "Max",
                    SplitRule::Mean => "Mean",
                };
                format!("{{\"RpTree\":{{\"groups\":{groups},\"rule\":\"{rule}\"}}}}")
            }
            Partition::KMeans { groups } => format!("{{\"KMeans\":{{\"groups\":{groups}}}}}"),
            Partition::Kd { groups } => format!("{{\"Kd\":{{\"groups\":{groups}}}}}"),
        };
        let quantizer = match self.quantizer {
            Quantizer::Zm => "\"Zm\"",
            Quantizer::E8 => "\"E8\"",
        };
        let probe = match self.probe {
            Probe::Home => "\"Home\"".to_string(),
            Probe::Multi(t) => format!("{{\"Multi\":{t}}}"),
            Probe::Hierarchical { min_candidates } => {
                format!("{{\"Hierarchical\":{{\"min_candidates\":{min_candidates}}}}}")
            }
        };
        let table_pool = match self.table_pool {
            Some(pool) => pool.to_string(),
            None => "null".to_string(),
        };
        let projection = match self.projection {
            Projection::Dense => "\"Dense\"".to_string(),
            Projection::Sparse { nnz } => format!("{{\"Sparse\":{{\"nnz\":{nnz}}}}}"),
        };
        format!(
            "{{\"l\":{},\"m\":{},\"width\":{width},\"partition\":{partition},\
             \"quantizer\":{quantizer},\"probe\":{probe},\"table_pool\":{table_pool},\
             \"projection\":{projection},\"seed\":{}}}",
            self.l, self.m, self.seed
        )
    }

    /// Deserializes a config from the JSON shape [`Self::to_json`] (and the
    /// derived serde impl) produce. A missing or `null` `table_pool`
    /// defaults to `None`, matching the `#[serde(default)]` attribute.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(s: &str) -> Result<Self, String> {
        use crate::jsonio::{parse, Value};
        let doc = parse(s)?;
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field `{key}`"));
        let usize_field = |key: &str| -> Result<usize, String> {
            field(key)?
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
        };
        // A unit enum variant arrives as a bare string, a payload variant as
        // a single-key object — serde's external tagging.
        let variant = |v: &Value| -> Result<(String, Option<Value>), String> {
            match v {
                Value::Str(name) => Ok((name.clone(), None)),
                Value::Obj(fields) if fields.len() == 1 => {
                    Ok((fields[0].0.clone(), Some(fields[0].1.clone())))
                }
                _ => Err("expected an enum variant (string or single-key object)".into()),
            }
        };
        let inner_usize = |v: &Value, key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .map(|x| x as usize)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };

        let width = {
            let (name, payload) = variant(field("width")?)?;
            let payload = payload.ok_or("width variant needs a payload")?;
            match name.as_str() {
                "Fixed" => {
                    WidthMode::Fixed(payload.as_f64().ok_or("Fixed width must be a number")? as f32)
                }
                "Scaled" => WidthMode::Scaled {
                    base: payload
                        .get("base")
                        .and_then(Value::as_f64)
                        .ok_or("missing number field `base`")? as f32,
                    k: inner_usize(&payload, "k")?,
                },
                "Tuned" => WidthMode::Tuned {
                    target_recall: payload
                        .get("target_recall")
                        .and_then(Value::as_f64)
                        .ok_or("missing number field `target_recall`")?,
                    k: inner_usize(&payload, "k")?,
                },
                other => return Err(format!("unknown width mode `{other}`")),
            }
        };
        let partition = {
            let (name, payload) = variant(field("partition")?)?;
            match (name.as_str(), payload) {
                ("None", None) => Partition::None,
                ("RpTree", Some(p)) => Partition::RpTree {
                    groups: inner_usize(&p, "groups")?,
                    rule: match p.get("rule").and_then(Value::as_str) {
                        Some("Max") => SplitRule::Max,
                        Some("Mean") => SplitRule::Mean,
                        other => return Err(format!("unknown split rule {other:?}")),
                    },
                },
                ("KMeans", Some(p)) => Partition::KMeans { groups: inner_usize(&p, "groups")? },
                ("Kd", Some(p)) => Partition::Kd { groups: inner_usize(&p, "groups")? },
                (other, _) => return Err(format!("unknown partition `{other}`")),
            }
        };
        let quantizer = match field("quantizer")?.as_str() {
            Some("Zm") => Quantizer::Zm,
            Some("E8") => Quantizer::E8,
            other => return Err(format!("unknown quantizer {other:?}")),
        };
        let probe = {
            let (name, payload) = variant(field("probe")?)?;
            match (name.as_str(), payload) {
                ("Home", None) => Probe::Home,
                ("Multi", Some(p)) => {
                    Probe::Multi(p.as_u64().ok_or("Multi probe count must be an integer")? as usize)
                }
                ("Hierarchical", Some(p)) => {
                    Probe::Hierarchical { min_candidates: inner_usize(&p, "min_candidates")? }
                }
                (other, _) => return Err(format!("unknown probe `{other}`")),
            }
        };
        let table_pool = match doc.get("table_pool") {
            None | Some(Value::Null) => None,
            Some(v) => {
                Some(v.as_u64().ok_or("field `table_pool` must be an integer or null")? as usize)
            }
        };
        // Absent in documents written before the field existed — default to
        // the dense matrix those indexes were built with.
        let projection = match doc.get("projection") {
            None => Projection::Dense,
            Some(v) => {
                let (name, payload) = variant(v)?;
                match (name.as_str(), payload) {
                    ("Dense", None) => Projection::Dense,
                    ("Sparse", Some(p)) => Projection::Sparse { nnz: inner_usize(&p, "nnz")? },
                    (other, _) => return Err(format!("unknown projection `{other}`")),
                }
            }
        };
        Ok(Self {
            l: usize_field("l")?,
            m: usize_field("m")?,
            width,
            partition,
            quantizer,
            probe,
            table_pool,
            projection,
            seed: field("seed")?.as_u64().ok_or("field `seed` must be a u64")?,
        })
    }

    /// Validates invariants; called by the index builder.
    ///
    /// # Panics
    ///
    /// Panics on `l == 0`, `m == 0`, non-positive fixed width, a zero group
    /// count, or an out-of-range recall target.
    pub fn validate(&self) {
        assert!(self.l > 0, "need at least one hash table");
        assert!(self.m > 0, "hash dimension must be positive");
        assert!(self.partition.groups() > 0, "need at least one group");
        if let Some(pool) = self.table_pool {
            assert!(pool > self.l, "table pool must exceed l to be adaptive");
        }
        if let Projection::Sparse { nnz } = self.projection {
            assert!(nnz > 0, "sparse projection nnz must be positive");
        }
        match self.width {
            WidthMode::Fixed(w) => assert!(w > 0.0 && w.is_finite(), "fixed W must be positive"),
            WidthMode::Scaled { base, k } => {
                assert!(base > 0.0 && base.is_finite(), "base W must be positive");
                assert!(k > 0, "profile k must be positive");
            }
            WidthMode::Tuned { target_recall, k } => {
                assert!(
                    target_recall > 0.0 && target_recall < 1.0,
                    "recall target must be in (0, 1)"
                );
                assert!(k > 0, "profile k must be positive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vi() {
        let c = BiLevelConfig::paper_default(4.0);
        assert_eq!(c.l, 10);
        assert_eq!(c.m, 8);
        assert_eq!(c.partition.groups(), 16);
        assert_eq!(c.quantizer, Quantizer::Zm);
        c.validate();
    }

    #[test]
    fn standard_is_single_group() {
        let c = BiLevelConfig::standard(2.0);
        assert_eq!(c.partition, Partition::None);
        assert_eq!(c.partition.groups(), 1);
    }

    #[test]
    fn builders_override_fields() {
        let c = BiLevelConfig::paper_default(1.0)
            .seed(9)
            .tables(30)
            .probe(Probe::Multi(240))
            .quantizer(Quantizer::E8);
        assert_eq!(c.seed, 9);
        assert_eq!(c.l, 30);
        assert_eq!(c.probe, Probe::Multi(240));
        assert_eq!(c.quantizer, Quantizer::E8);
    }

    #[test]
    fn table_pool_builder_sets_pool() {
        let c = BiLevelConfig::paper_default(1.0).table_pool(30);
        assert_eq!(c.table_pool, Some(30));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "table pool must exceed")]
    fn pool_not_exceeding_l_invalid() {
        BiLevelConfig::paper_default(1.0).table_pool(10).validate();
    }

    #[test]
    #[should_panic(expected = "at least one hash table")]
    fn zero_tables_invalid() {
        BiLevelConfig::paper_default(1.0).tables(0).validate();
    }

    #[test]
    #[should_panic(expected = "fixed W must be positive")]
    fn negative_width_invalid() {
        BiLevelConfig::paper_default(-1.0).validate();
    }

    #[test]
    #[should_panic(expected = "recall target")]
    fn bad_recall_target_invalid() {
        let mut c = BiLevelConfig::paper_default(1.0);
        c.width = WidthMode::Tuned { target_recall: 1.5, k: 10 };
        c.validate();
    }

    fn assert_same(a: &BiLevelConfig, b: &BiLevelConfig) {
        assert_eq!(a.l, b.l);
        assert_eq!(a.m, b.m);
        assert_eq!(a.width, b.width);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.quantizer, b.quantizer);
        assert_eq!(a.probe, b.probe);
        assert_eq!(a.table_pool, b.table_pool);
        assert_eq!(a.projection, b.projection);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn json_round_trips_every_variant() {
        let configs = [
            BiLevelConfig::paper_default(2.5).tables(30).probe(Probe::Multi(240)),
            BiLevelConfig::standard(4.0)
                .quantizer(Quantizer::E8)
                .probe(Probe::Hierarchical { min_candidates: 8 })
                .table_pool(40)
                .seed(u64::MAX),
            BiLevelConfig {
                width: WidthMode::Scaled { base: 1.5, k: 10 },
                partition: Partition::KMeans { groups: 4 },
                ..BiLevelConfig::paper_default(1.0)
            },
            BiLevelConfig {
                width: WidthMode::Tuned { target_recall: 0.9, k: 50 },
                partition: Partition::Kd { groups: 8 },
                ..BiLevelConfig::paper_default(1.0)
            },
            BiLevelConfig::paper_default(3.0).projection(Projection::Sparse { nnz: 6 }),
        ];
        for c in &configs {
            let back = BiLevelConfig::from_json(&c.to_json()).unwrap();
            assert_same(c, &back);
        }
    }

    #[test]
    fn json_missing_table_pool_defaults_to_none() {
        let text = BiLevelConfig::paper_default(2.0).to_json().replace(",\"table_pool\":null", "");
        let c = BiLevelConfig::from_json(&text).unwrap();
        assert_eq!(c.table_pool, None);
    }

    #[test]
    fn json_missing_projection_defaults_to_dense() {
        let text =
            BiLevelConfig::paper_default(2.0).to_json().replace(",\"projection\":\"Dense\"", "");
        assert!(!text.contains("projection"), "replace should have removed the field");
        let c = BiLevelConfig::from_json(&text).unwrap();
        assert_eq!(c.projection, Projection::Dense);
    }

    #[test]
    #[should_panic(expected = "nnz must be positive")]
    fn zero_nnz_sparse_invalid() {
        BiLevelConfig::paper_default(1.0).projection(Projection::Sparse { nnz: 0 }).validate();
    }

    #[test]
    fn json_errors_name_the_bad_field() {
        let err = BiLevelConfig::from_json("{\"l\":1}").unwrap_err();
        assert!(err.contains('m'), "unexpected error: {err}");
        let err = BiLevelConfig::from_json("not json").unwrap_err();
        assert!(!err.is_empty());
        let bad = BiLevelConfig::paper_default(2.0).to_json().replace("\"Zm\"", "\"Q9\"");
        assert!(BiLevelConfig::from_json(&bad).unwrap_err().contains("quantizer"));
    }

    #[test]
    fn ladder_descends_to_home() {
        assert_eq!(Probe::Home.ladder(), vec![Probe::Home]);
        assert_eq!(
            Probe::Multi(8).ladder(),
            vec![Probe::Multi(8), Probe::Multi(4), Probe::Multi(2), Probe::Multi(1), Probe::Home]
        );
        let h = Probe::Hierarchical { min_candidates: 4 }.ladder();
        assert_eq!(
            h,
            vec![
                Probe::Hierarchical { min_candidates: 4 },
                Probe::Hierarchical { min_candidates: 2 },
                Probe::Hierarchical { min_candidates: 1 },
                Probe::Home
            ]
        );
        // Every ladder starts at the configured budget and ends at Home.
        for p in [Probe::Home, Probe::Multi(17), Probe::Hierarchical { min_candidates: 100 }] {
            let l = p.ladder();
            assert_eq!(l[0], p);
            assert_eq!(*l.last().unwrap(), Probe::Home);
        }
    }
}
