//! Configuration of a Bi-level LSH index.
//!
//! Every method variant the paper evaluates (Figures 5–13) is one point in
//! this configuration space:
//!
//! * standard LSH            = `Partition::None` + `Probe::Home`
//! * multi-probed LSH        = `Partition::None` + `Probe::Multi(t)`
//! * hierarchical LSH        = `Partition::None` + `Probe::Hierarchical`
//! * Bi-level LSH            = `Partition::RpTree` + `Probe::Home`
//! * multi-probed Bi-level   = `Partition::RpTree` + `Probe::Multi(t)`
//! * hierarchical Bi-level   = `Partition::RpTree` + `Probe::Hierarchical`
//!
//! each with either the `Z^M` or the E8 quantizer.

use lsh::Projection;
use rptree::SplitRule;
use serde::{Deserialize, Serialize};

/// Level-1 partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// No partitioning — degenerates to standard (single-level) LSH.
    None,
    /// Random projection tree with `groups` leaves.
    RpTree {
        /// Number of leaf groups.
        groups: usize,
        /// Split rule (the paper prefers `Mean`).
        rule: SplitRule,
    },
    /// K-means baseline (Figure 13c).
    KMeans {
        /// Number of clusters.
        groups: usize,
    },
    /// Kd-style axis-median baseline.
    Kd {
        /// Number of cells.
        groups: usize,
    },
}

impl Partition {
    /// Requested group count (1 for `None`).
    pub fn groups(&self) -> usize {
        match *self {
            Partition::None => 1,
            Partition::RpTree { groups, .. }
            | Partition::KMeans { groups }
            | Partition::Kd { groups } => groups,
        }
    }
}

/// Level-2 space quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantizer {
    /// Integer lattice `Z^M` (floor quantization).
    Zm,
    /// E8 lattice blocks (`⌈M/8⌉` concatenated decoders).
    E8,
}

/// Bucket-probing strategy at query time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Probe {
    /// Only the bucket containing the query (standard LSH).
    Home,
    /// Query-directed multi-probe with `t` extra probes per table
    /// (perturbation sets for `Z^M`, nearest lattice roots for E8).
    Multi(usize),
    /// Hierarchical escalation: queries whose candidate sets fall below a
    /// threshold re-probe coarser hierarchy levels. In batch queries the
    /// threshold defaults to the batch median (the paper's rule); a fixed
    /// floor is used for single queries. The escalation pass runs on the
    /// same worker pool as the base probe — see
    /// [`Engine`](crate::Engine) — and stays deterministic at any thread
    /// count.
    Hierarchical {
        /// Fixed candidate floor used when no batch median is available.
        min_candidates: usize,
    },
}

impl Probe {
    /// The degradation ladder for this probe mode: successively cheaper
    /// probe configurations, starting at full budget and ending at the
    /// cheapest rung. A serving layer walks the ladder when a request's
    /// deadline cannot afford the full budget (the `serve` crate's
    /// deadline-aware degradation).
    ///
    /// * `Home` has nothing to shed: the ladder is `[Home]`.
    /// * `Multi(t)` halves the extra-probe budget down to one, then falls
    ///   back to the home bucket: `[Multi(t), Multi(t/2), .., Multi(1), Home]`.
    /// * `Hierarchical { min_candidates }` halves the escalation floor —
    ///   each rung escalates less aggressively — then drops escalation
    ///   entirely: `[Hierarchical(f), Hierarchical(f/2), .., Home]`.
    pub fn ladder(&self) -> Vec<Probe> {
        let mut rungs = Vec::new();
        match *self {
            Probe::Home => rungs.push(Probe::Home),
            Probe::Multi(t) => {
                let mut t = t;
                while t > 0 {
                    rungs.push(Probe::Multi(t));
                    t /= 2;
                }
                rungs.push(Probe::Home);
            }
            Probe::Hierarchical { min_candidates } => {
                let mut floor = min_candidates;
                while floor > 0 {
                    rungs.push(Probe::Hierarchical { min_candidates: floor });
                    floor /= 2;
                }
                rungs.push(Probe::Home);
            }
        }
        rungs
    }
}

/// How the bucket width `W` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WidthMode {
    /// One fixed `W` for every group (what the harness sweeps).
    Fixed(f32),
    /// `base` scaled per group by the ratio of the group's k-NN distance to
    /// the global one — the per-cluster adaptation of Section IV-B run in a
    /// sweepable form.
    Scaled {
        /// Baseline width, scaled per group.
        base: f32,
        /// Neighborhood size the distance profiles are fitted for.
        k: usize,
    },
    /// Fully automatic per-group tuning to a recall target (Dong et al.).
    Tuned {
        /// Modeled recall target in `(0, 1)`.
        target_recall: f64,
        /// Neighborhood size the distance profiles are fitted for.
        k: usize,
    },
}

/// Distance metric the index ranks by — first-class in the configuration
/// so metric choice travels with the index (snapshots, serve tenants,
/// benchmarks) instead of being an implicit property of the rank stage.
///
/// Each metric pairs with exactly one level-2 hash family (see
/// [`FamilyKind`] and [`BiLevelConfig::check_family_metric`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Euclidean distance (the paper's setting). Default.
    #[default]
    L2,
    /// Cosine distance `1 − cos(a, b)`; hashed with sign random
    /// projections.
    Cosine,
    /// Maximum inner product, ranked as the negated dot product so smaller
    /// is better; hashed with the asymmetric MIPS transform.
    InnerProduct,
    /// Minkowski `ℓ_p` distance for `p ∈ (0, 2)`; hashed with p-stable
    /// draws of matching order.
    Lp {
        /// Norm order, must lie in `(0, 2)`.
        p: f32,
    },
}

impl MetricKind {
    /// Short stable name used in reports, snapshots, and the wire
    /// protocol.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::L2 => "l2",
            MetricKind::Cosine => "cosine",
            MetricKind::InnerProduct => "ip",
            MetricKind::Lp { .. } => "lp",
        }
    }

    /// The level-2 hash family that serves this metric.
    pub fn default_family(&self) -> FamilyKind {
        match *self {
            MetricKind::L2 => FamilyKind::PStable,
            MetricKind::Cosine => FamilyKind::Srp,
            MetricKind::InnerProduct => FamilyKind::Mips,
            MetricKind::Lp { p } => FamilyKind::LpStable { p },
        }
    }
}

/// Level-2 hash family — which [`lsh::Level2Family`] implementation the
/// index samples its per-table hash functions from.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FamilyKind {
    /// 2-stable (Gaussian) projections with offset and width — the paper's
    /// family, serving [`MetricKind::L2`]. Default.
    #[default]
    PStable,
    /// Sign random projections (bit codes), serving [`MetricKind::Cosine`].
    Srp,
    /// Asymmetric augmented-dimension transform over a 2-stable core,
    /// serving [`MetricKind::InnerProduct`].
    Mips,
    /// p-stable (Chambers–Mallows–Stuck) projections, serving
    /// [`MetricKind::Lp`] of the same order.
    LpStable {
        /// Stability order, must lie in `(0, 2)`.
        p: f32,
    },
}

impl FamilyKind {
    /// Short stable name used in reports, snapshots, and the wire
    /// protocol.
    pub fn name(&self) -> &'static str {
        match self {
            FamilyKind::PStable => "pstable",
            FamilyKind::Srp => "srp",
            FamilyKind::Mips => "mips",
            FamilyKind::LpStable { .. } => "lp",
        }
    }
}

/// A family/metric combination the index cannot build — returned by
/// [`BiLevelConfig::check_family_metric`] and surfaced through
/// `BiLevelIndex::try_build`.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyMetricError {
    /// The family does not hash for the metric (e.g. SRP under `L2`).
    Incompatible {
        /// Configured family.
        family: FamilyKind,
        /// Configured metric.
        metric: MetricKind,
    },
    /// The family requires a quantizer the config does not select (SRP
    /// emits sign codes that only `Z^M` floors correctly).
    NeedsQuantizer {
        /// Configured family.
        family: FamilyKind,
        /// The quantizer the family requires.
        required: Quantizer,
    },
    /// Non-p-stable families draw their own projection matrices and do not
    /// compose with sparse projections.
    NeedsDenseProjection {
        /// Configured family.
        family: FamilyKind,
    },
    /// `LpStable { p }` must hash for `Lp { p }` of the **same** order.
    LpOrderMismatch {
        /// Order drawn by the hash family.
        family_p: f32,
        /// Order the metric ranks by.
        metric_p: f32,
    },
    /// The `ℓ_p` order is outside the p-stable range `(0, 2)`.
    LpOrderOutOfRange {
        /// The rejected order.
        p: f32,
    },
}

impl std::fmt::Display for FamilyMetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilyMetricError::Incompatible { family, metric } => write!(
                f,
                "hash family `{}` does not serve metric `{}` (expected family `{}`)",
                family.name(),
                metric.name(),
                metric.default_family().name()
            ),
            FamilyMetricError::NeedsQuantizer { family, required } => {
                write!(f, "hash family `{}` requires the {required:?} quantizer", family.name())
            }
            FamilyMetricError::NeedsDenseProjection { family } => {
                write!(f, "hash family `{}` requires dense projections", family.name())
            }
            FamilyMetricError::LpOrderMismatch { family_p, metric_p } => write!(
                f,
                "lp-stable family order {family_p} does not match metric order {metric_p}"
            ),
            FamilyMetricError::LpOrderOutOfRange { p } => {
                write!(f, "lp order {p} outside the p-stable range (0, 2)")
            }
        }
    }
}

impl std::error::Error for FamilyMetricError {}

/// Full index configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiLevelConfig {
    /// Number of hash tables `L`.
    pub l: usize,
    /// Hash code dimension `M`.
    pub m: usize,
    /// Bucket width selection.
    pub width: WidthMode,
    /// Level-1 partitioning.
    pub partition: Partition,
    /// Level-2 quantizer.
    pub quantizer: Quantizer,
    /// Probing strategy.
    pub probe: Probe,
    /// Query-adaptive table pool (Jégou et al., the paper's reference
    /// \[12\]): when `Some(pool)` with `pool > l`, each group builds `pool`
    /// hash tables and every query probes only the `l` tables in which it
    /// sits most centrally. `None` (default) probes a fixed set of `l`.
    #[serde(default)]
    pub table_pool: Option<usize>,
    /// How level-2 projection vectors are drawn. `Dense` (default) is the
    /// paper's i.i.d. Gaussian matrix; `Sparse { nnz }` samples `nnz`
    /// coordinates per hash function (Li–Hastie–Church very sparse random
    /// projections), cutting hashing cost from `O(d·m)` toward `O(nnz·m)`.
    #[serde(default)]
    pub projection: Projection,
    /// Distance metric queries rank by. Defaults to [`MetricKind::L2`]
    /// (the paper's setting); non-default metrics select a matching
    /// level-2 hash family — see [`Self::metric`] and
    /// [`Self::check_family_metric`].
    #[serde(default)]
    pub metric: MetricKind,
    /// Level-2 hash family. Defaults to [`FamilyKind::PStable`]; must be
    /// compatible with [`Self::metric`].
    #[serde(default)]
    pub family: FamilyKind,
    /// Master RNG seed (projections, tree directions, table seeds).
    pub seed: u64,
}

impl BiLevelConfig {
    /// The paper's defaults: `L = 10`, `M = 8`, 16 RP-tree (mean rule)
    /// groups, `Z^M` quantizer, home-bucket probing.
    pub fn paper_default(w: f32) -> Self {
        Self {
            l: 10,
            m: 8,
            width: WidthMode::Fixed(w),
            partition: Partition::RpTree { groups: 16, rule: SplitRule::Mean },
            quantizer: Quantizer::Zm,
            probe: Probe::Home,
            table_pool: None,
            projection: Projection::Dense,
            metric: MetricKind::L2,
            family: FamilyKind::PStable,
            seed: 0x0b11_e7e1,
        }
    }

    /// Standard-LSH baseline with the same `L`, `M`, `W`.
    pub fn standard(w: f32) -> Self {
        Self { partition: Partition::None, ..Self::paper_default(w) }
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style table-count override.
    pub fn tables(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Builder-style probe override.
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Builder-style quantizer override.
    pub fn quantizer(mut self, quantizer: Quantizer) -> Self {
        self.quantizer = quantizer;
        self
    }

    /// Builder-style query-adaptive pool override (see
    /// [`BiLevelConfig::table_pool`]).
    pub fn table_pool(mut self, pool: usize) -> Self {
        self.table_pool = Some(pool);
        self
    }

    /// Builder-style projection override (see [`BiLevelConfig::projection`]).
    pub fn projection(mut self, projection: Projection) -> Self {
        self.projection = projection;
        self
    }

    /// Builder-style metric override; also selects the matching level-2
    /// hash family (the common case). Use [`Self::family`] afterwards to
    /// force a specific family.
    pub fn metric(mut self, metric: MetricKind) -> Self {
        self.metric = metric;
        self.family = metric.default_family();
        self
    }

    /// Builder-style hash-family override. Most callers should use
    /// [`Self::metric`] instead, which picks the compatible family;
    /// [`Self::check_family_metric`] rejects mismatched pairs at build.
    pub fn family(mut self, family: FamilyKind) -> Self {
        self.family = family;
        self
    }

    /// Checks that the configured family can hash for the configured
    /// metric under this quantizer and projection.
    ///
    /// The compatibility matrix:
    ///
    /// | family | metric | extra requirements |
    /// |---|---|---|
    /// | `PStable` | `L2` | — (any quantizer, any projection) |
    /// | `Srp` | `Cosine` | `Quantizer::Zm`, `Projection::Dense` |
    /// | `Mips` | `InnerProduct` | `Projection::Dense` |
    /// | `LpStable { p }` | `Lp { p }` (same `p`) | `p ∈ (0, 2)`, `Projection::Dense` |
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as a [`FamilyMetricError`].
    pub fn check_family_metric(&self) -> Result<(), FamilyMetricError> {
        let incompatible =
            || FamilyMetricError::Incompatible { family: self.family, metric: self.metric };
        match (self.family, self.metric) {
            (FamilyKind::PStable, MetricKind::L2) => Ok(()),
            (FamilyKind::Srp, MetricKind::Cosine) => {
                if self.quantizer != Quantizer::Zm {
                    return Err(FamilyMetricError::NeedsQuantizer {
                        family: self.family,
                        required: Quantizer::Zm,
                    });
                }
                self.require_dense()
            }
            (FamilyKind::Mips, MetricKind::InnerProduct) => self.require_dense(),
            (FamilyKind::LpStable { p: fp }, MetricKind::Lp { p: mp }) => {
                if !(fp > 0.0 && fp < 2.0 && fp.is_finite()) {
                    return Err(FamilyMetricError::LpOrderOutOfRange { p: fp });
                }
                if fp != mp {
                    return Err(FamilyMetricError::LpOrderMismatch { family_p: fp, metric_p: mp });
                }
                self.require_dense()
            }
            _ => Err(incompatible()),
        }
    }

    fn require_dense(&self) -> Result<(), FamilyMetricError> {
        match self.projection {
            Projection::Dense => Ok(()),
            Projection::Sparse { .. } => {
                Err(FamilyMetricError::NeedsDenseProjection { family: self.family })
            }
        }
    }

    /// Serializes to a JSON document with the same shape `serde_json`
    /// produces for the derived `Serialize` impl (externally tagged enums,
    /// `null` for an absent table pool), without requiring a working
    /// `serde_json` backend.
    pub fn to_json(&self) -> String {
        use crate::jsonio::{fmt_float, fmt_float32};
        let width = match self.width {
            WidthMode::Fixed(w) => format!("{{\"Fixed\":{}}}", fmt_float32(w)),
            WidthMode::Scaled { base, k } => {
                format!("{{\"Scaled\":{{\"base\":{},\"k\":{k}}}}}", fmt_float32(base))
            }
            WidthMode::Tuned { target_recall, k } => {
                format!(
                    "{{\"Tuned\":{{\"target_recall\":{},\"k\":{k}}}}}",
                    fmt_float(target_recall)
                )
            }
        };
        let partition = match self.partition {
            Partition::None => "\"None\"".to_string(),
            Partition::RpTree { groups, rule } => {
                let rule = match rule {
                    SplitRule::Max => "Max",
                    SplitRule::Mean => "Mean",
                };
                format!("{{\"RpTree\":{{\"groups\":{groups},\"rule\":\"{rule}\"}}}}")
            }
            Partition::KMeans { groups } => format!("{{\"KMeans\":{{\"groups\":{groups}}}}}"),
            Partition::Kd { groups } => format!("{{\"Kd\":{{\"groups\":{groups}}}}}"),
        };
        let quantizer = match self.quantizer {
            Quantizer::Zm => "\"Zm\"",
            Quantizer::E8 => "\"E8\"",
        };
        let probe = match self.probe {
            Probe::Home => "\"Home\"".to_string(),
            Probe::Multi(t) => format!("{{\"Multi\":{t}}}"),
            Probe::Hierarchical { min_candidates } => {
                format!("{{\"Hierarchical\":{{\"min_candidates\":{min_candidates}}}}}")
            }
        };
        let table_pool = match self.table_pool {
            Some(pool) => pool.to_string(),
            None => "null".to_string(),
        };
        let projection = match self.projection {
            Projection::Dense => "\"Dense\"".to_string(),
            Projection::Sparse { nnz } => format!("{{\"Sparse\":{{\"nnz\":{nnz}}}}}"),
        };
        let metric = match self.metric {
            MetricKind::L2 => "\"L2\"".to_string(),
            MetricKind::Cosine => "\"Cosine\"".to_string(),
            MetricKind::InnerProduct => "\"InnerProduct\"".to_string(),
            MetricKind::Lp { p } => format!("{{\"Lp\":{{\"p\":{}}}}}", fmt_float32(p)),
        };
        let family = match self.family {
            FamilyKind::PStable => "\"PStable\"".to_string(),
            FamilyKind::Srp => "\"Srp\"".to_string(),
            FamilyKind::Mips => "\"Mips\"".to_string(),
            FamilyKind::LpStable { p } => {
                format!("{{\"LpStable\":{{\"p\":{}}}}}", fmt_float32(p))
            }
        };
        format!(
            "{{\"l\":{},\"m\":{},\"width\":{width},\"partition\":{partition},\
             \"quantizer\":{quantizer},\"probe\":{probe},\"table_pool\":{table_pool},\
             \"projection\":{projection},\"metric\":{metric},\"family\":{family},\
             \"seed\":{}}}",
            self.l, self.m, self.seed
        )
    }

    /// Deserializes a config from the JSON shape [`Self::to_json`] (and the
    /// derived serde impl) produce. A missing or `null` `table_pool`
    /// defaults to `None`, matching the `#[serde(default)]` attribute.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(s: &str) -> Result<Self, String> {
        use crate::jsonio::{parse, Value};
        let doc = parse(s)?;
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field `{key}`"));
        let usize_field = |key: &str| -> Result<usize, String> {
            field(key)?
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
        };
        // A unit enum variant arrives as a bare string, a payload variant as
        // a single-key object — serde's external tagging.
        let variant = |v: &Value| -> Result<(String, Option<Value>), String> {
            match v {
                Value::Str(name) => Ok((name.clone(), None)),
                Value::Obj(fields) if fields.len() == 1 => {
                    Ok((fields[0].0.clone(), Some(fields[0].1.clone())))
                }
                _ => Err("expected an enum variant (string or single-key object)".into()),
            }
        };
        let inner_usize = |v: &Value, key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .map(|x| x as usize)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };

        let width = {
            let (name, payload) = variant(field("width")?)?;
            let payload = payload.ok_or("width variant needs a payload")?;
            match name.as_str() {
                "Fixed" => {
                    WidthMode::Fixed(payload.as_f64().ok_or("Fixed width must be a number")? as f32)
                }
                "Scaled" => WidthMode::Scaled {
                    base: payload
                        .get("base")
                        .and_then(Value::as_f64)
                        .ok_or("missing number field `base`")? as f32,
                    k: inner_usize(&payload, "k")?,
                },
                "Tuned" => WidthMode::Tuned {
                    target_recall: payload
                        .get("target_recall")
                        .and_then(Value::as_f64)
                        .ok_or("missing number field `target_recall`")?,
                    k: inner_usize(&payload, "k")?,
                },
                other => return Err(format!("unknown width mode `{other}`")),
            }
        };
        let partition = {
            let (name, payload) = variant(field("partition")?)?;
            match (name.as_str(), payload) {
                ("None", None) => Partition::None,
                ("RpTree", Some(p)) => Partition::RpTree {
                    groups: inner_usize(&p, "groups")?,
                    rule: match p.get("rule").and_then(Value::as_str) {
                        Some("Max") => SplitRule::Max,
                        Some("Mean") => SplitRule::Mean,
                        other => return Err(format!("unknown split rule {other:?}")),
                    },
                },
                ("KMeans", Some(p)) => Partition::KMeans { groups: inner_usize(&p, "groups")? },
                ("Kd", Some(p)) => Partition::Kd { groups: inner_usize(&p, "groups")? },
                (other, _) => return Err(format!("unknown partition `{other}`")),
            }
        };
        let quantizer = match field("quantizer")?.as_str() {
            Some("Zm") => Quantizer::Zm,
            Some("E8") => Quantizer::E8,
            other => return Err(format!("unknown quantizer {other:?}")),
        };
        let probe = {
            let (name, payload) = variant(field("probe")?)?;
            match (name.as_str(), payload) {
                ("Home", None) => Probe::Home,
                ("Multi", Some(p)) => {
                    Probe::Multi(p.as_u64().ok_or("Multi probe count must be an integer")? as usize)
                }
                ("Hierarchical", Some(p)) => {
                    Probe::Hierarchical { min_candidates: inner_usize(&p, "min_candidates")? }
                }
                (other, _) => return Err(format!("unknown probe `{other}`")),
            }
        };
        let table_pool = match doc.get("table_pool") {
            None | Some(Value::Null) => None,
            Some(v) => {
                Some(v.as_u64().ok_or("field `table_pool` must be an integer or null")? as usize)
            }
        };
        // Absent in documents written before the field existed — default to
        // the dense matrix those indexes were built with.
        let projection = match doc.get("projection") {
            None => Projection::Dense,
            Some(v) => {
                let (name, payload) = variant(v)?;
                match (name.as_str(), payload) {
                    ("Dense", None) => Projection::Dense,
                    ("Sparse", Some(p)) => Projection::Sparse { nnz: inner_usize(&p, "nnz")? },
                    (other, _) => return Err(format!("unknown projection `{other}`")),
                }
            }
        };
        // Metric and family are likewise absent in older documents —
        // default to the L2 / p-stable pairing those indexes were built
        // with.
        let metric = match doc.get("metric") {
            None => MetricKind::L2,
            Some(v) => {
                let (name, payload) = variant(v)?;
                match (name.as_str(), payload) {
                    ("L2", None) => MetricKind::L2,
                    ("Cosine", None) => MetricKind::Cosine,
                    ("InnerProduct", None) => MetricKind::InnerProduct,
                    ("Lp", Some(p)) => MetricKind::Lp {
                        p: p.get("p").and_then(Value::as_f64).ok_or("missing number field `p`")?
                            as f32,
                    },
                    (other, _) => return Err(format!("unknown metric `{other}`")),
                }
            }
        };
        let family = match doc.get("family") {
            None => FamilyKind::PStable,
            Some(v) => {
                let (name, payload) = variant(v)?;
                match (name.as_str(), payload) {
                    ("PStable", None) => FamilyKind::PStable,
                    ("Srp", None) => FamilyKind::Srp,
                    ("Mips", None) => FamilyKind::Mips,
                    ("LpStable", Some(p)) => FamilyKind::LpStable {
                        p: p.get("p").and_then(Value::as_f64).ok_or("missing number field `p`")?
                            as f32,
                    },
                    (other, _) => return Err(format!("unknown family `{other}`")),
                }
            }
        };
        Ok(Self {
            l: usize_field("l")?,
            m: usize_field("m")?,
            width,
            partition,
            quantizer,
            probe,
            table_pool,
            projection,
            metric,
            family,
            seed: field("seed")?.as_u64().ok_or("field `seed` must be a u64")?,
        })
    }

    /// Validates invariants; called by the index builder.
    ///
    /// # Panics
    ///
    /// Panics on `l == 0`, `m == 0`, non-positive fixed width, a zero group
    /// count, or an out-of-range recall target.
    pub fn validate(&self) {
        assert!(self.l > 0, "need at least one hash table");
        assert!(self.m > 0, "hash dimension must be positive");
        assert!(self.partition.groups() > 0, "need at least one group");
        if let Some(pool) = self.table_pool {
            assert!(pool > self.l, "table pool must exceed l to be adaptive");
        }
        if let Projection::Sparse { nnz } = self.projection {
            assert!(nnz > 0, "sparse projection nnz must be positive");
        }
        if let Err(e) = self.check_family_metric() {
            panic!("invalid family/metric configuration: {e}");
        }
        match self.width {
            WidthMode::Fixed(w) => assert!(w > 0.0 && w.is_finite(), "fixed W must be positive"),
            WidthMode::Scaled { base, k } => {
                assert!(base > 0.0 && base.is_finite(), "base W must be positive");
                assert!(k > 0, "profile k must be positive");
            }
            WidthMode::Tuned { target_recall, k } => {
                assert!(
                    target_recall > 0.0 && target_recall < 1.0,
                    "recall target must be in (0, 1)"
                );
                assert!(k > 0, "profile k must be positive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vi() {
        let c = BiLevelConfig::paper_default(4.0);
        assert_eq!(c.l, 10);
        assert_eq!(c.m, 8);
        assert_eq!(c.partition.groups(), 16);
        assert_eq!(c.quantizer, Quantizer::Zm);
        c.validate();
    }

    #[test]
    fn standard_is_single_group() {
        let c = BiLevelConfig::standard(2.0);
        assert_eq!(c.partition, Partition::None);
        assert_eq!(c.partition.groups(), 1);
    }

    #[test]
    fn builders_override_fields() {
        let c = BiLevelConfig::paper_default(1.0)
            .seed(9)
            .tables(30)
            .probe(Probe::Multi(240))
            .quantizer(Quantizer::E8);
        assert_eq!(c.seed, 9);
        assert_eq!(c.l, 30);
        assert_eq!(c.probe, Probe::Multi(240));
        assert_eq!(c.quantizer, Quantizer::E8);
    }

    #[test]
    fn table_pool_builder_sets_pool() {
        let c = BiLevelConfig::paper_default(1.0).table_pool(30);
        assert_eq!(c.table_pool, Some(30));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "table pool must exceed")]
    fn pool_not_exceeding_l_invalid() {
        BiLevelConfig::paper_default(1.0).table_pool(10).validate();
    }

    #[test]
    #[should_panic(expected = "at least one hash table")]
    fn zero_tables_invalid() {
        BiLevelConfig::paper_default(1.0).tables(0).validate();
    }

    #[test]
    #[should_panic(expected = "fixed W must be positive")]
    fn negative_width_invalid() {
        BiLevelConfig::paper_default(-1.0).validate();
    }

    #[test]
    #[should_panic(expected = "recall target")]
    fn bad_recall_target_invalid() {
        let mut c = BiLevelConfig::paper_default(1.0);
        c.width = WidthMode::Tuned { target_recall: 1.5, k: 10 };
        c.validate();
    }

    fn assert_same(a: &BiLevelConfig, b: &BiLevelConfig) {
        assert_eq!(a.l, b.l);
        assert_eq!(a.m, b.m);
        assert_eq!(a.width, b.width);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.quantizer, b.quantizer);
        assert_eq!(a.probe, b.probe);
        assert_eq!(a.table_pool, b.table_pool);
        assert_eq!(a.projection, b.projection);
        assert_eq!(a.metric, b.metric);
        assert_eq!(a.family, b.family);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn json_round_trips_every_variant() {
        let configs = [
            BiLevelConfig::paper_default(2.5).tables(30).probe(Probe::Multi(240)),
            BiLevelConfig::standard(4.0)
                .quantizer(Quantizer::E8)
                .probe(Probe::Hierarchical { min_candidates: 8 })
                .table_pool(40)
                .seed(u64::MAX),
            BiLevelConfig {
                width: WidthMode::Scaled { base: 1.5, k: 10 },
                partition: Partition::KMeans { groups: 4 },
                ..BiLevelConfig::paper_default(1.0)
            },
            BiLevelConfig {
                width: WidthMode::Tuned { target_recall: 0.9, k: 50 },
                partition: Partition::Kd { groups: 8 },
                ..BiLevelConfig::paper_default(1.0)
            },
            BiLevelConfig::paper_default(3.0).projection(Projection::Sparse { nnz: 6 }),
            BiLevelConfig::paper_default(1.0).metric(MetricKind::Cosine),
            BiLevelConfig::paper_default(1.0).metric(MetricKind::InnerProduct),
            BiLevelConfig::paper_default(1.0).metric(MetricKind::Lp { p: 1.5 }),
        ];
        for c in &configs {
            let back = BiLevelConfig::from_json(&c.to_json()).unwrap();
            assert_same(c, &back);
        }
    }

    #[test]
    fn json_missing_table_pool_defaults_to_none() {
        let text = BiLevelConfig::paper_default(2.0).to_json().replace(",\"table_pool\":null", "");
        let c = BiLevelConfig::from_json(&text).unwrap();
        assert_eq!(c.table_pool, None);
    }

    #[test]
    fn json_missing_projection_defaults_to_dense() {
        let text =
            BiLevelConfig::paper_default(2.0).to_json().replace(",\"projection\":\"Dense\"", "");
        assert!(!text.contains("projection"), "replace should have removed the field");
        let c = BiLevelConfig::from_json(&text).unwrap();
        assert_eq!(c.projection, Projection::Dense);
    }

    #[test]
    #[should_panic(expected = "nnz must be positive")]
    fn zero_nnz_sparse_invalid() {
        BiLevelConfig::paper_default(1.0).projection(Projection::Sparse { nnz: 0 }).validate();
    }

    #[test]
    fn json_missing_metric_and_family_default_to_l2_pstable() {
        let text = BiLevelConfig::paper_default(2.0)
            .to_json()
            .replace(",\"metric\":\"L2\",\"family\":\"PStable\"", "");
        assert!(!text.contains("metric"), "replace should have removed the fields");
        let c = BiLevelConfig::from_json(&text).unwrap();
        assert_eq!(c.metric, MetricKind::L2);
        assert_eq!(c.family, FamilyKind::PStable);
    }

    #[test]
    fn metric_builder_selects_matching_family() {
        assert_eq!(
            BiLevelConfig::paper_default(1.0).metric(MetricKind::Cosine).family,
            FamilyKind::Srp
        );
        assert_eq!(
            BiLevelConfig::paper_default(1.0).metric(MetricKind::InnerProduct).family,
            FamilyKind::Mips
        );
        assert_eq!(
            BiLevelConfig::paper_default(1.0).metric(MetricKind::Lp { p: 0.5 }).family,
            FamilyKind::LpStable { p: 0.5 }
        );
    }

    #[test]
    fn family_metric_matrix_enforced() {
        // Mismatched pairs are rejected with the expected-family hint.
        let c = BiLevelConfig::paper_default(1.0).family(FamilyKind::Srp);
        assert_eq!(
            c.check_family_metric(),
            Err(FamilyMetricError::Incompatible {
                family: FamilyKind::Srp,
                metric: MetricKind::L2
            })
        );
        // SRP needs the Z^M quantizer.
        let c =
            BiLevelConfig::paper_default(1.0).metric(MetricKind::Cosine).quantizer(Quantizer::E8);
        assert_eq!(
            c.check_family_metric(),
            Err(FamilyMetricError::NeedsQuantizer {
                family: FamilyKind::Srp,
                required: Quantizer::Zm
            })
        );
        // Non-p-stable families need dense projections.
        let c = BiLevelConfig::paper_default(1.0)
            .metric(MetricKind::InnerProduct)
            .projection(Projection::Sparse { nnz: 4 });
        assert_eq!(
            c.check_family_metric(),
            Err(FamilyMetricError::NeedsDenseProjection { family: FamilyKind::Mips })
        );
        // ℓ_p orders must match and lie in (0, 2).
        let c = BiLevelConfig::paper_default(1.0)
            .metric(MetricKind::Lp { p: 1.0 })
            .family(FamilyKind::LpStable { p: 1.5 });
        assert_eq!(
            c.check_family_metric(),
            Err(FamilyMetricError::LpOrderMismatch { family_p: 1.5, metric_p: 1.0 })
        );
        let c = BiLevelConfig::paper_default(1.0).metric(MetricKind::Lp { p: 2.5 });
        assert_eq!(c.check_family_metric(), Err(FamilyMetricError::LpOrderOutOfRange { p: 2.5 }));
        // The four sanctioned pairings pass.
        for metric in [
            MetricKind::L2,
            MetricKind::Cosine,
            MetricKind::InnerProduct,
            MetricKind::Lp { p: 0.75 },
        ] {
            BiLevelConfig::paper_default(1.0).metric(metric).check_family_metric().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "invalid family/metric configuration")]
    fn validate_rejects_mismatched_family() {
        BiLevelConfig::paper_default(1.0).family(FamilyKind::Mips).validate();
    }

    #[test]
    fn json_errors_name_the_bad_field() {
        let err = BiLevelConfig::from_json("{\"l\":1}").unwrap_err();
        assert!(err.contains('m'), "unexpected error: {err}");
        let err = BiLevelConfig::from_json("not json").unwrap_err();
        assert!(!err.is_empty());
        let bad = BiLevelConfig::paper_default(2.0).to_json().replace("\"Zm\"", "\"Q9\"");
        assert!(BiLevelConfig::from_json(&bad).unwrap_err().contains("quantizer"));
    }

    #[test]
    fn ladder_descends_to_home() {
        assert_eq!(Probe::Home.ladder(), vec![Probe::Home]);
        assert_eq!(
            Probe::Multi(8).ladder(),
            vec![Probe::Multi(8), Probe::Multi(4), Probe::Multi(2), Probe::Multi(1), Probe::Home]
        );
        let h = Probe::Hierarchical { min_candidates: 4 }.ladder();
        assert_eq!(
            h,
            vec![
                Probe::Hierarchical { min_candidates: 4 },
                Probe::Hierarchical { min_candidates: 2 },
                Probe::Hierarchical { min_candidates: 1 },
                Probe::Home
            ]
        );
        // Every ladder starts at the configured budget and ends at Home.
        for p in [Probe::Home, Probe::Multi(17), Probe::Hierarchical { min_candidates: 100 }] {
            let l = p.ladder();
            assert_eq!(l[0], p);
            assert_eq!(*l.last().unwrap(), Probe::Home);
        }
    }
}
