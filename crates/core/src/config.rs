//! Configuration of a Bi-level LSH index.
//!
//! Every method variant the paper evaluates (Figures 5–13) is one point in
//! this configuration space:
//!
//! * standard LSH            = `Partition::None` + `Probe::Home`
//! * multi-probed LSH        = `Partition::None` + `Probe::Multi(t)`
//! * hierarchical LSH        = `Partition::None` + `Probe::Hierarchical`
//! * Bi-level LSH            = `Partition::RpTree` + `Probe::Home`
//! * multi-probed Bi-level   = `Partition::RpTree` + `Probe::Multi(t)`
//! * hierarchical Bi-level   = `Partition::RpTree` + `Probe::Hierarchical`
//!
//! each with either the `Z^M` or the E8 quantizer.

use rptree::SplitRule;
use serde::{Deserialize, Serialize};

/// Level-1 partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// No partitioning — degenerates to standard (single-level) LSH.
    None,
    /// Random projection tree with `groups` leaves.
    RpTree {
        /// Number of leaf groups.
        groups: usize,
        /// Split rule (the paper prefers `Mean`).
        rule: SplitRule,
    },
    /// K-means baseline (Figure 13c).
    KMeans {
        /// Number of clusters.
        groups: usize,
    },
    /// Kd-style axis-median baseline.
    Kd {
        /// Number of cells.
        groups: usize,
    },
}

impl Partition {
    /// Requested group count (1 for `None`).
    pub fn groups(&self) -> usize {
        match *self {
            Partition::None => 1,
            Partition::RpTree { groups, .. }
            | Partition::KMeans { groups }
            | Partition::Kd { groups } => groups,
        }
    }
}

/// Level-2 space quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantizer {
    /// Integer lattice `Z^M` (floor quantization).
    Zm,
    /// E8 lattice blocks (`⌈M/8⌉` concatenated decoders).
    E8,
}

/// Bucket-probing strategy at query time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Probe {
    /// Only the bucket containing the query (standard LSH).
    Home,
    /// Query-directed multi-probe with `t` extra probes per table
    /// (perturbation sets for `Z^M`, nearest lattice roots for E8).
    Multi(usize),
    /// Hierarchical escalation: queries whose candidate sets fall below a
    /// threshold re-probe coarser hierarchy levels. In batch queries the
    /// threshold defaults to the batch median (the paper's rule); a fixed
    /// floor is used for single queries. The escalation pass runs on the
    /// same worker pool as the base probe — see
    /// [`Engine`](crate::Engine) — and stays deterministic at any thread
    /// count.
    Hierarchical {
        /// Fixed candidate floor used when no batch median is available.
        min_candidates: usize,
    },
}

/// How the bucket width `W` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WidthMode {
    /// One fixed `W` for every group (what the harness sweeps).
    Fixed(f32),
    /// `base` scaled per group by the ratio of the group's k-NN distance to
    /// the global one — the per-cluster adaptation of Section IV-B run in a
    /// sweepable form.
    Scaled {
        /// Baseline width, scaled per group.
        base: f32,
        /// Neighborhood size the distance profiles are fitted for.
        k: usize,
    },
    /// Fully automatic per-group tuning to a recall target (Dong et al.).
    Tuned {
        /// Modeled recall target in `(0, 1)`.
        target_recall: f64,
        /// Neighborhood size the distance profiles are fitted for.
        k: usize,
    },
}

/// Full index configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiLevelConfig {
    /// Number of hash tables `L`.
    pub l: usize,
    /// Hash code dimension `M`.
    pub m: usize,
    /// Bucket width selection.
    pub width: WidthMode,
    /// Level-1 partitioning.
    pub partition: Partition,
    /// Level-2 quantizer.
    pub quantizer: Quantizer,
    /// Probing strategy.
    pub probe: Probe,
    /// Query-adaptive table pool (Jégou et al., the paper's reference
    /// \[12\]): when `Some(pool)` with `pool > l`, each group builds `pool`
    /// hash tables and every query probes only the `l` tables in which it
    /// sits most centrally. `None` (default) probes a fixed set of `l`.
    #[serde(default)]
    pub table_pool: Option<usize>,
    /// Master RNG seed (projections, tree directions, table seeds).
    pub seed: u64,
}

impl BiLevelConfig {
    /// The paper's defaults: `L = 10`, `M = 8`, 16 RP-tree (mean rule)
    /// groups, `Z^M` quantizer, home-bucket probing.
    pub fn paper_default(w: f32) -> Self {
        Self {
            l: 10,
            m: 8,
            width: WidthMode::Fixed(w),
            partition: Partition::RpTree { groups: 16, rule: SplitRule::Mean },
            quantizer: Quantizer::Zm,
            probe: Probe::Home,
            table_pool: None,
            seed: 0x0b11_e7e1,
        }
    }

    /// Standard-LSH baseline with the same `L`, `M`, `W`.
    pub fn standard(w: f32) -> Self {
        Self { partition: Partition::None, ..Self::paper_default(w) }
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style table-count override.
    pub fn tables(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Builder-style probe override.
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Builder-style quantizer override.
    pub fn quantizer(mut self, quantizer: Quantizer) -> Self {
        self.quantizer = quantizer;
        self
    }

    /// Builder-style query-adaptive pool override (see
    /// [`BiLevelConfig::table_pool`]).
    pub fn table_pool(mut self, pool: usize) -> Self {
        self.table_pool = Some(pool);
        self
    }

    /// Validates invariants; called by the index builder.
    ///
    /// # Panics
    ///
    /// Panics on `l == 0`, `m == 0`, non-positive fixed width, a zero group
    /// count, or an out-of-range recall target.
    pub fn validate(&self) {
        assert!(self.l > 0, "need at least one hash table");
        assert!(self.m > 0, "hash dimension must be positive");
        assert!(self.partition.groups() > 0, "need at least one group");
        if let Some(pool) = self.table_pool {
            assert!(pool > self.l, "table pool must exceed l to be adaptive");
        }
        match self.width {
            WidthMode::Fixed(w) => assert!(w > 0.0 && w.is_finite(), "fixed W must be positive"),
            WidthMode::Scaled { base, k } => {
                assert!(base > 0.0 && base.is_finite(), "base W must be positive");
                assert!(k > 0, "profile k must be positive");
            }
            WidthMode::Tuned { target_recall, k } => {
                assert!(
                    target_recall > 0.0 && target_recall < 1.0,
                    "recall target must be in (0, 1)"
                );
                assert!(k > 0, "profile k must be positive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vi() {
        let c = BiLevelConfig::paper_default(4.0);
        assert_eq!(c.l, 10);
        assert_eq!(c.m, 8);
        assert_eq!(c.partition.groups(), 16);
        assert_eq!(c.quantizer, Quantizer::Zm);
        c.validate();
    }

    #[test]
    fn standard_is_single_group() {
        let c = BiLevelConfig::standard(2.0);
        assert_eq!(c.partition, Partition::None);
        assert_eq!(c.partition.groups(), 1);
    }

    #[test]
    fn builders_override_fields() {
        let c = BiLevelConfig::paper_default(1.0)
            .seed(9)
            .tables(30)
            .probe(Probe::Multi(240))
            .quantizer(Quantizer::E8);
        assert_eq!(c.seed, 9);
        assert_eq!(c.l, 30);
        assert_eq!(c.probe, Probe::Multi(240));
        assert_eq!(c.quantizer, Quantizer::E8);
    }

    #[test]
    fn table_pool_builder_sets_pool() {
        let c = BiLevelConfig::paper_default(1.0).table_pool(30);
        assert_eq!(c.table_pool, Some(30));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "table pool must exceed")]
    fn pool_not_exceeding_l_invalid() {
        BiLevelConfig::paper_default(1.0).table_pool(10).validate();
    }

    #[test]
    #[should_panic(expected = "at least one hash table")]
    fn zero_tables_invalid() {
        BiLevelConfig::paper_default(1.0).tables(0).validate();
    }

    #[test]
    #[should_panic(expected = "fixed W must be positive")]
    fn negative_width_invalid() {
        BiLevelConfig::paper_default(-1.0).validate();
    }

    #[test]
    #[should_panic(expected = "recall target")]
    fn bad_recall_target_invalid() {
        let mut c = BiLevelConfig::paper_default(1.0);
        c.width = WidthMode::Tuned { target_recall: 1.5, k: 10 };
        c.validate();
    }
}
