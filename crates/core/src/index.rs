//! The Bi-level LSH index: level-1 partitioning composed with per-group,
//! per-table LSH hash tables, optional bucket hierarchies, and the batch
//! query pipeline.

use crate::config::{
    BiLevelConfig, FamilyKind, MetricKind, Partition, Probe, Quantizer, WidthMode,
};
use crate::options::QueryOptions;
use knn_telemetry::{Counter, Recorder, SpanTimer, Stage, Value};
use lattice::{decode_e8_raw, e8_roots, E8Hierarchy, ZmHierarchy};
use lsh::family::quantize_zm;
use lsh::{
    tune_w, DistanceProfile, HashFamily, Level2, LpStableFamily, LshTable, MipsFamily,
    ProjectionScratch, SrpFamily, TuningGoal,
};
use rptree::{KMeans, KdPartitioner, Partitioner, RpTree, RpTreeConfig, SinglePartition};
use shortlist::{parallel_fill_with, shortlist_serial_filtered};
use vecstore::{
    total_dist_cmp, Cosine, CosineWithNorms, Dataset, InnerProduct, Lp, Metric, Neighbor,
    PreparedQuery, QuantizedCorpus, SquaredL2, Tombstones,
};

/// The corpus holds more rows than the `u32` row-id space can address.
///
/// Every bucket, shard, and persisted snapshot stores row ids as `u32`;
/// building (or growing) an index past `u32::MAX + 1` rows would silently
/// alias ids under the old `as u32` casts. The builders now refuse with this
/// typed error instead ([`BiLevelIndex::try_build`],
/// [`BiLevelIndex::try_insert_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusTooLarge {
    /// Total rows the operation would have had to address.
    pub rows: usize,
}

impl std::fmt::Display for CorpusTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corpus of {} rows exceeds the u32 row-id space ({} rows max)",
            self.rows,
            u32::MAX
        )
    }
}

impl std::error::Error for CorpusTooLarge {}

/// A mutation was refused; the index is unchanged.
///
/// Every fallible mutation on [`BiLevelIndex`] — [`BiLevelIndex::try_insert_batch`],
/// [`BiLevelIndex::update_by_idx`], [`BiLevelIndex::commit`] — validates its
/// whole input *before* touching any structure, so an `Err` always means the
/// all-or-nothing guarantee held: no row, table, tombstone, or quantized
/// code was modified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// A vector's length does not match the index dimensionality.
    DimMismatch {
        /// The index's dimensionality.
        expected: usize,
        /// The offending vector's length.
        got: usize,
    },
    /// The batch contained no vectors (inserts must produce an id).
    EmptyBatch,
    /// The mutation would grow the corpus past the `u32` row-id space.
    CorpusTooLarge(CorpusTooLarge),
    /// An update or delete referenced a row id at or past the corpus length.
    IdOutOfRange {
        /// The offending row id.
        id: usize,
        /// The corpus length at validation time.
        len: usize,
    },
}

impl From<CorpusTooLarge> for InsertError {
    fn from(e: CorpusTooLarge) -> Self {
        InsertError::CorpusTooLarge(e)
    }
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::DimMismatch { expected, got } => {
                write!(f, "insert dimension mismatch: index dim {expected}, vector dim {got}")
            }
            InsertError::EmptyBatch => write!(f, "insert_batch requires at least one vector"),
            InsertError::CorpusTooLarge(e) => e.fmt(f),
            InsertError::IdOutOfRange { id, len } => {
                write!(f, "row id {id} out of range for corpus of {len} rows")
            }
        }
    }
}

impl std::error::Error for InsertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InsertError::CorpusTooLarge(e) => Some(e),
            _ => None,
        }
    }
}

/// Guards the `u32` row-id invariant. Corpora of `2^32` rows or more are
/// refused: besides ids `0..rows`, shard bounds and run endpoints also
/// round-trip through `u32`, so the row *count* itself must fit.
pub(crate) fn check_id_space(rows: usize) -> Result<(), CorpusTooLarge> {
    if rows as u64 > u32::MAX as u64 {
        Err(CorpusTooLarge { rows })
    } else {
        Ok(())
    }
}

/// Level-1 partitioner, enum-dispatched (all variants are `Partitioner`s).
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub(crate) enum Level1 {
    Single(SinglePartition),
    Rp(RpTree),
    Km(KMeans),
    Kd(KdPartitioner),
}

impl Level1 {
    pub(crate) fn assign(&self, v: &[f32]) -> usize {
        match self {
            Level1::Single(p) => p.assign(v),
            Level1::Rp(p) => p.assign(v),
            Level1::Km(p) => p.assign(v),
            Level1::Kd(p) => p.assign(v),
        }
    }

    pub(crate) fn num_groups(&self) -> usize {
        match self {
            Level1::Single(p) => p.num_groups(),
            Level1::Rp(p) => p.num_groups(),
            Level1::Km(p) => p.num_groups(),
            Level1::Kd(p) => p.num_groups(),
        }
    }
}

impl Partitioner for Level1 {
    fn assign(&self, v: &[f32]) -> usize {
        Level1::assign(self, v)
    }

    fn num_groups(&self) -> usize {
        Level1::num_groups(self)
    }
}

/// Fits the level-1 partitioner on `data`, returning it with the per-row
/// assignments. Shared by the in-memory builders and the out-of-core
/// sample-fit phase (which fits on a sample and discards the assignments).
pub(crate) fn fit_level1(data: &Dataset, config: &BiLevelConfig) -> (Level1, Vec<usize>) {
    match config.partition {
        Partition::None => (Level1::Single(SinglePartition), vec![0usize; data.len()]),
        Partition::RpTree { groups, rule } => {
            let cfg = RpTreeConfig::with_leaves(groups).rule(rule).seed(config.seed ^ 0xA11);
            let (tree, assign) = RpTree::fit(data, &cfg);
            (Level1::Rp(tree), assign)
        }
        Partition::KMeans { groups } => {
            let (km, assign) = KMeans::fit(data, groups, 50, config.seed ^ 0xB22);
            (Level1::Km(km), assign)
        }
        Partition::Kd { groups } => {
            let (kd, assign) = KdPartitioner::fit(data, groups);
            (Level1::Kd(kd), assign)
        }
    }
}

/// Hierarchy over one table's occupied buckets.
pub(crate) enum TableHierarchy {
    Zm(ZmHierarchy),
    E8(E8Hierarchy),
}

/// One `(group, table)` hash table plus its probing metadata.
pub(crate) struct GroupTable {
    /// Level-2 hash functions for this group/table pair (group-specific
    /// `W` where the family has one).
    pub(crate) family: Level2,
    /// Bucket storage keyed by the full lattice code.
    pub(crate) table: LshTable,
    /// Distinct bucket codes; the hierarchy speaks in indices into this.
    pub(crate) bucket_codes: Vec<Box<[i32]>>,
    /// Escalation structure (built only for `Probe::Hierarchical`).
    pub(crate) hierarchy: Option<TableHierarchy>,
}

/// A borrowed view of the probe machinery: level-1 assignment plus a table
/// forest to probe. [`BiLevelIndex`] probes its own tables through this;
/// the sharded layer (`crate::shard`) probes each shard's tables with the
/// *same* partitioner and config, which is what keeps per-shard candidate
/// unions identical to the unsharded candidate set.
pub(crate) struct ProbeCtx<'i> {
    pub(crate) level1: &'i Level1,
    pub(crate) tables: &'i [Vec<GroupTable>],
    pub(crate) config: &'i BiLevelConfig,
}

impl ProbeCtx<'_> {
    /// The tables of group `g` this query probes: all `l` of them without a
    /// pool, or the `l` most central of the pool (Jégou et al.).
    fn probe_tables(&self, g: usize, v: &[f32], scratch: &mut ProjectionScratch) -> Vec<usize> {
        let per_group = self.tables[g].len();
        if self.config.table_pool.is_none() || per_group <= self.config.l {
            return (0..per_group).collect();
        }
        let mut scored: Vec<(f64, usize)> = (0..per_group)
            .map(|t| {
                (lsh::centrality_score(scratch.project_query(&self.tables[g][t].family, v)), t)
            })
            .collect();
        // `total_cmp` keeps the table ordering total even if a degenerate
        // projection yields a NaN centrality score (NaN sorts last, so such
        // tables are deprioritized instead of scrambling the sort).
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.into_iter().take(self.config.l).map(|(_, t)| t).collect()
    }

    /// Base candidates (no hierarchy escalation) under an explicit probe
    /// strategy — the built `config.probe` or a degraded rung of its
    /// ladder.
    pub(crate) fn base_candidates(
        &self,
        v: &[f32],
        scratch: &mut ProjectionScratch,
        probe: Probe,
        rec: &dyn Recorder,
    ) -> Vec<u32> {
        let span = SpanTimer::start(rec, Stage::Probe);
        let g = self.level1.assign(v);
        let mut out: Vec<u32> = Vec::new();
        let mut extra_buckets = 0u64;
        for &t in &self.probe_tables(g, v, scratch) {
            let gt = &self.tables[g][t];
            let raw = scratch.project_query(&gt.family, v);
            let home = quantize(raw, self.config.quantizer);
            match probe {
                Probe::Home | Probe::Hierarchical { .. } => {
                    out.extend_from_slice(gt.table.bucket(&home));
                }
                Probe::Multi(t) => {
                    let codes = probe_sequence(raw, &home, t, self.config.quantizer);
                    extra_buckets += (codes.len().saturating_sub(1)) as u64;
                    for code in codes {
                        out.extend_from_slice(gt.table.bucket(&code));
                    }
                }
            }
        }
        if extra_buckets > 0 {
            rec.add(Counter::MultiProbeBuckets, extra_buckets);
        }
        out.sort_unstable();
        out.dedup();
        drop(span);
        out
    }

    /// One escalation round at a fixed per-table bucket budget. Returns the
    /// sorted, deduplicated candidates plus an `exhausted` flag (no table
    /// could fill its budget — the hierarchy has nothing coarser to offer).
    ///
    /// Exposed separately so the sharded path can run rounds in lockstep
    /// across shards: the continue/stop decision needs the *union* size,
    /// which only the coordinator sees.
    pub(crate) fn escalate_round(
        &self,
        v: &[f32],
        scratch: &mut ProjectionScratch,
        want_buckets: usize,
        rec: &dyn Recorder,
    ) -> (Vec<u32>, bool) {
        rec.add(Counter::EscalationRounds, 1);
        let g = self.level1.assign(v);
        let mut out: Vec<u32> = Vec::new();
        let mut exhausted = true;
        for &t in &self.probe_tables(g, v, scratch) {
            let gt = &self.tables[g][t];
            let raw = scratch.project_query(&gt.family, v);
            let home = quantize(raw, self.config.quantizer);
            let bucket_idxs: Vec<u32> = match &gt.hierarchy {
                Some(TableHierarchy::Zm(h)) => h.probe_expanding(&home, want_buckets),
                Some(TableHierarchy::E8(h)) => h.probe_expanding(&home, want_buckets),
                None => Vec::new(),
            };
            if bucket_idxs.len() >= want_buckets {
                exhausted = false;
            }
            for bi in bucket_idxs {
                out.extend_from_slice(gt.table.bucket(&gt.bucket_codes[bi as usize]));
            }
        }
        out.sort_unstable();
        out.dedup();
        (out, exhausted)
    }

    /// Re-probes through the hierarchy until at least `threshold` candidates
    /// are collected (or every bucket has been visited).
    ///
    /// Grows the per-table bucket budget until the combined candidate set
    /// reaches the threshold; each round consults the hierarchy for coarser
    /// spans (paper: "search the LSH table hierarchy to find a suitable
    /// bucket whose size is larger than the threshold").
    pub(crate) fn escalate(
        &self,
        v: &[f32],
        scratch: &mut ProjectionScratch,
        threshold: usize,
        rec: &dyn Recorder,
    ) -> Vec<u32> {
        let span = SpanTimer::start(rec, Stage::Escalate);
        rec.add(Counter::Escalations, 1);
        let mut want_buckets = 2usize;
        loop {
            let (out, exhausted) = self.escalate_round(v, scratch, want_buckets, rec);
            if out.len() >= threshold || exhausted {
                drop(span);
                return out;
            }
            want_buckets *= 2;
        }
    }
}

/// A built Bi-level LSH index over a dataset it borrows.
///
/// Construction partitions the data (level 1), tunes per-group widths, and
/// hashes every item into `L` tables per group (level 2). Queries run in
/// batches through [`BiLevelIndex::query_batch_opts`]; single-query
/// convenience is [`BiLevelIndex::query`].
pub struct BiLevelIndex<'a> {
    /// Borrowed for `build`, owned after `build_owned` or the first
    /// `insert` on a borrowed index.
    pub(crate) data: std::borrow::Cow<'a, Dataset>,
    pub(crate) config: BiLevelConfig,
    pub(crate) level1: Level1,
    /// `tables[group][l]`.
    pub(crate) tables: Vec<Vec<GroupTable>>,
    /// Per-group widths actually used (exposed for inspection/tests).
    pub(crate) group_widths: Vec<f32>,
    /// i8 scalar-quantized mirror of `data`, the cheap first pass behind
    /// [`QueryOptions::rerank`]. Deterministic in `data`, so persistence
    /// rebuilds it instead of serializing it.
    pub(crate) quant: QuantizedCorpus,
    /// Logically deleted rows, filtered out of every short-list at rank
    /// time (including the quantized rerank first pass). Physically removed
    /// only by [`BiLevelIndex::compact`].
    pub(crate) tombstones: Tombstones,
    /// Monotone mutation epoch: bumped once per committed transaction and
    /// once per direct mutation. Persisted with the tombstones so a
    /// reloaded snapshot resumes the same history.
    pub(crate) epoch: u64,
    /// Cached per-row norms for cosine ranking (`None` for every other
    /// metric). Deterministic in `data` — persistence rebuilds it, and
    /// mutations refresh it alongside the quantized mirror.
    pub(crate) rank_norms: Option<CosineWithNorms>,
}

/// Engine selection for a batch query (the `engine` field of
/// [`QueryOptions`]).
///
/// One selection governs the whole pipeline end to end: the probe phase
/// (base candidates plus any hierarchical escalation) runs on the engine's
/// worker count, and the rank phase uses the engine's short-list
/// organization. `Serial` therefore reproduces the paper's single-core
/// baseline exactly — no hidden parallelism anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One size-k max-heap per query on the calling thread (the paper's
    /// single-core CPU baseline).
    Serial,
    /// Queries block-partitioned over worker threads (the "naive"
    /// per-thread-per-query GPU kernel analog).
    PerQuery {
        /// Worker thread count.
        threads: usize,
    },
    /// The batched work-queue pipeline of Figure 3.
    WorkQueue {
        /// Worker thread count.
        threads: usize,
        /// Queue budget in entries (the GPU global-memory analog). Must
        /// exceed `k`; see [`Engine::validate`].
        capacity: usize,
    },
}

impl Engine {
    /// Worker threads this engine runs on (both phases). `Serial` is 1;
    /// the parallel engines never report fewer than one worker.
    pub fn threads(self) -> usize {
        match self {
            Engine::Serial => 1,
            Engine::PerQuery { threads } | Engine::WorkQueue { threads, .. } => threads.max(1),
        }
    }

    /// Checks the engine's parameters against the query's `k`.
    ///
    /// # Panics
    ///
    /// Panics for `Engine::WorkQueue` when `capacity <= k`: the work queue
    /// re-enters each admitted query's running k-best and needs room for at
    /// least one fresh candidate on top, so smaller queues cannot make
    /// progress. This is the same contract `shortlist_workqueue` asserts —
    /// validated here up front instead of silently clamping the capacity.
    pub fn validate(self, k: usize) {
        if let Engine::WorkQueue { capacity, .. } = self {
            assert!(
                capacity > k,
                "work-queue capacity ({capacity}) must exceed k ({k}): each round re-enters a \
                 query's k-best and needs at least one slot for a fresh candidate"
            );
        }
    }
}

/// Result of a batch query.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query approximate k-nearest neighbors, ascending distance.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Per-query short-list candidate count `|A(v)|` (deduplicated), the
    /// numerator of selectivity.
    pub candidates: Vec<usize>,
}

impl<'a> BiLevelIndex<'a> {
    /// Builds the index.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, the configuration is invalid, or the
    /// corpus exceeds the `u32` row-id space (use
    /// [`BiLevelIndex::try_build`] to handle that case as an error).
    pub fn build(data: &'a Dataset, config: &BiLevelConfig) -> Self {
        Self::try_build(data, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BiLevelIndex::build`], but a corpus too large for `u32` row ids is
    /// reported as a typed [`CorpusTooLarge`] error instead of a panic.
    pub fn try_build(data: &'a Dataset, config: &BiLevelConfig) -> Result<Self, CorpusTooLarge> {
        Self::build_cow(std::borrow::Cow::Borrowed(data), config)
    }

    /// Builds an index that owns its dataset — required for
    /// [`BiLevelIndex::insert`] without a copy, and for moving the index
    /// across threads or scopes independently of the source data.
    pub fn build_owned(data: Dataset, config: &BiLevelConfig) -> BiLevelIndex<'static> {
        BiLevelIndex::try_build_owned(data, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BiLevelIndex::build_owned`] with the [`CorpusTooLarge`] case as a
    /// typed error.
    pub fn try_build_owned(
        data: Dataset,
        config: &BiLevelConfig,
    ) -> Result<BiLevelIndex<'static>, CorpusTooLarge> {
        BiLevelIndex::build_cow(std::borrow::Cow::Owned(data), config)
    }

    fn build_cow(
        cow: std::borrow::Cow<'a, Dataset>,
        config: &BiLevelConfig,
    ) -> Result<Self, CorpusTooLarge> {
        config.validate();
        assert!(!cow.is_empty(), "cannot index an empty dataset");
        check_id_space(cow.len())?;
        let data: &Dataset = &cow;
        let config = config.clone();

        // ---- Level 1: partition the dataset. ----
        let (level1, assignments) = fit_level1(data, &config);
        let num_groups = level1.num_groups();
        let mut group_ids: Vec<Vec<u32>> = vec![Vec::new(); num_groups];
        for (i, &g) in assignments.iter().enumerate() {
            group_ids[g].push(u32::try_from(i).expect("row count checked against u32 id space"));
        }

        // ---- Per-group bucket widths. ----
        let group_widths = compute_group_widths(data, &group_ids, &config);

        // ---- Level 2: hash every group into L tables. Groups are
        // independent, so the work fans out over worker threads; results
        // are written into pre-sized slots, keeping the build
        // deterministic regardless of scheduling. ----
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mips_scale = match config.family {
            FamilyKind::Mips => mips_corpus_scale(data),
            _ => 1.0,
        };
        let tables =
            build_group_tables(data, &group_ids, &group_widths, &config, mips_scale, threads);

        let quant = QuantizedCorpus::from_dataset(data);
        let rank_norms =
            matches!(config.metric, MetricKind::Cosine).then(|| CosineWithNorms::new(data));
        Ok(Self {
            data: cow,
            config,
            level1,
            tables,
            group_widths,
            quant,
            tombstones: Tombstones::new(),
            epoch: 0,
            rank_norms,
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &BiLevelConfig {
        &self.config
    }

    /// Number of level-1 groups actually produced.
    pub fn num_groups(&self) -> usize {
        self.level1.num_groups()
    }

    /// The per-group bucket widths in effect.
    pub fn group_widths(&self) -> &[f32] {
        &self.group_widths
    }

    /// The dataset the index was built over.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The probe machinery over this index's tables. The sharded layer
    /// builds the same view over each shard's tables, sharing the level-1
    /// partitioner.
    pub(crate) fn probe_ctx(&self) -> ProbeCtx<'_> {
        ProbeCtx { level1: &self.level1, tables: &self.tables, config: &self.config }
    }

    /// Collects the deduplicated short-list candidate set `A(v)` for one
    /// query under the *base* probing strategy (no hierarchy escalation).
    ///
    /// `scratch` is the worker-local projection buffer of the parallel
    /// pipeline; probing holds no other mutable state, so `&self` probes of
    /// different queries can run concurrently, one scratch per worker.
    fn base_candidates(
        &self,
        v: &[f32],
        scratch: &mut ProjectionScratch,
        rec: &dyn Recorder,
    ) -> Vec<u32> {
        self.probe_ctx().base_candidates(v, scratch, self.config.probe, rec)
    }

    /// Re-probes through the hierarchy until at least `threshold` candidates
    /// are collected (or every bucket has been visited).
    fn escalate(
        &self,
        v: &[f32],
        scratch: &mut ProjectionScratch,
        threshold: usize,
        rec: &dyn Recorder,
    ) -> Vec<u32> {
        self.probe_ctx().escalate(v, scratch, threshold, rec)
    }

    /// Batch k-nearest-neighbor query under a [`QueryOptions`] value — the
    /// single entry point every legacy `query_batch*` variant delegates to
    /// (see [`crate::compat`] for the deprecated shims).
    ///
    /// `options.probe` selects the escalation rule: `None` uses the built
    /// probe with batch-median escalation (the paper's rule); `Some(p)`
    /// probes `p` under the batch-invariant fixed-floor rule the serving
    /// layer relies on. See [`QueryOptions`] for the full contract.
    ///
    /// Pipeline events (probe/escalate/rank timings, candidate counts,
    /// escalation counters) are reported to `options.recorder`; with the
    /// default noop recorder the pipeline runs uninstrumented and results
    /// are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if [`Engine::validate`] rejects the engine for this `k`, or
    /// if `options.probe` is incompatible with the built index
    /// (see [`BiLevelIndex::supports_probe`]).
    pub fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchResult {
        let rec = options.recorder;
        options.engine.validate(options.k);
        let threads = options.engine.threads();
        let candidates = match options.probe {
            None => self.candidates_batch_rec(queries, threads, rec),
            Some(probe) => self.candidates_batch_at_rec(queries, threads, probe, rec),
        };
        if rec.enabled() {
            rec.add(Counter::QueriesProbed, queries.len() as u64);
            let total: usize = candidates.iter().map(Vec::len).sum();
            rec.add(Counter::CandidatesGenerated, total as u64);
            for c in &candidates {
                rec.observe(Value::CandidatesPerQuery, c.len() as u64);
            }
        }
        // `candidates` reports the probe phase's short-list sizes (the
        // selectivity numerator), so counts are taken before any pruning —
        // and before tombstone filtering, which is a rank-time concern.
        let counts: Vec<usize> = candidates.iter().map(Vec::len).collect();
        if rec.enabled() && !self.tombstones.is_empty() {
            let dead: u64 =
                candidates.iter().flatten().filter(|&&id| self.tombstones.contains(id)).count()
                    as u64;
            if dead > 0 {
                rec.add(Counter::TombstonedFiltered, dead);
            }
        }
        let candidates = match options.rerank {
            None => candidates,
            Some(depth) => {
                // The quantized first pass scores in (approximate) squared
                // L2, so its cut only agrees with the final ranking under
                // the L2 metric.
                assert!(
                    self.config.metric == MetricKind::L2,
                    "rerank requires the l2 metric (index metric is {})",
                    self.config.metric.name()
                );
                self.prune_candidates(queries, candidates, depth.max(options.k).max(1), rec)
            }
        };
        let rank_span = SpanTimer::start(rec, Stage::Rank);
        let neighbors = rank_by_metric(
            &self.data,
            queries,
            &candidates,
            options.k,
            options.engine,
            Some(&self.tombstones),
            self.config.metric,
            self.rank_norms.as_ref(),
        );
        drop(rank_span);
        BatchResult { neighbors, candidates: counts }
    }

    /// Quantized first pass behind [`QueryOptions::rerank`]: each candidate
    /// list longer than `depth` is scored against the i8 quantized corpus
    /// and cut to its `depth` approximately-nearest ids (ties broken toward
    /// the smaller id); shorter lists pass through untouched. Survivors are
    /// re-sorted ascending by id, so the exact rank stage sees a subset of
    /// the original list in its original order — with `depth` at least the
    /// list length the pipeline is bit-identical to the unpruned one.
    fn prune_candidates(
        &self,
        queries: &Dataset,
        mut candidates: Vec<Vec<u32>>,
        depth: usize,
        rec: &dyn Recorder,
    ) -> Vec<Vec<u32>> {
        // Tombstoned candidates must not occupy depth slots: a deleted row
        // surviving the quantized cut would both waste a rerank slot and
        // shadow a live row that deserved one. Filtering here keeps the
        // rerank path's effective depth equal to the exact path's.
        if !self.tombstones.is_empty() {
            for ids in candidates.iter_mut() {
                ids.retain(|&id| !self.tombstones.contains(id));
            }
        }
        let mut prep = PreparedQuery::default();
        let mut scores: Vec<f32> = Vec::new();
        let (mut dropped, mut survived) = (0u64, 0u64);
        for (q, ids) in candidates.iter_mut().enumerate() {
            if ids.len() <= depth {
                continue;
            }
            self.quant.prepare_into(queries.row(q), &mut prep);
            scores.clear();
            self.quant.approx_scores_into(&prep, ids, &mut scores);
            let mut keyed: Vec<(f32, u32)> =
                scores.iter().copied().zip(ids.iter().copied()).collect();
            keyed.select_nth_unstable_by(depth - 1, |a, b| {
                total_dist_cmp(a.0, b.0).then_with(|| a.1.cmp(&b.1))
            });
            keyed.truncate(depth);
            dropped += (ids.len() - depth) as u64;
            survived += depth as u64;
            ids.clear();
            ids.extend(keyed.iter().map(|&(_, id)| id));
            ids.sort_unstable();
        }
        if dropped > 0 {
            rec.add(Counter::CandidatesPruned, dropped);
            rec.add(Counter::CandidatesReranked, survived);
        }
        candidates
    }

    /// Whether `probe` can be answered by this built index. `Home` and
    /// `Multi` are query-time-only strategies and work on any index;
    /// `Hierarchical` needs the per-table hierarchies, which are only built
    /// when the index was configured hierarchical.
    pub fn supports_probe(&self, probe: Probe) -> bool {
        match probe {
            Probe::Home | Probe::Multi(_) => true,
            Probe::Hierarchical { .. } => {
                matches!(self.config.probe, Probe::Hierarchical { .. })
            }
        }
    }

    /// Candidate generation under an explicit probe strategy with the
    /// batch-invariant fixed-floor escalation rule
    /// (see [`BiLevelIndex::query_batch_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `probe` is incompatible with the built index.
    pub fn candidates_batch_at(
        &self,
        queries: &Dataset,
        threads: usize,
        probe: Probe,
    ) -> Vec<Vec<u32>> {
        self.candidates_batch_at_rec(queries, threads, probe, &knn_telemetry::NOOP)
    }

    /// [`BiLevelIndex::candidates_batch_at`] with a telemetry sink; the
    /// worker closures report per-query probe/escalate events into `rec`.
    fn candidates_batch_at_rec(
        &self,
        queries: &Dataset,
        threads: usize,
        probe: Probe,
        rec: &dyn Recorder,
    ) -> Vec<Vec<u32>> {
        assert_eq!(queries.dim(), self.data.dim(), "query dimension mismatch");
        assert!(
            self.supports_probe(probe),
            "probe {probe:?} needs hierarchies the index was not built with"
        );
        let ctx = self.probe_ctx();
        let mut base: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        parallel_fill_with(
            &mut base,
            threads,
            || ProjectionScratch::new(self.config.m),
            |scratch, q, slot| {
                *slot = ctx.base_candidates(queries.row(q), scratch, probe, rec);
                if let Probe::Hierarchical { min_candidates } = probe {
                    if slot.len() < min_candidates {
                        *slot = ctx.escalate(queries.row(q), scratch, min_candidates, rec);
                    }
                }
            },
        );
        base
    }

    /// The candidate sets a batch of queries would rank, after any
    /// hierarchical escalation, generated on all available cores. Exposed
    /// for the benchmark harnesses, which feed the sets to the different
    /// short-list engines; [`BiLevelIndex::candidates_batch_with`] controls
    /// the worker count explicitly.
    pub fn candidates_batch(&self, queries: &Dataset) -> Vec<Vec<u32>> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.candidates_batch_with(queries, threads)
    }

    /// Candidate generation on `threads` workers.
    ///
    /// Queries are block-partitioned over the pool (the same fan-out the
    /// table build uses), each worker carrying its own
    /// [`ProjectionScratch`]; per-query probes are independent, so results
    /// are byte-identical to the serial path (`threads == 1`) regardless of
    /// scheduling. For `Probe::Hierarchical` the escalation threshold — the
    /// batch median of base sizes — is computed at a barrier between the
    /// two passes, then the starved queries escalate on the same pool.
    pub fn candidates_batch_with(&self, queries: &Dataset, threads: usize) -> Vec<Vec<u32>> {
        self.candidates_batch_rec(queries, threads, &knn_telemetry::NOOP)
    }

    /// [`BiLevelIndex::candidates_batch_with`] with a telemetry sink; the
    /// worker closures report per-query probe/escalate events into `rec`.
    fn candidates_batch_rec(
        &self,
        queries: &Dataset,
        threads: usize,
        rec: &dyn Recorder,
    ) -> Vec<Vec<u32>> {
        assert_eq!(queries.dim(), self.data.dim(), "query dimension mismatch");
        let mut base: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        parallel_fill_with(
            &mut base,
            threads,
            || ProjectionScratch::new(self.config.m),
            |scratch, q, slot| *slot = self.base_candidates(queries.row(q), scratch, rec),
        );
        if let Probe::Hierarchical { min_candidates } = self.config.probe {
            // Median of base sizes, floored by the configured minimum.
            let mut sizes: Vec<usize> = base.iter().map(Vec::len).collect();
            sizes.sort_unstable();
            let median = sizes[sizes.len() / 2].max(min_candidates);
            // Starved queries escalate independently — fan them out too.
            let mut jobs: Vec<(usize, Vec<u32>)> = base
                .iter()
                .enumerate()
                .filter(|(_, c)| c.len() < median)
                .map(|(q, _)| (q, Vec::new()))
                .collect();
            parallel_fill_with(
                &mut jobs,
                threads,
                || ProjectionScratch::new(self.config.m),
                |scratch, _, job| job.1 = self.escalate(queries.row(job.0), scratch, median, rec),
            );
            for (q, cands) in jobs {
                base[q] = cands;
            }
        }
        base
    }

    /// Single-query convenience over [`BiLevelIndex::query_batch_opts`]
    /// with default options.
    pub fn query(&self, v: &[f32], k: usize) -> Vec<Neighbor> {
        let mut q = Dataset::new(self.data.dim());
        q.push(v);
        self.query_batch_opts(&q, &QueryOptions::new(k))
            .neighbors
            .pop()
            .expect("one query in, one result out")
    }

    /// Inserts one vector into the index, returning its new id.
    ///
    /// The vector is assigned to its level-1 group (the partitioner is
    /// *not* refitted — the tree keeps the geometry it learned at build
    /// time, as in any online LSH deployment) and hashed into that group's
    /// `L` tables. On an index built with [`BiLevelIndex::build`] (borrowed
    /// data) the first insert clones the dataset; build with
    /// [`BiLevelIndex::build_owned`] to avoid that.
    ///
    /// Bucket hierarchies of the affected tables are rebuilt immediately;
    /// use [`BiLevelIndex::insert_batch`] to amortize that over many
    /// insertions.
    pub fn insert(&mut self, v: &[f32]) -> usize {
        self.insert_batch(std::iter::once(v))
    }

    /// Inserts many vectors, rebuilding each affected hierarchy once at the
    /// end. Returns the id of the *first* inserted vector (ids are
    /// consecutive from there).
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch, an empty iterator, or a corpus
    /// growing past the `u32` row-id space (use
    /// [`BiLevelIndex::try_insert_batch`] to handle those cases as typed
    /// [`InsertError`]s).
    pub fn insert_batch<'v, I>(&mut self, vectors: I) -> usize
    where
        I: IntoIterator<Item = &'v [f32]>,
    {
        self.try_insert_batch(vectors).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BiLevelIndex::insert_batch`] with every refusal as a typed
    /// [`InsertError`]: dimension mismatch, empty batch, and a batch that
    /// would push the corpus past the `u32` row-id space.
    ///
    /// All-or-nothing: the whole batch is buffered and validated *before*
    /// the first structural mutation, so on `Err` the index — data, tables,
    /// quantized mirror, tombstones, epoch — is exactly as it was.
    pub fn try_insert_batch<'v, I>(&mut self, vectors: I) -> Result<usize, InsertError>
    where
        I: IntoIterator<Item = &'v [f32]>,
    {
        // Buffer the batch up front: validation must pass before the first
        // table mutation for the all-or-nothing contract, and the buffered
        // rows feed the quantized mirror afterwards.
        let mut batch = Dataset::new(self.data.dim());
        for v in vectors {
            if v.len() != self.data.dim() {
                return Err(InsertError::DimMismatch { expected: self.data.dim(), got: v.len() });
            }
            batch.push(v);
        }
        if batch.is_empty() {
            return Err(InsertError::EmptyBatch);
        }
        check_id_space(self.data.len() + batch.len())?;
        let mut touched = self.touched_bitset();
        let first_id = self.stage_inserts(&batch, &mut touched);
        self.rebuild_touched(&touched);
        self.epoch += 1;
        Ok(first_id)
    }

    /// Overwrites row `idx` with `v` in place: the row keeps its id, its
    /// old hash entries are removed, the new vector is re-hashed into its
    /// (possibly different) level-1 group, and the quantized mirror row is
    /// re-encoded. If the row was tombstoned it is revived — update is an
    /// upsert over an existing slot.
    ///
    /// All-or-nothing: validation happens before any mutation, so the index
    /// is unchanged on `Err`.
    pub fn update_by_idx(&mut self, idx: usize, v: &[f32]) -> Result<(), InsertError> {
        if v.len() != self.data.dim() {
            return Err(InsertError::DimMismatch { expected: self.data.dim(), got: v.len() });
        }
        if idx >= self.data.len() {
            return Err(InsertError::IdOutOfRange { id: idx, len: self.data.len() });
        }
        let mut touched = self.touched_bitset();
        self.stage_update(idx, v, &mut touched);
        self.rebuild_touched(&touched);
        self.epoch += 1;
        Ok(())
    }

    /// Logically deletes row `id`: its slot stays in the dataset, tables,
    /// and quantized mirror, but the id is tombstoned and filtered out of
    /// every short-list at rank time (including the `rerank` first pass).
    /// Returns `true` if the row was newly tombstoned, `false` if it
    /// already was.
    ///
    /// # Panics
    ///
    /// Panics if `id` is at or past the corpus length.
    pub fn delete(&mut self, id: usize) -> bool {
        assert!(id < self.data.len(), "delete id {id} out of range ({} rows)", self.data.len());
        let newly = self.tombstones.set(id as u32);
        if newly {
            self.epoch += 1;
        }
        newly
    }

    /// Whether row `id` is tombstoned.
    pub fn is_deleted(&self, id: usize) -> bool {
        id < self.data.len() && self.tombstones.contains(id as u32)
    }

    /// The tombstone bitmap — the accessor the read path and the serving
    /// layer use; the field itself stays crate-private.
    pub fn deleted(&self) -> &Tombstones {
        &self.tombstones
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_len(&self) -> usize {
        self.data.len() - self.tombstones.count()
    }

    /// The mutation epoch: bumped once per committed transaction and once
    /// per direct mutation, persisted with snapshots.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Opens a staging transaction against this index's dimensionality.
    /// Stage inserts/updates/deletes on the returned [`Txn`], then apply
    /// them atomically with [`BiLevelIndex::commit`]. The index is not
    /// borrowed while staging, so a writer can assemble a batch while
    /// readers keep querying the current state.
    pub fn begin_txn(&self) -> Txn {
        Txn {
            dim: self.data.dim(),
            inserts: Dataset::new(self.data.dim()),
            updates: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Applies a staged transaction in one atomic step.
    ///
    /// The whole batch is validated first — dimensions at staging time, row
    /// ranges and id-space growth here — and only then applied, in the
    /// order *deletes → updates → inserts*, followed by a single epoch
    /// bump. On `Err` nothing was applied. Readers holding `&self` across
    /// the commit boundary (e.g. through the serving layer's lock) observe
    /// either the pre-commit or the post-commit state, never a partially
    /// applied batch.
    ///
    /// An update staged for a tombstoned (or same-txn-deleted) row revives
    /// it, giving upsert semantics; updates and deletes may only reference
    /// rows that existed before the commit.
    pub fn commit(&mut self, txn: Txn) -> Result<TxnSummary, InsertError> {
        // ---- Validate everything before mutating anything. ----
        if txn.dim != self.data.dim() {
            return Err(InsertError::DimMismatch { expected: self.data.dim(), got: txn.dim });
        }
        if txn.is_empty() {
            // A no-op commit must not advance the visibility epoch.
            return Ok(TxnSummary {
                first_inserted_id: None,
                inserted: 0,
                updated: 0,
                deleted: 0,
                epoch: self.epoch,
            });
        }
        check_id_space(self.data.len() + txn.inserts.len())?;
        let len = self.data.len();
        for &(id, _) in &txn.updates {
            if id >= len {
                return Err(InsertError::IdOutOfRange { id, len });
            }
        }
        for &id in &txn.deletes {
            if id >= len {
                return Err(InsertError::IdOutOfRange { id, len });
            }
        }
        // ---- Apply: deletes → updates → inserts, one epoch bump. ----
        let mut deleted = 0usize;
        for &id in &txn.deletes {
            if self.tombstones.set(id as u32) {
                deleted += 1;
            }
        }
        let mut touched = self.touched_bitset();
        for (id, v) in &txn.updates {
            self.stage_update(*id, v, &mut touched);
        }
        let first_inserted_id = if txn.inserts.is_empty() {
            None
        } else {
            Some(self.stage_inserts(&txn.inserts, &mut touched))
        };
        self.rebuild_touched(&touched);
        self.epoch += 1;
        Ok(TxnSummary {
            first_inserted_id,
            inserted: txn.inserts.len(),
            updated: txn.updates.len(),
            deleted,
            epoch: self.epoch,
        })
    }

    /// Rebuilds the index from scratch over its surviving (non-tombstoned)
    /// rows, compacting away deleted slots. Rows are renumbered: new id `i`
    /// is old id `result[i]` — the returned vector is the old-id list in
    /// ascending order. The rebuilt index is *identical* to
    /// [`BiLevelIndex::build_owned`] over the surviving rows with the same
    /// config (that is the recall-equivalence proof the mutation tests
    /// assert bit-for-bit); only the epoch carries over, bumped once.
    ///
    /// # Panics
    ///
    /// Panics if every row is tombstoned (an index cannot be empty).
    pub fn compact(&mut self) -> Vec<usize> {
        let survivors: Vec<usize> =
            (0..self.data.len()).filter(|&i| !self.tombstones.contains(i as u32)).collect();
        assert!(!survivors.is_empty(), "cannot compact a fully deleted index");
        let surviving = self.data.gather(&survivors);
        let mut rebuilt = BiLevelIndex::build_owned(surviving, &self.config);
        rebuilt.epoch = self.epoch + 1;
        *self = rebuilt;
        survivors
    }

    /// Fraction of rows currently tombstoned.
    pub fn tombstone_fraction(&self) -> f64 {
        self.tombstones.fraction(self.data.len())
    }

    /// Live-occupancy skew across level-1 groups: the largest group's live
    /// row count over the mean live count (1.0 = perfectly balanced,
    /// `NaN`-free; 0 rows or 1 group reports 1.0). Churn concentrated in a
    /// few leaves drives this up, which is the drift signal
    /// [`BiLevelIndex::maybe_compact`] watches.
    pub fn occupancy_skew(&self) -> f64 {
        let groups = self.tables.len();
        if groups <= 1 {
            return 1.0;
        }
        let live_of = |g: usize| -> usize {
            // Table 0 of each group holds exactly the group's rows.
            self.tables[g]
                .first()
                .map(|gt| {
                    gt.table
                        .iter()
                        .flat_map(|(_, ids)| ids)
                        .filter(|&&id| !self.tombstones.contains(id))
                        .count()
                })
                .unwrap_or(0)
        };
        let counts: Vec<usize> = (0..groups).map(live_of).collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / groups as f64;
        counts.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// Compacts when either [`CompactionPolicy`] threshold is crossed,
    /// returning the surviving-old-id map when a compaction ran (see
    /// [`BiLevelIndex::compact`]) and `None` when the index is still within
    /// policy. A fully deleted index never auto-compacts (there would be
    /// nothing to rebuild over).
    pub fn maybe_compact(&mut self, policy: &CompactionPolicy) -> Option<Vec<usize>> {
        if self.live_len() == 0 {
            return None;
        }
        let drifted = self.tombstone_fraction() > policy.max_tombstone_fraction
            || self.occupancy_skew() > policy.max_occupancy_skew;
        drifted.then(|| self.compact())
    }

    /// An all-zero touched-(group, table) bitset sized for this index (see
    /// [`BiLevelIndex::rebuild_touched`]).
    fn touched_bitset(&self) -> Vec<u64> {
        let slots = self.tables.len() * self.tables_per_group();
        vec![0u64; slots.div_ceil(64)]
    }

    fn tables_per_group(&self) -> usize {
        self.config.table_pool.unwrap_or(self.config.l)
    }

    /// Appends `batch`'s rows to the data, tables, and quantized mirror,
    /// marking touched tables in `touched`. Callers must have validated the
    /// batch (non-empty, dims, id space) and must call
    /// [`BiLevelIndex::rebuild_touched`] afterwards.
    fn stage_inserts(&mut self, batch: &Dataset, touched: &mut [u64]) -> usize {
        let first_id = self.data.len();
        let mut scratch = ProjectionScratch::new(self.config.m);
        // Touched (group, table) pairs as a bitset: constant memory in the
        // batch size, instead of one pair per vector per table (O(n·L)
        // intermediate growth before dedup).
        let tables_per_group = self.tables_per_group();
        for v in batch.iter() {
            let id = u32::try_from(self.data.len()).expect("batch checked against u32 id space");
            self.data.to_mut().push(v);
            let g = self.level1.assign(v);
            for (l, gt) in self.tables[g].iter_mut().enumerate() {
                let code = quantize(scratch.project_data(&gt.family, v), self.config.quantizer);
                gt.table.insert(&code, id);
                let bit = g * tables_per_group + l;
                touched[bit / 64] |= 1 << (bit % 64);
            }
        }
        self.quant.append_rows(batch);
        first_id
    }

    /// Re-homes row `idx` to the value `v`: removes its old hash entries,
    /// overwrites the stored row, re-hashes into the new group's tables,
    /// re-encodes the quantized mirror row, and clears any tombstone.
    /// Callers must have validated `idx`/dims and must call
    /// [`BiLevelIndex::rebuild_touched`] afterwards.
    fn stage_update(&mut self, idx: usize, v: &[f32], touched: &mut [u64]) {
        let id = idx as u32;
        let tables_per_group = self.tables_per_group();
        let mut scratch = ProjectionScratch::new(self.config.m);
        // The old value's codes locate its existing bucket entries; the
        // projection is deterministic, so recomputing them finds exactly
        // the entries inserted at build/insert/previous-update time.
        let old = self.data.row(idx).to_vec();
        let g_old = self.level1.assign(&old);
        for (l, gt) in self.tables[g_old].iter_mut().enumerate() {
            let code = quantize(scratch.project_data(&gt.family, &old), self.config.quantizer);
            if gt.table.remove(&code, id) {
                let bit = g_old * tables_per_group + l;
                touched[bit / 64] |= 1 << (bit % 64);
            }
        }
        self.data.to_mut().row_mut(idx).copy_from_slice(v);
        let g_new = self.level1.assign(v);
        for (l, gt) in self.tables[g_new].iter_mut().enumerate() {
            let code = quantize(scratch.project_data(&gt.family, v), self.config.quantizer);
            gt.table.insert(&code, id);
            let bit = g_new * tables_per_group + l;
            touched[bit / 64] |= 1 << (bit % 64);
        }
        self.quant.update_row(idx, v);
        self.tombstones.clear(id);
    }

    /// Refreshes bucket code lists and hierarchies of the touched tables,
    /// in ascending (group, table) order as the set bits are walked. A
    /// table emptied by updates drops its hierarchy.
    fn rebuild_touched(&mut self, touched: &[u64]) {
        let tables_per_group = self.tables_per_group();
        let rebuild = matches!(self.config.probe, Probe::Hierarchical { .. });
        for (word_idx, &word) in touched.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = word_idx * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (g, l) = (bit / tables_per_group, bit % tables_per_group);
                let gt = &mut self.tables[g][l];
                gt.bucket_codes = gt.table.sorted_codes();
                gt.hierarchy = if rebuild && !gt.bucket_codes.is_empty() {
                    Some(build_table_hierarchy(&gt.bucket_codes, self.config.quantizer))
                } else {
                    None
                };
            }
        }
        self.refresh_rank_state();
    }

    /// Recomputes metric-dependent rank-time caches after a mutation batch.
    /// Like the quantized mirror, the cosine norm cache is kept as a full
    /// recompute: mutations are batched, and the cache is a single pass
    /// over the rows.
    fn refresh_rank_state(&mut self) {
        if matches!(self.config.metric, MetricKind::Cosine) {
            self.rank_norms = Some(CosineWithNorms::new(&self.data));
        }
    }
}

/// A staged batch of mutations, applied atomically by
/// [`BiLevelIndex::commit`]. Created by [`BiLevelIndex::begin_txn`].
///
/// Staging validates dimensions immediately (typed, all-or-nothing at the
/// staging call); row-range and id-space validation happens at commit, so
/// a transaction staged against a stale view still either fully applies or
/// fully refuses.
#[derive(Debug, Clone)]
pub struct Txn {
    dim: usize,
    inserts: Dataset,
    updates: Vec<(usize, Vec<f32>)>,
    deletes: Vec<usize>,
}

impl Txn {
    /// Stages an insert. The row id is assigned at commit (consecutive from
    /// the corpus length, in staging order).
    pub fn insert(&mut self, v: &[f32]) -> Result<(), InsertError> {
        if v.len() != self.dim {
            return Err(InsertError::DimMismatch { expected: self.dim, got: v.len() });
        }
        self.inserts.push(v);
        Ok(())
    }

    /// Stages an in-place update of row `id` (range-checked at commit).
    pub fn update(&mut self, id: usize, v: &[f32]) -> Result<(), InsertError> {
        if v.len() != self.dim {
            return Err(InsertError::DimMismatch { expected: self.dim, got: v.len() });
        }
        self.updates.push((id, v.to_vec()));
        Ok(())
    }

    /// Stages a tombstone delete of row `id` (range-checked at commit).
    pub fn delete(&mut self, id: usize) {
        self.deletes.push(id);
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.updates.len() + self.deletes.len()
    }

    /// Whether nothing is staged (committing an empty txn is a no-op that
    /// still bumps the epoch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a committed transaction did ([`BiLevelIndex::commit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnSummary {
    /// Id of the first inserted row (`None` if the txn staged no inserts);
    /// inserted ids are consecutive from here in staging order.
    pub first_inserted_id: Option<usize>,
    /// Rows inserted.
    pub inserted: usize,
    /// Rows updated in place.
    pub updated: usize,
    /// Rows *newly* tombstoned (already-deleted rows don't re-count).
    pub deleted: usize,
    /// The epoch after the commit's bump.
    pub epoch: u64,
}

/// Thresholds for [`BiLevelIndex::maybe_compact`]: compaction triggers when
/// the tombstone fraction or the live-occupancy skew across level-1 groups
/// exceeds its bound. Defaults: 30% tombstones, 4× skew.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Compact when `tombstone_fraction() > max_tombstone_fraction`.
    pub max_tombstone_fraction: f64,
    /// Compact when `occupancy_skew() > max_occupancy_skew`.
    pub max_occupancy_skew: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self { max_tombstone_fraction: 0.3, max_occupancy_skew: 4.0 }
    }
}

/// Builds every group's `L` hash tables, fanning groups out over worker
/// threads via the same primitive the query pipeline uses. Deterministic:
/// each `(group, table)` slot depends only on the config seed, the group's
/// ids, and its width.
fn build_group_tables(
    data: &Dataset,
    group_ids: &[Vec<u32>],
    group_widths: &[f32],
    config: &BiLevelConfig,
    mips_scale: f32,
    threads: usize,
) -> Vec<Vec<GroupTable>> {
    let build_hierarchy = matches!(config.probe, Probe::Hierarchical { .. });
    // With a query-adaptive pool configured, every group materializes the
    // full pool; queries later pick the `l` most central tables.
    let tables_per_group = config.table_pool.unwrap_or(config.l);
    let mut tables: Vec<Vec<GroupTable>> = Vec::new();
    tables.resize_with(group_ids.len(), Vec::new);
    parallel_fill_with(
        &mut tables,
        threads,
        || ProjectionScratch::new(config.m),
        |scratch, g, slot| {
            let mut per_table = Vec::with_capacity(tables_per_group);
            for l in 0..tables_per_group {
                let family =
                    sample_level2(data.dim(), config, l as u64, group_widths[g], mips_scale);
                let mut table = LshTable::new();
                for &id in &group_ids[g] {
                    let code = quantize(
                        scratch.project_data(&family, data.row(id as usize)),
                        config.quantizer,
                    );
                    table.insert(&code, id);
                }
                let bucket_codes = table.sorted_codes();
                let hierarchy = if build_hierarchy && !bucket_codes.is_empty() {
                    Some(build_table_hierarchy(&bucket_codes, config.quantizer))
                } else {
                    None
                };
                per_table.push(GroupTable { family, table, bucket_codes, hierarchy });
            }
            *slot = per_table;
        },
    );
    tables
}

/// Samples the configured level-2 family for table index `l`, rescaled to
/// the group's width where the family has one.
///
/// One base family per table index, shared across groups so bi-level vs.
/// standard comparisons differ only in `W` and partitioning. The p-stable
/// arm keeps the exact pre-`Level2` sampling expression (same seed stream,
/// same `with_w` rescale), so L2 indexes rebuild bit-identically to the
/// concrete-`HashFamily` code they replace.
pub(crate) fn sample_level2(
    dim: usize,
    config: &BiLevelConfig,
    l: u64,
    group_w: f32,
    mips_scale: f32,
) -> Level2 {
    let seed = config.seed ^ (0x1000 + l);
    match config.family {
        FamilyKind::PStable => Level2::PStable(
            HashFamily::sample_with(dim, config.m, 1.0, seed, config.projection).with_w(group_w),
        ),
        // Sign codes have no width: the group's tuned W is irrelevant.
        FamilyKind::Srp => Level2::Srp(SrpFamily::sample(dim, config.m, seed)),
        FamilyKind::Mips => {
            Level2::Mips(MipsFamily::sample(dim, config.m, 1.0, seed, mips_scale).with_w(group_w))
        }
        FamilyKind::LpStable { p } => {
            Level2::Lp(LpStableFamily::sample(dim, config.m, 1.0, p, seed).with_w(group_w))
        }
    }
}

/// The corpus-side scale the asymmetric MIPS embedding divides by: the
/// maximum row norm, so every embedded data point fits the unit ball.
/// Fixed at build time and persisted with each family; rows inserted later
/// that exceed it are clamped onto the sphere (documented MIPS behavior).
fn mips_corpus_scale(data: &Dataset) -> f32 {
    let mut max_sq = 0.0f32;
    for v in data.iter() {
        let sq: f32 = v.iter().map(|x| x * x).sum();
        max_sq = max_sq.max(sq);
    }
    let scale = max_sq.sqrt();
    if scale > 0.0 && scale.is_finite() {
        scale
    } else {
        1.0
    }
}

/// Quantizes a raw projection under the configured lattice.
pub(crate) fn quantize(raw: &[f32], quantizer: Quantizer) -> Vec<i32> {
    match quantizer {
        Quantizer::Zm => quantize_zm(raw),
        Quantizer::E8 => decode_e8_raw(raw),
    }
}

/// Probe codes (home first) for multi-probe querying.
pub(crate) fn probe_sequence(
    raw: &[f32],
    home: &[i32],
    t: usize,
    quantizer: Quantizer,
) -> Vec<Vec<i32>> {
    match quantizer {
        Quantizer::Zm => lsh::probe_codes(raw, &home.to_vec(), t),
        Quantizer::E8 => e8_probe_codes(raw, home, t),
    }
}

/// E8 multi-probe: the home cell followed by neighbor cells `home + root`,
/// ordered by the distance from the query's raw projection to each
/// neighbor's center. For multi-block codes, roots are applied per block and
/// the (block, root) pairs compete in one global ordering.
///
/// When `t` exceeds the first neighbor ring, the search recursively probes
/// the adjacent buckets of already-probed buckets (paper §IV-B2b: "if the
/// number of candidates computed is not enough, we recursively probe the
/// adjacent buckets of the 240 probed buckets"), best-first by distance.
fn e8_probe_codes(raw: &[f32], home: &[i32], t: usize) -> Vec<Vec<i32>> {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};

    let blocks = home.len() / 8;
    let roots = e8_roots();
    // Query position per block, for distance scoring.
    let xs: Vec<[f64; 8]> = (0..blocks)
        .map(|b| {
            let mut x = [0.0f64; 8];
            for (i, slot) in x.iter_mut().enumerate() {
                *slot = raw.get(b * 8 + i).copied().unwrap_or(0.0) as f64;
            }
            x
        })
        .collect();
    let score = |code: &[i32]| -> OrderedF64 {
        let mut d = 0.0f64;
        for (b, x) in xs.iter().enumerate() {
            let block: [i32; 8] = code[b * 8..(b + 1) * 8].try_into().expect("8-long block");
            d += lattice::e8::dist_sq_to_point(x, &block);
        }
        OrderedF64(d)
    };

    let mut out: Vec<Vec<i32>> = Vec::with_capacity(t + 1);
    let mut seen: HashSet<Vec<i32>> = HashSet::new();
    let mut frontier: BinaryHeap<Reverse<(OrderedF64, Vec<i32>)>> = BinaryHeap::new();
    out.push(home.to_vec());
    seen.insert(home.to_vec());

    let expand = |code: &[i32],
                  seen: &mut HashSet<Vec<i32>>,
                  frontier: &mut BinaryHeap<Reverse<(OrderedF64, Vec<i32>)>>| {
        for b in 0..blocks {
            for root in &roots {
                let mut n = code.to_vec();
                for i in 0..8 {
                    n[b * 8 + i] += root[i];
                }
                if seen.insert(n.clone()) {
                    frontier.push(Reverse((score(&n), n)));
                }
            }
        }
    };
    expand(home, &mut seen, &mut frontier);
    while out.len() <= t {
        let Some(Reverse((_, code))) = frontier.pop() else { break };
        out.push(code.clone());
        // Grow a second ring only when the current frontier cannot satisfy
        // the remaining probe budget (the recursive case).
        if out.len() + frontier.len() <= t {
            expand(&code, &mut seen, &mut frontier);
        }
    }
    out
}

/// Total-ordered f64 wrapper for the probe frontier. Ordered by
/// `f64::total_cmp`: even if a poisoned query produces NaN distances, the
/// ordering stays total and transitive, so the `BinaryHeap` invariant holds
/// (the old `partial_cmp(..).unwrap_or(Equal)` was non-transitive under
/// NaN, which can corrupt heap ordering).
struct OrderedF64(f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Builds the per-table bucket hierarchy for the configured quantizer.
pub(crate) fn build_table_hierarchy(
    bucket_codes: &[Box<[i32]>],
    quantizer: Quantizer,
) -> TableHierarchy {
    let iter = bucket_codes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_ref(), u32::try_from(i).expect("bucket count bounded by row count")));
    match quantizer {
        Quantizer::Zm => TableHierarchy::Zm(ZmHierarchy::build(iter)),
        Quantizer::E8 => TableHierarchy::E8(E8Hierarchy::build(iter)),
    }
}

/// Resolves [`WidthMode`] into one concrete width per group.
fn compute_group_widths(
    data: &Dataset,
    group_ids: &[Vec<u32>],
    config: &BiLevelConfig,
) -> Vec<f32> {
    match config.width {
        WidthMode::Fixed(w) => vec![w; group_ids.len()],
        WidthMode::Scaled { base, k } => {
            // Scale by each group's k-NN distance relative to the global
            // profile: dense clusters get proportionally narrower cells.
            let global = profile_subset(data, None, k);
            group_ids
                .iter()
                .map(|ids| {
                    if ids.len() < 2 {
                        return base;
                    }
                    let p = profile_subset(data, Some(ids), k);
                    let ratio = (p.d_knn / global.d_knn.max(1e-12)).clamp(0.1, 10.0);
                    base * ratio as f32
                })
                .collect()
        }
        WidthMode::Tuned { target_recall, k } => group_ids
            .iter()
            .map(|ids| {
                if ids.len() < 2 {
                    return 1.0;
                }
                let p = profile_subset(data, Some(ids), k);
                tune_w(&p, config.m, config.l, TuningGoal::Recall(target_recall)) as f32
            })
            .collect(),
    }
}

/// Distance profile of the whole dataset or one group.
fn profile_subset(data: &Dataset, ids: Option<&[u32]>, k: usize) -> DistanceProfile {
    const PROFILE_SAMPLE: usize = 200;
    match ids {
        None => DistanceProfile::fit(data, k, PROFILE_SAMPLE),
        Some(ids) => {
            let subset = data.gather(&ids.iter().map(|&i| i as usize).collect::<Vec<_>>());
            DistanceProfile::fit(&subset, k, PROFILE_SAMPLE)
        }
    }
}

/// Ranks candidate sets with the selected short-list engine, dropping any
/// tombstoned ids at rank time (`deleted`; `None` or an empty bitmap is the
/// zero-cost fast path). Distances come back squared; callers apply
/// [`sqrt_distances`].
pub(crate) fn rank_candidates(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    engine: Engine,
    deleted: Option<&Tombstones>,
    metric: &dyn Metric,
) -> Vec<Vec<Neighbor>> {
    match engine {
        Engine::Serial => shortlist_serial_filtered(data, queries, candidates, k, metric, deleted),
        Engine::PerQuery { threads } => shortlist::shortlist_per_query_filtered(
            data, queries, candidates, k, metric, threads, deleted,
        ),
        Engine::WorkQueue { threads, capacity } => shortlist::shortlist_workqueue_filtered(
            data, queries, candidates, k, metric, threads, capacity, deleted,
        ),
    }
}

/// Ranks under the index's configured [`MetricKind`] and finalizes the
/// distances: the L2 arm ranks by squared L2 (the cheap kernel) and takes
/// the square root for the user; every other metric already ranks in its
/// final units. The cosine arm reuses the index's cached per-row norms
/// when available ([`CosineWithNorms`]), falling back to the norm-free
/// [`Cosine`] kernel otherwise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank_by_metric(
    data: &Dataset,
    queries: &Dataset,
    candidates: &[Vec<u32>],
    k: usize,
    engine: Engine,
    deleted: Option<&Tombstones>,
    metric: MetricKind,
    norms: Option<&CosineWithNorms>,
) -> Vec<Vec<Neighbor>> {
    match metric {
        MetricKind::L2 => sqrt_distances(rank_candidates(
            data, queries, candidates, k, engine, deleted, &SquaredL2,
        )),
        MetricKind::Cosine => match norms {
            Some(n) => rank_candidates(data, queries, candidates, k, engine, deleted, n),
            None => rank_candidates(data, queries, candidates, k, engine, deleted, &Cosine),
        },
        MetricKind::InnerProduct => {
            rank_candidates(data, queries, candidates, k, engine, deleted, &InnerProduct)
        }
        MetricKind::Lp { p } => {
            rank_candidates(data, queries, candidates, k, engine, deleted, &Lp::new(p))
        }
    }
}

/// Engines return squared-L2 ranks; user-facing results carry true L2.
pub(crate) fn sqrt_distances(mut results: Vec<Vec<Neighbor>>) -> Vec<Vec<Neighbor>> {
    for r in &mut results {
        for n in r.iter_mut() {
            n.dist = n.dist.sqrt();
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Partition, Probe, Quantizer};
    use rptree::SplitRule;
    use vecstore::synth::{self, ClusteredSpec};
    use vecstore::{knn_batch, SquaredL2};

    fn small_data() -> (Dataset, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(600), 42);
        let (data, queries) = all.split_at(500);
        (data, queries)
    }

    fn mean_recall(index: &BiLevelIndex, queries: &Dataset, k: usize) -> f64 {
        let truth = knn_batch(index.data(), queries, k, &SquaredL2, 1);
        let got = index.query_batch_opts(queries, &QueryOptions::new(k));
        let total: f64 =
            truth.iter().zip(&got.neighbors).map(|(t, g)| knn_metrics::recall(t, g)).sum();
        total / queries.len() as f64
    }

    #[test]
    fn builds_and_queries_zm() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(2.0));
        let res = index.query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(res.neighbors.len(), queries.len());
        assert_eq!(res.candidates.len(), queries.len());
        for hits in &res.neighbors {
            for w in hits.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn wide_buckets_reach_high_recall() {
        let (data, queries) = small_data();
        // Very wide W: nearly everything collides, recall should be ~1.
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(500.0));
        assert!(mean_recall(&index, &queries, 10) > 0.95);
    }

    #[test]
    fn narrow_buckets_have_low_selectivity() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(0.05));
        let res = index.query_batch_opts(&queries, &QueryOptions::new(10));
        let avg: f64 = res.candidates.iter().map(|&c| c as f64).sum::<f64>()
            / (res.candidates.len() as f64 * data.len() as f64);
        assert!(avg < 0.5, "selectivity {avg} too large for tiny W");
    }

    #[test]
    fn e8_quantizer_works_end_to_end() {
        let (data, queries) = small_data();
        let cfg = BiLevelConfig::paper_default(2.0).quantizer(Quantizer::E8);
        let index = BiLevelIndex::build(&data, &cfg);
        let res = index.query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(res.neighbors.len(), queries.len());
    }

    #[test]
    fn multiprobe_increases_candidates_and_recall() {
        let (data, queries) = small_data();
        let base = BiLevelConfig::standard(8.0);
        let home = BiLevelIndex::build(&data, &base);
        let multi = BiLevelIndex::build(&data, &base.clone().probe(Probe::Multi(32)));
        let rh = home.query_batch_opts(&queries, &QueryOptions::new(10));
        let rm = multi.query_batch_opts(&queries, &QueryOptions::new(10));
        let sum = |r: &BatchResult| r.candidates.iter().sum::<usize>();
        assert!(sum(&rm) > sum(&rh), "multiprobe should probe more");
        assert!(
            mean_recall(&multi, &queries, 10) >= mean_recall(&home, &queries, 10),
            "multiprobe should not lose recall"
        );
    }

    #[test]
    fn hierarchical_probe_lifts_small_candidate_sets() {
        let (data, queries) = small_data();
        let cfg =
            BiLevelConfig::paper_default(0.5).probe(Probe::Hierarchical { min_candidates: 20 });
        let index = BiLevelIndex::build(&data, &cfg);
        let res = index.query_batch_opts(&queries, &QueryOptions::new(10));
        // After escalation, candidate counts should be much more uniform:
        // nobody far below the median.
        let mut sizes = res.candidates.clone();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(
            res.candidates.iter().all(|&c| c + 5 >= median.min(20)),
            "escalation left starved queries: {:?} median {}",
            &res.candidates[..10.min(res.candidates.len())],
            median
        );
    }

    #[test]
    fn kmeans_and_kd_partitions_build() {
        let (data, queries) = small_data();
        for partition in [Partition::KMeans { groups: 8 }, Partition::Kd { groups: 8 }] {
            let mut cfg = BiLevelConfig::paper_default(2.0);
            cfg.partition = partition;
            let index = BiLevelIndex::build(&data, &cfg);
            assert!(index.num_groups() >= 2);
            let res = index.query_batch_opts(&queries, &QueryOptions::new(5));
            assert_eq!(res.neighbors.len(), queries.len());
        }
    }

    #[test]
    fn rp_max_rule_builds() {
        let (data, queries) = small_data();
        let mut cfg = BiLevelConfig::paper_default(2.0);
        cfg.partition = Partition::RpTree { groups: 8, rule: SplitRule::Max };
        let index = BiLevelIndex::build(&data, &cfg);
        let res = index.query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(res.neighbors.len(), queries.len());
    }

    #[test]
    fn scaled_widths_differ_across_groups() {
        let (data, _) = small_data();
        let mut cfg = BiLevelConfig::paper_default(1.0);
        cfg.width = WidthMode::Scaled { base: 1.0, k: 10 };
        let index = BiLevelIndex::build(&data, &cfg);
        let widths = index.group_widths();
        let min = widths.iter().copied().fold(f32::INFINITY, f32::min);
        let max = widths.iter().copied().fold(0.0f32, f32::max);
        assert!(max > min, "anisotropic clusters should tune different widths");
    }

    #[test]
    fn tuned_widths_are_positive() {
        let (data, _) = small_data();
        let mut cfg = BiLevelConfig::paper_default(1.0);
        cfg.width = WidthMode::Tuned { target_recall: 0.9, k: 10 };
        let index = BiLevelIndex::build(&data, &cfg);
        assert!(index.group_widths().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn e8_recursive_probing_extends_past_first_ring() {
        // Asking for more probes than the first neighbor ring holds must
        // expand recursively: all codes valid E8 points, all distinct, in
        // nondecreasing distance order from the query's raw position.
        let raw: Vec<f32> = vec![0.3, -0.7, 1.2, 0.1, -0.4, 0.9, -1.1, 0.6];
        let home = quantize(&raw, Quantizer::E8);
        let t = 300; // > 240 single-block neighbors
        let probes = probe_sequence(&raw, &home, t, Quantizer::E8);
        assert_eq!(probes.len(), t + 1);
        let mut seen = std::collections::HashSet::new();
        for p in &probes {
            let block: [i32; 8] = p.as_slice().try_into().unwrap();
            assert!(lattice::e8::is_e8_point(&block), "invalid probe {p:?}");
            assert!(seen.insert(p.clone()), "duplicate probe {p:?}");
        }
        // Distances (after home) never decrease.
        let mut x = [0.0f64; 8];
        for (i, v) in raw.iter().enumerate() {
            x[i] = *v as f64;
        }
        let dist = |p: &Vec<i32>| {
            let b: [i32; 8] = p.as_slice().try_into().unwrap();
            lattice::e8::dist_sq_to_point(&x, &b)
        };
        for w in probes[1..].windows(2) {
            assert!(dist(&w[0]) <= dist(&w[1]) + 1e-9);
        }
    }

    #[test]
    fn results_never_exceed_k_and_ids_are_valid() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(2.0));
        let res = index.query_batch_opts(&queries, &QueryOptions::new(7));
        for hits in &res.neighbors {
            assert!(hits.len() <= 7);
            assert!(hits.iter().all(|n| n.id < data.len()));
            let mut ids: Vec<usize> = hits.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), hits.len(), "duplicate ids in result");
        }
    }

    #[test]
    fn all_engines_return_identical_batches() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(4.0));
        let serial = index.query_batch_opts(&queries, &QueryOptions::new(8));
        let per_query = index.query_batch_opts(
            &queries,
            &QueryOptions::new(8).engine(Engine::PerQuery { threads: 3 }),
        );
        let wq = index.query_batch_opts(
            &queries,
            &QueryOptions::new(8).engine(Engine::WorkQueue { threads: 2, capacity: 256 }),
        );
        assert_eq!(serial.neighbors, per_query.neighbors);
        assert_eq!(serial.neighbors, wq.neighbors);
        assert_eq!(serial.candidates, wq.candidates);
    }

    /// Tentpole determinism contract: the threaded probe/escalation pipeline
    /// must return byte-identical candidate sets — and identical
    /// `BatchResult`s through every engine — to the serial path, across all
    /// three probe modes and both quantizers.
    #[test]
    fn parallel_candidates_match_serial_across_modes_and_quantizers() {
        let (data, queries) = small_data();
        let probes = [Probe::Home, Probe::Multi(8), Probe::Hierarchical { min_candidates: 15 }];
        for quantizer in [Quantizer::Zm, Quantizer::E8] {
            for probe in probes {
                let cfg = BiLevelConfig::paper_default(2.0).quantizer(quantizer).probe(probe);
                let index = BiLevelIndex::build(&data, &cfg);
                let serial = index.candidates_batch_with(&queries, 1);
                for threads in [2, 4] {
                    let parallel = index.candidates_batch_with(&queries, threads);
                    assert_eq!(
                        serial, parallel,
                        "candidate drift at {threads} threads ({quantizer:?}, {probe:?})"
                    );
                }
                let k = 6;
                let base = index.query_batch_opts(&queries, &QueryOptions::new(k));
                for engine in [
                    Engine::PerQuery { threads: 4 },
                    Engine::WorkQueue { threads: 4, capacity: 128 },
                ] {
                    let got =
                        index.query_batch_opts(&queries, &QueryOptions::new(k).engine(engine));
                    assert_eq!(base.neighbors, got.neighbors, "{quantizer:?} {probe:?} {engine:?}");
                    assert_eq!(
                        base.candidates, got.candidates,
                        "{quantizer:?} {probe:?} {engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn workqueue_at_minimum_capacity_matches_serial() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(4.0));
        let k = 8;
        // capacity == k + 1 is the tightest queue the contract allows.
        let engine = Engine::WorkQueue { threads: 2, capacity: k + 1 };
        let serial = index.query_batch_opts(&queries, &QueryOptions::new(k));
        let wq = index.query_batch_opts(&queries, &QueryOptions::new(k).engine(engine));
        assert_eq!(serial.neighbors, wq.neighbors);
        assert_eq!(serial.candidates, wq.candidates);
    }

    #[test]
    #[should_panic(expected = "must exceed k")]
    fn workqueue_capacity_not_above_k_is_rejected() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(2.0));
        let _ = index.query_batch_opts(
            &queries,
            &QueryOptions::new(8).engine(Engine::WorkQueue { threads: 2, capacity: 8 }),
        );
    }

    #[test]
    fn engine_thread_counts_are_sane() {
        assert_eq!(Engine::Serial.threads(), 1);
        assert_eq!(Engine::PerQuery { threads: 0 }.threads(), 1);
        assert_eq!(Engine::PerQuery { threads: 6 }.threads(), 6);
        assert_eq!(Engine::WorkQueue { threads: 4, capacity: 99 }.threads(), 4);
        Engine::WorkQueue { threads: 1, capacity: 9 }.validate(8); // k + 1 passes
    }

    /// The serving contract: `query_batch_at` under the built probe must be
    /// batch-invariant — any batching of the same queries returns exactly
    /// the per-query serial answers.
    #[test]
    fn query_batch_at_is_batch_invariant() {
        let (data, queries) = small_data();
        let probes = [Probe::Home, Probe::Multi(8), Probe::Hierarchical { min_candidates: 15 }];
        for quantizer in [Quantizer::Zm, Quantizer::E8] {
            for probe in probes {
                let cfg = BiLevelConfig::paper_default(2.0).quantizer(quantizer).probe(probe);
                let index = BiLevelIndex::build(&data, &cfg);
                let whole = index.query_batch_opts(&queries, &QueryOptions::new(6).probe(probe));
                // Per-query answers must match the single-query path...
                for (q, hits) in whole.neighbors.iter().enumerate() {
                    assert_eq!(
                        *hits,
                        index.query(queries.row(q), 6),
                        "batch row {q} diverged from single query ({quantizer:?}, {probe:?})"
                    );
                }
                // ...and any split of the batch reproduces the whole.
                let (a, b) = queries.split_at(queries.len() / 2);
                let mut halves =
                    index.query_batch_opts(&a, &QueryOptions::new(6).probe(probe)).neighbors;
                halves.extend(
                    index.query_batch_opts(&b, &QueryOptions::new(6).probe(probe)).neighbors,
                );
                assert_eq!(whole.neighbors, halves, "{quantizer:?} {probe:?}");
            }
        }
    }

    #[test]
    fn degraded_probes_run_on_any_ladder_rung() {
        let (data, queries) = small_data();
        let cfg = BiLevelConfig::paper_default(2.0).probe(Probe::Multi(8));
        let index = BiLevelIndex::build(&data, &cfg);
        let mut last_candidates = usize::MAX;
        for rung in cfg.probe.ladder() {
            let res = index.query_batch_opts(&queries, &QueryOptions::new(6).probe(rung));
            let total: usize = res.candidates.iter().sum();
            assert!(
                total <= last_candidates,
                "cheaper rung {rung:?} probed more ({total} > {last_candidates})"
            );
            last_candidates = total;
        }
    }

    #[test]
    fn probe_support_is_enforced() {
        let (data, queries) = small_data();
        let home = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(2.0));
        assert!(home.supports_probe(Probe::Multi(4)));
        assert!(!home.supports_probe(Probe::Hierarchical { min_candidates: 5 }));
        let hier = BiLevelIndex::build(
            &data,
            &BiLevelConfig::paper_default(2.0).probe(Probe::Hierarchical { min_candidates: 10 }),
        );
        assert!(hier.supports_probe(Probe::Hierarchical { min_candidates: 3 }));
        // A hierarchical index degrades to Multi/Home without panicking.
        let res = hier.query_batch_opts(&queries, &QueryOptions::new(5).probe(Probe::Home));
        assert_eq!(res.neighbors.len(), queries.len());
    }

    #[test]
    #[should_panic(expected = "needs hierarchies")]
    fn hierarchical_override_without_hierarchy_panics() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(2.0));
        let _ = index.query_batch_opts(
            &queries,
            &QueryOptions::new(5).probe(Probe::Hierarchical { min_candidates: 5 }),
        );
    }

    #[test]
    fn single_query_matches_batch_row() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(2.0));
        let batch = index.query_batch_opts(&queries, &QueryOptions::new(5));
        let single = index.query(queries.row(0), 5);
        assert_eq!(single, batch.neighbors[0]);
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let (data, queries) = small_data();
        let cfg = BiLevelConfig::paper_default(2.0);
        let a = BiLevelIndex::build(&data, &cfg).query_batch_opts(&queries, &QueryOptions::new(5));
        let b = BiLevelIndex::build(&data, &cfg).query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn adaptive_pool_improves_recall_at_similar_selectivity() {
        let (data, queries) = small_data();
        let fixed = BiLevelConfig::standard(8.0).tables(8);
        let pooled = fixed.clone().table_pool(24);
        let a = BiLevelIndex::build(&data, &fixed);
        let b = BiLevelIndex::build(&data, &pooled);
        let truth = knn_batch(&data, &queries, 10, &SquaredL2, 1);
        let score = |idx: &BiLevelIndex| {
            let res = idx.query_batch_opts(&queries, &QueryOptions::new(10));
            let recall: f64 = truth
                .iter()
                .zip(&res.neighbors)
                .map(|(t, g)| knn_metrics::recall(t, g))
                .sum::<f64>()
                / truth.len() as f64;
            let tau: f64 =
                res.candidates.iter().sum::<usize>() as f64 / (queries.len() * data.len()) as f64;
            (recall, tau)
        };
        let (r_fixed, tau_fixed) = score(&a);
        let (r_pool, tau_pool) = score(&b);
        // Pool picks more central tables: better recall per candidate.
        assert!(
            r_pool / tau_pool.max(1e-12) > 0.9 * (r_fixed / tau_fixed.max(1e-12)),
            "pooled ({r_pool:.3}@{tau_pool:.4}) collapsed vs fixed ({r_fixed:.3}@{tau_fixed:.4})"
        );
        assert!(r_pool >= r_fixed - 0.02, "pool lost recall: {r_pool} vs {r_fixed}");
    }

    #[test]
    fn adaptive_pool_probes_exactly_l_tables() {
        let (data, queries) = small_data();
        // With a pool, per-query candidates come from l tables only: the
        // candidate count must not exceed what probing l widest tables
        // could produce (sanity: far fewer than pool * bucket size).
        let cfg = BiLevelConfig::standard(5.0).tables(4).table_pool(16);
        let index = BiLevelIndex::build(&data, &cfg);
        // Structural check: pool tables exist...
        assert_eq!(index.stats().tables_per_group, 4); // config.l reported
        let res = index.query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(res.neighbors.len(), queries.len());
    }

    #[test]
    fn insert_makes_vector_findable() {
        let (data, _) = small_data();
        let mut index = BiLevelIndex::build_owned(data.clone(), &BiLevelConfig::standard(4.0));
        let novel = vec![123.0f32; 32];
        let id = index.insert(&novel);
        assert_eq!(id, data.len());
        let hits = index.query(&novel, 1);
        assert_eq!(hits[0].id, id);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn inserted_index_matches_fresh_build() {
        // Inserting the tail one-by-one must answer identically to building
        // over the full dataset (same partitioner: fit on the same prefix?
        // no — fit differs). So compare against an index built on the same
        // prefix and then batch-inserted: determinism of the insert path.
        let (data, queries) = small_data();
        let (head, tail) = data.split_at(400);
        let cfg = BiLevelConfig::standard(6.0);
        let mut a = BiLevelIndex::build_owned(head.clone(), &cfg);
        let mut b = BiLevelIndex::build_owned(head, &cfg);
        a.insert_batch(tail.iter());
        for row in tail.iter() {
            b.insert(row);
        }
        let ra = a.query_batch_opts(&queries, &QueryOptions::new(5));
        let rb = b.query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(ra.neighbors, rb.neighbors);
        assert_eq!(ra.candidates, rb.candidates);
    }

    #[test]
    fn insert_with_hierarchy_keeps_escalation_working() {
        let (data, queries) = small_data();
        let (head, tail) = data.split_at(400);
        let cfg =
            BiLevelConfig::paper_default(2.0).probe(Probe::Hierarchical { min_candidates: 10 });
        let mut index = BiLevelIndex::build_owned(head, &cfg);
        index.insert_batch(tail.iter());
        let res = index.query_batch_opts(&queries, &QueryOptions::new(5));
        assert_eq!(res.neighbors.len(), queries.len());
        // Escalation still lifts starved queries above the floor.
        assert!(res.candidates.iter().filter(|&&c| c >= 10).count() > queries.len() / 2);
    }

    #[test]
    fn insert_on_borrowed_index_clones_data() {
        let (data, _) = small_data();
        let mut index = BiLevelIndex::build(&data, &BiLevelConfig::standard(4.0));
        let before = data.len();
        let novel = vec![7.0f32; 32];
        index.insert(&novel);
        assert_eq!(index.data().len(), before + 1);
        assert_eq!(data.len(), before, "source dataset must be untouched");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_dim_mismatch_panics() {
        let (data, _) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(1.0));
        let _ = index.query(&[0.0; 3], 5);
    }

    #[test]
    fn rerank_with_ample_depth_is_bit_identical() {
        let (data, queries) = small_data();
        // Wide buckets so candidate lists are long enough to matter.
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(500.0));
        let exact = index.query_batch_opts(&queries, &QueryOptions::new(10));
        // A depth at least the list length never prunes: identical output.
        let ample = index.query_batch_opts(&queries, &QueryOptions::new(10).rerank(data.len()));
        assert_eq!(exact.neighbors, ample.neighbors);
        assert_eq!(exact.candidates, ample.candidates);
    }

    #[test]
    fn rerank_prunes_candidates_and_keeps_recall() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(500.0));
        let truth = knn_batch(&data, &queries, 10, &SquaredL2, 1);
        let rec = knn_telemetry::InMemoryRecorder::new();
        let opts = QueryOptions::new(10).rerank(64).recorder(&rec);
        let pruned = index.query_batch_opts(&queries, &opts);
        // Selectivity accounting reports the probe phase, not the prune.
        let exact = index.query_batch_opts(&queries, &QueryOptions::new(10));
        assert_eq!(exact.candidates, pruned.candidates);
        // The first pass did real work: wide buckets make nearly the whole
        // corpus a candidate, far above depth 64.
        assert!(rec.counter(Counter::CandidatesPruned) > 0, "nothing was pruned");
        assert!(rec.counter(Counter::CandidatesReranked) > 0);
        // Documented recall bound (DESIGN.md §11): with depth >= 6.4 * k the
        // i8 first pass keeps mean recall@10 within 0.05 of the exact rank.
        let recall = |res: &BatchResult| {
            truth.iter().zip(&res.neighbors).map(|(t, g)| knn_metrics::recall(t, g)).sum::<f64>()
                / truth.len() as f64
        };
        let (re, rp) = (recall(&exact), recall(&pruned));
        assert!(rp >= re - 0.05, "quantized prune lost too much recall: {rp} vs {re}");
    }

    #[test]
    fn rerank_engines_agree() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(500.0));
        let serial = index.query_batch_opts(&queries, &QueryOptions::new(8).rerank(64));
        let wq = index.query_batch_opts(
            &queries,
            &QueryOptions::new(8).rerank(64).engine(Engine::WorkQueue { threads: 3, capacity: 64 }),
        );
        assert_eq!(serial.neighbors, wq.neighbors);
    }

    #[test]
    fn sparse_projection_builds_and_reaches_dense_recall() {
        let (data, queries) = small_data();
        let dense = BiLevelIndex::build(&data, &BiLevelConfig::standard(500.0));
        let cfg = BiLevelConfig::standard(500.0)
            .projection(lsh::Projection::Sparse { nnz: data.dim() / 4 });
        let sparse = BiLevelIndex::build(&data, &cfg);
        assert!(
            sparse.tables[0][0].family.as_pstable().is_some_and(|f| f.is_sparse()),
            "config did not gate sparse sampling"
        );
        let rd = mean_recall(&dense, &queries, 10);
        let rs = mean_recall(&sparse, &queries, 10);
        // At W=500 nearly everything collides either way; sparse projections
        // must not break the pipeline or collapse recall.
        assert!(rs >= rd - 0.05, "sparse projections collapsed recall: {rs} vs {rd}");
    }

    #[test]
    fn corpus_too_large_error_reports_rows() {
        let err = check_id_space(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err.rows, u32::MAX as usize + 1);
        let msg = err.to_string();
        assert!(msg.contains("u32 row-id space"), "unhelpful error: {msg}");
        assert!(check_id_space(12).is_ok());
        assert!(check_id_space(u32::MAX as usize).is_ok());
    }

    #[test]
    fn delete_tombstones_without_touching_tables() {
        let (data, queries) = small_data();
        let mut index = BiLevelIndex::build_owned(data.clone(), &BiLevelConfig::standard(4.0));
        let victim = index.query(queries.row(0), 1)[0].id;
        assert!(index.delete(victim), "first delete tombstones");
        assert!(!index.delete(victim), "second delete is a no-op");
        assert!(index.is_deleted(victim));
        assert_eq!(index.live_len(), data.len() - 1);
        assert_eq!(index.data().len(), data.len(), "rows stay in place");
        assert_eq!(index.epoch(), 1, "only the effective delete bumps the epoch");
        for n in index.query(queries.row(0), 10) {
            assert_ne!(n.id, victim, "tombstoned row surfaced");
        }
    }

    #[test]
    fn update_by_idx_rehomes_and_revives() {
        let (data, _) = small_data();
        let mut index = BiLevelIndex::build_owned(data.clone(), &BiLevelConfig::standard(4.0));
        // Typed validation, all-or-nothing.
        assert!(matches!(
            index.update_by_idx(0, &[1.0; 3]),
            Err(InsertError::DimMismatch { expected: 32, got: 3 })
        ));
        assert!(matches!(
            index.update_by_idx(data.len(), &[1.0; 32]),
            Err(InsertError::IdOutOfRange { .. })
        ));
        assert_eq!(index.epoch(), 0, "failed updates leave the index unchanged");

        // A deleted row updated in place revives, re-homed to the new value.
        index.delete(3);
        let novel = vec![-321.0f32; 32];
        index.update_by_idx(3, &novel).unwrap();
        assert!(!index.is_deleted(3), "update revives a tombstoned row");
        let hits = index.query(&novel, 1);
        assert_eq!((hits[0].id, hits[0].dist), (3, 0.0));
    }

    #[test]
    fn txn_commit_is_atomic_and_all_or_nothing() {
        let (data, _) = small_data();
        let mut index = BiLevelIndex::build_owned(data.clone(), &BiLevelConfig::standard(4.0));

        // A bad op anywhere in the batch refuses the whole batch.
        let mut txn = index.begin_txn();
        txn.insert(&[5.0; 32]).unwrap();
        txn.delete(data.len() + 99);
        assert!(matches!(index.commit(txn), Err(InsertError::IdOutOfRange { .. })));
        assert_eq!((index.data().len(), index.epoch()), (data.len(), 0));

        // A good batch applies deletes, updates, and inserts in one epoch.
        let novel = vec![77.0f32; 32];
        let mut txn = index.begin_txn();
        assert!(txn.is_empty());
        txn.delete(1);
        txn.update(2, &novel).unwrap();
        txn.insert(&[9.0; 32]).unwrap();
        assert_eq!(txn.len(), 3);
        let summary = index.commit(txn).unwrap();
        assert_eq!((summary.inserted, summary.updated, summary.deleted), (1, 1, 1));
        assert_eq!(summary.first_inserted_id, Some(data.len()));
        assert_eq!(summary.epoch, 1);
        assert!(index.is_deleted(1));
        assert_eq!(index.query(&novel, 1)[0].id, 2);

        // An empty transaction commits as a no-op without an epoch bump.
        let txn = index.begin_txn();
        let summary = index.commit(txn).unwrap();
        assert_eq!((summary.inserted, summary.updated, summary.deleted), (0, 0, 0));
        assert_eq!(index.epoch(), 1);
    }

    #[test]
    fn maybe_compact_honors_thresholds() {
        let (data, _) = small_data();
        let mut index = BiLevelIndex::build_owned(data.clone(), &BiLevelConfig::standard(4.0));
        let policy = CompactionPolicy::default();
        assert_eq!(index.maybe_compact(&policy), None, "clean index never compacts");

        // Push the tombstone fraction past the default 0.3 threshold.
        let dead = (data.len() * 2).div_ceil(5);
        for id in 0..dead {
            index.delete(id);
        }
        assert!(index.tombstone_fraction() > policy.max_tombstone_fraction);
        let survivors = index.maybe_compact(&policy).expect("threshold crossed");
        assert_eq!(survivors, (dead..data.len()).collect::<Vec<_>>());
        assert_eq!(index.live_len(), data.len() - dead);
        assert!(index.deleted().is_empty(), "compaction clears tombstones");
        assert_eq!(index.maybe_compact(&policy), None, "freshly compacted index is clean");
    }

    #[test]
    fn insert_error_variants_are_typed() {
        let (data, _) = small_data();
        let mut index = BiLevelIndex::build_owned(data, &BiLevelConfig::standard(4.0));
        assert!(matches!(index.try_insert_batch(std::iter::empty()), Err(InsertError::EmptyBatch)));
        let narrow = [1.0f32; 3];
        assert!(matches!(
            index.try_insert_batch([narrow.as_slice()]),
            Err(InsertError::DimMismatch { expected: 32, got: 3 })
        ));
        assert_eq!(index.epoch(), 0, "failed inserts leave the index unchanged");
    }

    #[test]
    fn try_build_accepts_small_corpus() {
        let (data, queries) = small_data();
        let index = BiLevelIndex::try_build(&data, &BiLevelConfig::standard(4.0)).unwrap();
        assert_eq!(
            index.query_batch_opts(&queries, &QueryOptions::new(5)).neighbors.len(),
            queries.len()
        );
    }
}
