//! Sharded Bi-level LSH: one logical index fanned out over `N` engine
//! shards holding disjoint contiguous row ranges.
//!
//! The construction is *split-after-build*: level-1 partitioning, per-group
//! bucket widths, and every hash family are fitted once on the full corpus
//! (deterministic from the config seed), then each shard keeps only its own
//! rows in its copy of the tables. Because every shard probes with the
//! identical partitioner, families, and (for hierarchical probing) the
//! identical *global* bucket-code hierarchy, the per-shard candidate sets
//! partition the unsharded candidate set exactly — so per-shard top-k lists
//! merged with [`shortlist::merge_topk`] are bit-identical to the unsharded
//! answer, at every probe mode and service level.
//!
//! Hierarchical escalation is the one step that needs coordination: the
//! paper's rule stops escalating once the candidate set reaches a
//! threshold, and only the merge layer sees the union size. The batch
//! driver therefore runs escalation in lockstep rounds — every shard probes
//! the same bucket budget, the coordinator sums the disjoint counts, and
//! all shards advance together — reproducing the unsharded escalation loop
//! decision for decision.

use crate::config::{BiLevelConfig, Probe};
use crate::index::{
    build_table_hierarchy, rank_by_metric, BatchResult, BiLevelIndex, Engine, GroupTable, Level1,
    ProbeCtx,
};
use crate::options::QueryOptions;
use knn_telemetry::{Counter, Recorder, SpanTimer, Stage, Value};
use lsh::{LshTable, ProjectionScratch};
use shortlist::{merge_topk, parallel_fill_with};
use vecstore::{CosineWithNorms, Dataset, Neighbor, Tombstones};

/// A Bi-level LSH index split across `N` shards with disjoint row ranges.
///
/// Answers are bit-identical to an unsharded [`BiLevelIndex`] built from
/// the same data and config — see the module docs for why.
pub struct ShardedIndex {
    data: Dataset,
    config: BiLevelConfig,
    level1: Level1,
    group_widths: Vec<f32>,
    /// `shards[s][group][l]` — each shard's tables hold only that shard's
    /// rows, under *global* row ids and global bucket-code lists.
    shards: Vec<Vec<Vec<GroupTable>>>,
    /// Row-range boundaries, `num_shards + 1` entries.
    bounds: Vec<usize>,
    /// Logically deleted rows under global ids, filtered at rank time in
    /// every shard (carried over from the source index at build).
    tombstones: Tombstones,
    /// Cached per-row norms for cosine ranking, `None` for other metrics
    /// (see [`BiLevelIndex`]'s field of the same name).
    rank_norms: Option<CosineWithNorms>,
}

impl ShardedIndex {
    /// Builds the sharded index: fits the full single-node index, then
    /// splits its tables by contiguous row range.
    ///
    /// # Panics
    ///
    /// Panics on `num_shards == 0`, an empty dataset, or an invalid config.
    pub fn build(data: Dataset, config: &BiLevelConfig, num_shards: usize) -> Self {
        Self::from_built(BiLevelIndex::build_owned(data, config), num_shards)
    }

    /// Splits an already-built (or snapshot-loaded) index into `num_shards`
    /// contiguous row ranges — the warm-join path: a replica that pulled a
    /// peer's snapshot over the wire shards it here without re-hashing, and
    /// answers bit-identically to a peer that ran [`ShardedIndex::build`]
    /// on the same data and config.
    ///
    /// # Panics
    ///
    /// Panics on `num_shards == 0` or an empty index.
    pub fn from_built(full: BiLevelIndex<'static>, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let BiLevelIndex { data, config, level1, tables, group_widths, tombstones, .. } = full;
        let data = data.into_owned();
        let n = data.len();
        let bounds: Vec<usize> = (0..=num_shards).map(|s| s * n / num_shards).collect();
        let build_hier = matches!(config.probe, Probe::Hierarchical { .. });
        let shards: Vec<Vec<Vec<GroupTable>>> = (0..num_shards)
            .map(|s| {
                let (lo, hi) = (bounds[s] as u32, bounds[s + 1] as u32);
                tables
                    .iter()
                    .map(|per_group| {
                        per_group
                            .iter()
                            .map(|gt| {
                                let mut table = LshTable::new();
                                for code in &gt.bucket_codes {
                                    for &id in gt.table.bucket(code) {
                                        if (lo..hi).contains(&id) {
                                            table.insert(code, id);
                                        }
                                    }
                                }
                                // Global codes, even where this shard holds
                                // no rows: the hierarchy must be identical
                                // on every shard for lockstep escalation.
                                let bucket_codes = gt.bucket_codes.clone();
                                let hierarchy = if build_hier && !bucket_codes.is_empty() {
                                    Some(build_table_hierarchy(&bucket_codes, config.quantizer))
                                } else {
                                    None
                                };
                                GroupTable {
                                    family: gt.family.clone(),
                                    table,
                                    bucket_codes,
                                    hierarchy,
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let rank_norms = matches!(config.metric, crate::config::MetricKind::Cosine)
            .then(|| CosineWithNorms::new(&data));
        Self { data, config, level1, group_widths, shards, bounds, tombstones, rank_norms }
    }

    /// Logically deletes global row `id` across all shards: the id is
    /// tombstoned and filtered out of every shard's rank stage (sharding is
    /// split-after-build, so inserts require a rebuild — but deletes are
    /// cheap and shared with the unsharded index).
    /// Returns `true` if the row was newly tombstoned.
    ///
    /// # Panics
    ///
    /// Panics if `id` is at or past the corpus length.
    pub fn delete(&mut self, id: usize) -> bool {
        assert!(id < self.data.len(), "delete id {id} out of range ({} rows)", self.data.len());
        self.tombstones.set(id as u32)
    }

    /// Whether global row `id` is tombstoned.
    pub fn is_deleted(&self, id: usize) -> bool {
        id < self.data.len() && self.tombstones.contains(id as u32)
    }

    /// The tombstone bitmap (global row ids).
    pub fn deleted(&self) -> &Tombstones {
        &self.tombstones
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The full corpus (global row ids).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &BiLevelConfig {
        &self.config
    }

    /// The per-group bucket widths in effect (fitted on the full corpus,
    /// shared by every shard).
    pub fn group_widths(&self) -> &[f32] {
        &self.group_widths
    }

    /// The row range `[lo, hi)` shard `s` holds.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// Whether `probe` can be answered by this built index (same contract
    /// as [`BiLevelIndex::supports_probe`]).
    pub fn supports_probe(&self, probe: Probe) -> bool {
        match probe {
            Probe::Home | Probe::Multi(_) => true,
            Probe::Hierarchical { .. } => {
                matches!(self.config.probe, Probe::Hierarchical { .. })
            }
        }
    }

    fn shard_ctx(&self, s: usize) -> ProbeCtx<'_> {
        ProbeCtx { level1: &self.level1, tables: &self.shards[s], config: &self.config }
    }

    /// Per-shard candidates for one query under `probe`, escalated in
    /// lockstep rounds to `threshold` when hierarchical. Returns one
    /// disjoint, sorted, deduplicated list per shard.
    fn shard_candidates(
        &self,
        v: &[f32],
        scratch: &mut ProjectionScratch,
        probe: Probe,
        threshold: usize,
        rec: &dyn Recorder,
    ) -> Vec<Vec<u32>> {
        let mut lists: Vec<Vec<u32>> = (0..self.num_shards())
            .map(|s| self.shard_ctx(s).base_candidates(v, scratch, probe, rec))
            .collect();
        if let Probe::Hierarchical { .. } = probe {
            let union: usize = lists.iter().map(Vec::len).sum();
            if union < threshold {
                let _span = SpanTimer::start(rec, Stage::Escalate);
                rec.add(Counter::Escalations, 1);
                // Lockstep escalation: same bucket budget on every shard,
                // stop on the union count — the unsharded loop, distributed.
                let mut want_buckets = 2usize;
                loop {
                    let rounds: Vec<(Vec<u32>, bool)> = (0..self.num_shards())
                        .map(|s| self.shard_ctx(s).escalate_round(v, scratch, want_buckets, rec))
                        .collect();
                    let union: usize = rounds.iter().map(|(l, _)| l.len()).sum();
                    // The hierarchies are identical on every shard, so the
                    // exhaustion flags agree; `all` keeps it robust anyway.
                    let exhausted = rounds.iter().all(|&(_, e)| e);
                    if union >= threshold || exhausted {
                        lists = rounds.into_iter().map(|(l, _)| l).collect();
                        break;
                    }
                    want_buckets *= 2;
                }
            }
        }
        lists
    }

    /// Per-shard candidate generation with the paper's batch-median
    /// escalation rule — the sharded twin of
    /// [`BiLevelIndex::candidates_batch_with`]. Returns `[shard][query]`
    /// lists whose per-query unions equal the unsharded candidate sets.
    fn candidates_by_shard_with(
        &self,
        queries: &Dataset,
        threads: usize,
        rec: &dyn Recorder,
    ) -> Vec<Vec<Vec<u32>>> {
        self.candidates_by_shard(queries, threads, self.config.probe, None, rec)
    }

    /// Fixed-floor (batch-invariant) twin of
    /// [`BiLevelIndex::candidates_batch_at`], shaped `[shard][query]`.
    fn candidates_by_shard_at(
        &self,
        queries: &Dataset,
        threads: usize,
        probe: Probe,
        rec: &dyn Recorder,
    ) -> Vec<Vec<Vec<u32>>> {
        let floor = match probe {
            Probe::Hierarchical { min_candidates } => min_candidates,
            _ => 0,
        };
        self.candidates_by_shard(queries, threads, probe, Some(floor), rec)
    }

    /// Shared driver. `fixed_floor: None` selects the batch-median rule.
    fn candidates_by_shard(
        &self,
        queries: &Dataset,
        threads: usize,
        probe: Probe,
        fixed_floor: Option<usize>,
        rec: &dyn Recorder,
    ) -> Vec<Vec<Vec<u32>>> {
        assert_eq!(queries.dim(), self.data.dim(), "query dimension mismatch");
        assert!(
            self.supports_probe(probe),
            "probe {probe:?} needs hierarchies the index was not built with"
        );
        // Per-query base candidates, one disjoint list per shard.
        let mut per_query: Vec<Vec<Vec<u32>>> = vec![Vec::new(); queries.len()];
        parallel_fill_with(
            &mut per_query,
            threads,
            || ProjectionScratch::new(self.config.m),
            |scratch, q, slot| {
                *slot = (0..self.num_shards())
                    .map(|s| self.shard_ctx(s).base_candidates(queries.row(q), scratch, probe, rec))
                    .collect();
            },
        );
        if let Probe::Hierarchical { min_candidates } = probe {
            // Threshold: the batch median of union sizes (the paper's rule)
            // or the fixed floor (batch-invariant serving rule).
            let threshold = match fixed_floor {
                Some(floor) => floor,
                None => {
                    let mut sizes: Vec<usize> =
                        per_query.iter().map(|ls| ls.iter().map(Vec::len).sum()).collect();
                    sizes.sort_unstable();
                    sizes[sizes.len() / 2].max(min_candidates)
                }
            };
            let mut jobs: Vec<(usize, Vec<Vec<u32>>)> = per_query
                .iter()
                .enumerate()
                .filter(|(_, ls)| ls.iter().map(Vec::len).sum::<usize>() < threshold)
                .map(|(q, _)| (q, Vec::new()))
                .collect();
            parallel_fill_with(
                &mut jobs,
                threads,
                || ProjectionScratch::new(self.config.m),
                |scratch, _, job| {
                    job.1 =
                        self.shard_candidates(queries.row(job.0), scratch, probe, threshold, rec);
                },
            );
            for (q, lists) in jobs {
                per_query[q] = lists;
            }
        }
        // Transpose to [shard][query] for per-shard ranking.
        let mut by_shard: Vec<Vec<Vec<u32>>> =
            vec![Vec::with_capacity(queries.len()); self.num_shards()];
        for lists in per_query {
            for (s, l) in lists.into_iter().enumerate() {
                by_shard[s].push(l);
            }
        }
        by_shard
    }

    /// Ranks each shard's candidates with `engine` and merges the per-shard
    /// top-k lists into the global answer.
    fn rank_and_merge(
        &self,
        queries: &Dataset,
        by_shard: &[Vec<Vec<u32>>],
        k: usize,
        engine: Engine,
    ) -> BatchResult {
        // Each shard ranks in final metric units (sqrt already applied for
        // L2); merging afterwards is order-identical because the merge only
        // compares distances and sqrt is monotone.
        let per_shard_topk: Vec<Vec<Vec<Neighbor>>> = by_shard
            .iter()
            .map(|cands| {
                rank_by_metric(
                    &self.data,
                    queries,
                    cands,
                    k,
                    engine,
                    Some(&self.tombstones),
                    self.config.metric,
                    self.rank_norms.as_ref(),
                )
            })
            .collect();
        let neighbors: Vec<Vec<Neighbor>> = (0..queries.len())
            .map(|q| {
                let lists: Vec<Vec<Neighbor>> =
                    per_shard_topk.iter().map(|shard| shard[q].clone()).collect();
                merge_topk(&lists, k)
            })
            .collect();
        let candidates: Vec<usize> =
            (0..queries.len()).map(|q| by_shard.iter().map(|cands| cands[q].len()).sum()).collect();
        BatchResult { neighbors, candidates }
    }

    /// Batch k-nearest-neighbor query under a [`QueryOptions`] value — the
    /// sharded twin of [`BiLevelIndex::query_batch_opts`], bit-identical to
    /// it on the same data and config at every option combination.
    ///
    /// `options.probe` selects the escalation rule exactly as on the
    /// unsharded index: `None` uses the built probe with batch-median
    /// escalation run in lockstep across shards; `Some(p)` is the
    /// batch-invariant fixed-floor rule.
    ///
    /// # Panics
    ///
    /// Panics if [`Engine::validate`] rejects the engine for this `k`, or
    /// if `options.probe` is incompatible with the built index.
    pub fn query_batch_opts(&self, queries: &Dataset, options: &QueryOptions<'_>) -> BatchResult {
        let rec = options.recorder;
        options.engine.validate(options.k);
        let threads = options.engine.threads();
        let by_shard = match options.probe {
            None => self.candidates_by_shard_with(queries, threads, rec),
            Some(probe) => self.candidates_by_shard_at(queries, threads, probe, rec),
        };
        if rec.enabled() {
            rec.add(Counter::QueriesProbed, queries.len() as u64);
            for q in 0..queries.len() {
                let union: usize = by_shard.iter().map(|cands| cands[q].len()).sum();
                rec.add(Counter::CandidatesGenerated, union as u64);
                rec.observe(Value::CandidatesPerQuery, union as u64);
            }
        }
        let rank_span = SpanTimer::start(rec, Stage::Rank);
        let result = self.rank_and_merge(queries, &by_shard, options.k, options.engine);
        drop(rank_span);
        result
    }

    /// Batch query against **one shard only** — the building block for
    /// resilient fan-out layers that probe shards independently and merge
    /// whatever subset answered (circuit breakers, per-shard timeouts).
    ///
    /// Returns the shard-local top-k under global row ids with final
    /// (square-rooted) L2 distances, so per-shard lists from any subset of
    /// shards can be merged directly with [`shortlist::merge_topk`]. For
    /// `Probe::Home` and `Probe::Multi` the per-shard candidate sets
    /// partition the unsharded candidate set, so merging **all** shards'
    /// lists is bit-identical to [`ShardedIndex::query_batch_opts`] with
    /// the same probe override. For `Probe::Hierarchical` each shard
    /// escalates against the fixed `min_candidates` floor using only its
    /// own counts (there is no cross-shard union to coordinate on when
    /// shards answer independently), which can probe deeper than the
    /// lockstep loop — a superset, not bit-identical; fan-out layers must
    /// tag those responses accordingly.
    ///
    /// Per-shard queries always use the fixed-floor rule; `options.probe:
    /// None` selects the built probe.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, the engine is rejected for this
    /// `k`, or the probe is incompatible with the built index.
    pub fn query_shard_batch_opts(
        &self,
        shard: usize,
        queries: &Dataset,
        options: &QueryOptions<'_>,
    ) -> BatchResult {
        let (k, engine, rec) = (options.k, options.engine, options.recorder);
        let probe = options.probe.unwrap_or(self.config.probe);
        assert!(shard < self.num_shards(), "shard {shard} out of range");
        assert_eq!(queries.dim(), self.data.dim(), "query dimension mismatch");
        assert!(
            self.supports_probe(probe),
            "probe {probe:?} needs hierarchies the index was not built with"
        );
        engine.validate(k);
        let floor = match probe {
            Probe::Hierarchical { min_candidates } => min_candidates,
            _ => 0,
        };
        let mut cands: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        parallel_fill_with(
            &mut cands,
            engine.threads(),
            || ProjectionScratch::new(self.config.m),
            |scratch, q, slot| {
                let v = queries.row(q);
                let ctx = self.shard_ctx(shard);
                let mut list = ctx.base_candidates(v, scratch, probe, rec);
                if matches!(probe, Probe::Hierarchical { .. }) && list.len() < floor {
                    let span = SpanTimer::start(rec, Stage::Escalate);
                    rec.add(Counter::Escalations, 1);
                    let mut want_buckets = 2usize;
                    loop {
                        let (escalated, exhausted) =
                            ctx.escalate_round(v, scratch, want_buckets, rec);
                        list = escalated;
                        if list.len() >= floor || exhausted {
                            break;
                        }
                        want_buckets *= 2;
                    }
                    drop(span);
                }
                *slot = list;
            },
        );
        if rec.enabled() {
            rec.add(Counter::QueriesProbed, queries.len() as u64);
            let total: usize = cands.iter().map(Vec::len).sum();
            rec.add(Counter::CandidatesGenerated, total as u64);
        }
        let counts: Vec<usize> = cands.iter().map(Vec::len).collect();
        let rank_span = SpanTimer::start(rec, Stage::Rank);
        let neighbors = rank_by_metric(
            &self.data,
            queries,
            &cands,
            k,
            engine,
            Some(&self.tombstones),
            self.config.metric,
            self.rank_norms.as_ref(),
        );
        drop(rank_span);
        BatchResult { neighbors, candidates: counts }
    }

    /// Single-query convenience; equals the unsharded
    /// [`BiLevelIndex::query`].
    pub fn query(&self, v: &[f32], k: usize) -> Vec<Neighbor> {
        let mut q = Dataset::new(self.data.dim());
        q.push(v);
        self.query_batch_opts(&q, &QueryOptions::new(k))
            .neighbors
            .pop()
            .expect("one query in, one result out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Quantizer;
    use vecstore::synth::{self, ClusteredSpec};

    fn small_data() -> (Dataset, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(600), 42);
        all.split_at(500)
    }

    #[test]
    fn shard_ranges_partition_the_corpus() {
        let (data, _) = small_data();
        let idx = ShardedIndex::build(data.clone(), &BiLevelConfig::paper_default(2.0), 3);
        assert_eq!(idx.num_shards(), 3);
        let mut covered = 0;
        for s in 0..3 {
            let (lo, hi) = idx.shard_range(s);
            assert_eq!(lo, covered);
            covered = hi;
        }
        assert_eq!(covered, data.len());
    }

    /// The satellite contract: sharded `query(k)` equals unsharded
    /// `query(k)` on the same corpus for all 3 probe modes × 2 quantizers.
    #[test]
    fn sharded_equals_unsharded_across_modes_and_quantizers() {
        let (data, queries) = small_data();
        let probes = [Probe::Home, Probe::Multi(8), Probe::Hierarchical { min_candidates: 15 }];
        for quantizer in [Quantizer::Zm, Quantizer::E8] {
            for probe in probes {
                let cfg = BiLevelConfig::paper_default(2.0).quantizer(quantizer).probe(probe);
                let flat = BiLevelIndex::build(&data, &cfg);
                let sharded = ShardedIndex::build(data.clone(), &cfg, 4);
                let k = 8;
                // Batch path, median rule.
                let a = flat.query_batch_opts(&queries, &QueryOptions::new(k));
                let b = sharded.query_batch_opts(&queries, &QueryOptions::new(k));
                assert_eq!(a.neighbors, b.neighbors, "{quantizer:?} {probe:?}");
                assert_eq!(a.candidates, b.candidates, "{quantizer:?} {probe:?}");
                // Batch-invariant path at the full service level.
                let c = flat.query_batch_opts(&queries, &QueryOptions::new(k).probe(probe));
                let d = sharded.query_batch_opts(&queries, &QueryOptions::new(k).probe(probe));
                assert_eq!(c.neighbors, d.neighbors, "{quantizer:?} {probe:?}");
                assert_eq!(c.candidates, d.candidates, "{quantizer:?} {probe:?}");
                // Single-query path.
                for q in 0..5.min(queries.len()) {
                    assert_eq!(
                        flat.query(queries.row(q), k),
                        sharded.query(queries.row(q), k),
                        "single query {q} diverged ({quantizer:?}, {probe:?})"
                    );
                }
            }
        }
    }

    /// `from_built` over a loaded snapshot is the JOIN path: splitting a
    /// deserialized index must answer exactly like building sharded from
    /// scratch.
    #[test]
    fn from_built_matches_build() {
        let (data, queries) = small_data();
        for probe in [Probe::Home, Probe::Multi(8), Probe::Hierarchical { min_candidates: 15 }] {
            let cfg = BiLevelConfig::paper_default(2.0).probe(probe);
            let built = ShardedIndex::build(data.clone(), &cfg, 3);
            let full = BiLevelIndex::build_owned(data.clone(), &cfg);
            let split = ShardedIndex::from_built(full, 3);
            let a = built.query_batch_opts(&queries, &QueryOptions::new(8));
            let b = split.query_batch_opts(&queries, &QueryOptions::new(8));
            assert_eq!(a.neighbors, b.neighbors, "{probe:?}");
            assert_eq!(a.candidates, b.candidates, "{probe:?}");
        }
    }

    #[test]
    fn one_shard_degenerates_to_unsharded() {
        let (data, queries) = small_data();
        let cfg = BiLevelConfig::paper_default(2.0).probe(Probe::Multi(4));
        let flat = BiLevelIndex::build(&data, &cfg);
        let sharded = ShardedIndex::build(data.clone(), &cfg, 1);
        let a = flat.query_batch_opts(&queries, &QueryOptions::new(10));
        let b = sharded.query_batch_opts(&queries, &QueryOptions::new(10));
        assert_eq!(a.neighbors, b.neighbors);
    }

    #[test]
    fn sharded_parallel_engines_match_serial() {
        let (data, queries) = small_data();
        let cfg =
            BiLevelConfig::paper_default(2.0).probe(Probe::Hierarchical { min_candidates: 15 });
        let sharded = ShardedIndex::build(data, &cfg, 3);
        let k = 6;
        let serial = sharded.query_batch_opts(&queries, &QueryOptions::new(k));
        for engine in
            [Engine::PerQuery { threads: 3 }, Engine::WorkQueue { threads: 2, capacity: 128 }]
        {
            let got = sharded.query_batch_opts(&queries, &QueryOptions::new(k).engine(engine));
            assert_eq!(serial.neighbors, got.neighbors, "{engine:?}");
            assert_eq!(serial.candidates, got.candidates, "{engine:?}");
        }
    }

    #[test]
    fn degraded_rungs_work_sharded() {
        let (data, queries) = small_data();
        let cfg =
            BiLevelConfig::paper_default(2.0).probe(Probe::Hierarchical { min_candidates: 20 });
        let flat = BiLevelIndex::build(&data, &cfg);
        let sharded = ShardedIndex::build(data.clone(), &cfg, 2);
        for rung in cfg.probe.ladder() {
            let a = flat.query_batch_opts(&queries, &QueryOptions::new(5).probe(rung));
            let b = sharded.query_batch_opts(&queries, &QueryOptions::new(5).probe(rung));
            assert_eq!(a.neighbors, b.neighbors, "rung {rung:?}");
        }
    }

    #[test]
    fn per_shard_queries_merge_to_the_full_answer() {
        let (data, queries) = small_data();
        let k = 7;
        for probe in [Probe::Home, Probe::Multi(8)] {
            let cfg = BiLevelConfig::paper_default(2.0).probe(probe);
            let sharded = ShardedIndex::build(data.clone(), &cfg, 3);
            let full = sharded.query_batch_opts(&queries, &QueryOptions::new(k).probe(probe));
            let per_shard: Vec<BatchResult> = (0..3)
                .map(|s| {
                    sharded.query_shard_batch_opts(s, &queries, &QueryOptions::new(k).probe(probe))
                })
                .collect();
            for q in 0..queries.len() {
                let lists: Vec<Vec<Neighbor>> =
                    per_shard.iter().map(|r| r.neighbors[q].clone()).collect();
                assert_eq!(
                    merge_topk(&lists, k),
                    full.neighbors[q],
                    "independently queried shards must merge to the full answer \
                     (query {q}, {probe:?})"
                );
                let summed: usize = per_shard.iter().map(|r| r.candidates[q]).sum();
                assert_eq!(summed, full.candidates[q], "candidate counts partition ({probe:?})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let (data, _) = small_data();
        let _ = ShardedIndex::build(data, &BiLevelConfig::paper_default(2.0), 0);
    }
}
