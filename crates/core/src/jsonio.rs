//! Minimal JSON reader/writer for the config and stats paths.
//!
//! The crate's serde derives remain the canonical serialization, but the
//! CLI and config round-trip must also work in environments where the
//! `serde_json` backend is stubbed out (the repo builds against vendored
//! stand-ins when crates.io is unreachable). This module is a dependency-
//! free fallback: a small recursive-descent parser into a [`Value`] tree
//! plus the formatting helpers `config.rs`/`stats.rs` use to emit the same
//! document shape `serde_json` would (externally tagged enums, 2-space
//! pretty printing).
//!
//! Numbers are kept as raw text until a caller asks for a concrete type,
//! so `u64` seeds survive without an `f64` round-trip.

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as the source text.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses the number as `u64` (rejects floats and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Parses the number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(format!("unexpected character '{}' at byte {}", b as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| String::from("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| String::from("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| String::from("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for config keys;
                            // reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| String::from("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-borrow the underlying UTF-8 for multi-byte chars.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        // Validate eagerly so garbage fails at parse time, not at access.
        text.parse::<f64>().map_err(|_| format!("invalid number '{text}'"))?;
        Ok(Value::Num(text.to_string()))
    }
}

/// Formats a float the way `serde_json` does: shortest round-trip text,
/// with a `.0` appended to integral values so the token stays a float.
pub(crate) fn fmt_float(x: f64) -> String {
    with_point(format!("{x}"))
}

/// `f32` twin of [`fmt_float`]: formatting the `f32` directly keeps the
/// shortest-round-trip text (`0.1`, not the `f64`-widened
/// `0.10000000149011612`).
pub(crate) fn fmt_float32(x: f32) -> String {
    with_point(format!("{x}"))
}

fn with_point(s: String) -> String {
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{ "a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null }"#).unwrap();
        let arr = match v.get("a").unwrap() {
            Value::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn u64_seeds_do_not_lose_precision() {
        let v = parse("{\"seed\": 18446744073709551615}").unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("nulle").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn float_formatting_matches_serde_style() {
        assert_eq!(fmt_float(4.0), "4.0");
        assert_eq!(fmt_float(2.5), "2.5");
        assert_eq!(fmt_float(-0.125), "-0.125");
    }
}
