//! `bilevel` — command-line front end for indexing and querying `.fvecs`
//! corpora with Bi-level LSH.
//!
//! ```text
//! bilevel build  <corpus.fvecs> <index.snap> [--w W | --target-recall R] [--groups G] [--tables L] [--e8]
//! bilevel query  <corpus.fvecs> <index.snap> <queries.fvecs> [--k K]
//! bilevel stats  <corpus.fvecs> <index.snap>
//! bilevel exact  <corpus.fvecs> <queries.fvecs> [--k K]   (brute-force reference)
//! ```
//!
//! Hand-rolled flag parsing keeps the binary dependency-free beyond the
//! workspace crates.

use bilevel_lsh::{BiLevelConfig, BiLevelIndex, Partition, Quantizer, QueryOptions, WidthMode};
use rptree::SplitRule;
use std::path::Path;
use std::process::ExitCode;
use vecstore::io::read_fvecs;
use vecstore::{knn_batch, SquaredL2};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         bilevel build  <corpus.fvecs> <index.snap> [--w W | --target-recall R] [--groups G] [--tables L] [--m M] [--e8] [--seed S]\n  \
         bilevel query  <corpus.fvecs> <index.snap> <queries.fvecs> [--k K]\n  \
         bilevel stats  <corpus.fvecs> <index.snap>\n  \
         bilevel exact  <corpus.fvecs> <queries.fvecs> [--k K]\n\
         (for live serving over stdin, see the `bilevel-serve` binary)"
    );
    ExitCode::from(2)
}

/// Pulls `--flag value` pairs out of the free arguments.
struct Flags(Vec<String>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(|s| s.as_str())
    }
    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            }),
            None => default,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let result = match cmd.as_str() {
        "build" => cmd_build(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "exact" => cmd_exact(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn config_from_flags(flags: &Flags) -> BiLevelConfig {
    let groups: usize = flags.num("--groups", 16);
    let width = match flags.get("--target-recall") {
        Some(r) => WidthMode::Tuned {
            target_recall: r.parse().unwrap_or_else(|_| {
                eprintln!("invalid --target-recall");
                std::process::exit(2);
            }),
            k: flags.num("--k", 10),
        },
        None => WidthMode::Scaled { base: flags.num("--w", 1.0f32), k: flags.num("--k", 10) },
    };
    BiLevelConfig {
        l: flags.num("--tables", 10),
        m: flags.num("--m", 8),
        width,
        partition: if groups <= 1 {
            Partition::None
        } else {
            Partition::RpTree { groups, rule: SplitRule::Max }
        },
        quantizer: if flags.has("--e8") { Quantizer::E8 } else { Quantizer::Zm },
        probe: bilevel_lsh::Probe::Home,
        table_pool: flags.get("--pool").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid --pool");
                std::process::exit(2);
            })
        }),
        projection: match flags.get("--sparse-nnz") {
            None => bilevel_lsh::Projection::Dense,
            Some(v) => bilevel_lsh::Projection::Sparse {
                nnz: v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --sparse-nnz");
                    std::process::exit(2);
                }),
            },
        },
        metric: bilevel_lsh::MetricKind::L2,
        family: bilevel_lsh::FamilyKind::PStable,
        seed: flags.num("--seed", 0x0b11_e7e1u64),
    }
}

fn cmd_build(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [corpus_path, index_path, flags @ ..] = rest else {
        return Err("build needs <corpus.fvecs> <index.snap>".into());
    };
    let flags = Flags(flags.to_vec());
    let data = read_fvecs(Path::new(corpus_path))?;
    eprintln!("corpus: {} vectors, dim {}", data.len(), data.dim());
    let config = config_from_flags(&flags);
    let t = std::time::Instant::now();
    let index = BiLevelIndex::build(&data, &config);
    eprintln!(
        "built in {:.1}s: {} groups, widths {:?}",
        t.elapsed().as_secs_f64(),
        index.num_groups(),
        &index.group_widths()[..index.group_widths().len().min(4)]
    );
    index.save(Path::new(index_path))?;
    eprintln!("saved {index_path}");
    Ok(())
}

fn cmd_query(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [corpus_path, index_path, queries_path, flags @ ..] = rest else {
        return Err("query needs <corpus.fvecs> <index.snap> <queries.fvecs>".into());
    };
    let flags = Flags(flags.to_vec());
    let k: usize = flags.num("--k", 10);
    let data = read_fvecs(Path::new(corpus_path))?;
    let queries = read_fvecs(Path::new(queries_path))?;
    let index = BiLevelIndex::load(&data, Path::new(index_path))?;
    let t = std::time::Instant::now();
    let result = index.query_batch_opts(&queries, &QueryOptions::new(k));
    let ms = t.elapsed().as_secs_f64() * 1e3;
    // One line per query: id:distance pairs.
    let mut out = String::new();
    for hits in &result.neighbors {
        for (i, n) in hits.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}:{:.6}", n.id, n.dist));
        }
        out.push('\n');
    }
    print!("{out}");
    eprintln!(
        "{} queries in {ms:.1} ms ({:.3} ms/query), mean candidates {:.1}",
        queries.len(),
        ms / queries.len() as f64,
        result.candidates.iter().sum::<usize>() as f64 / queries.len() as f64,
    );
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [corpus_path, index_path, ..] = rest else {
        return Err("stats needs <corpus.fvecs> <index.snap>".into());
    };
    let data = read_fvecs(Path::new(corpus_path))?;
    let index = BiLevelIndex::load(&data, Path::new(index_path))?;
    let stats = index.stats();
    println!("{}", stats.to_json_pretty());
    eprintln!("group imbalance: {:.2}", stats.group_imbalance());
    Ok(())
}

fn cmd_exact(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [corpus_path, queries_path, flags @ ..] = rest else {
        return Err("exact needs <corpus.fvecs> <queries.fvecs>".into());
    };
    let flags = Flags(flags.to_vec());
    let k: usize = flags.num("--k", 10);
    let data = read_fvecs(Path::new(corpus_path))?;
    let queries = read_fvecs(Path::new(queries_path))?;
    let t = std::time::Instant::now();
    let truth = knn_batch(&data, &queries, k, &SquaredL2, 1);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let mut out = String::new();
    for hits in &truth {
        for (i, n) in hits.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}:{:.6}", n.id, (n.dist).sqrt()));
        }
        out.push('\n');
    }
    print!("{out}");
    eprintln!("{} exact queries in {ms:.1} ms", queries.len());
    Ok(())
}
