//! Index persistence: save a built [`BiLevelIndex`] or [`OocFlatIndex`] to
//! disk and load it back without re-hashing the dataset.
//!
//! A snapshot contains the *index structure only* — level-1 partitioner,
//! per-group widths, hash families, and bucket contents — not the vectors,
//! which the index borrows. Loading therefore takes the same dataset again
//! and verifies a fingerprint (length, dimension, and a content checksum) so
//! a snapshot can never be silently attached to different data. Out-of-core
//! snapshots fingerprint a strided row sample instead of the whole file, so
//! attaching a 100 GB dataset never re-reads all of it.
//!
//! Two formats exist:
//!
//! * **v2 (preferred, what [`BiLevelIndex::save_to`] writes)**: length-
//!   prefixed little-endian binary. The stream is `magic · version · kind`
//!   followed by checksummed sections (see `binio`); corrupt or
//!   truncated sections are rejected section-by-section with a
//!   [`PersistError::Format`] naming the section.
//! * **v1 (legacy)**: the original `serde_json` document, still written by
//!   [`BiLevelIndex::save_json_to`] and still accepted by
//!   [`BiLevelIndex::load_from`], which auto-detects the format from the
//!   first four bytes (JSON can never begin with the v2 magic).
//!
//! Both loaders share one structural validator: bucket codes must be unique
//! per table and carry the quantizer's arity, ids must be in range, and the
//! group shape must agree with the level-1 partitioner.
//!
//! Bucket hierarchies are *not* stored: they are deterministic functions of
//! the bucket codes and are rebuilt on load when the configuration demands
//! them.

use crate::binio::{
    read_optional_section, read_section, write_section, ByteReader, ByteWriter, MAGIC,
};
use crate::config::{
    BiLevelConfig, FamilyKind, MetricKind, Partition, Probe, Quantizer, WidthMode,
};
use crate::index::{build_table_hierarchy, BiLevelIndex, GroupTable, Level1};
use crate::interval::{IntervalParts, IntervalTable};
use crate::ooc::OocFlatIndex;
use cuckoo::{CuckooParts, NUM_HASHES};
use lsh::{
    level2_from_parts, FamilyParts, HashFamily, Level2, Level2Parts, Level2PartsKind, LshTable,
    Projection,
};
use rptree::{
    KMeans, KdNodeParts, KdPartitioner, KdParts, RpNodeParts, RpTree, RpTreeParts, SplitRule,
};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use vecstore::ooc::OocDataset;
use vecstore::{Dataset, Tombstones};

/// Version written by the legacy JSON path.
const JSON_VERSION: u32 = 1;

/// Version written by the binary path.
const BINARY_VERSION: u32 = 2;

/// Stream kind: in-memory [`BiLevelIndex`] snapshot.
const KIND_BILEVEL: u8 = 1;

/// Stream kind: disk-resident [`OocFlatIndex`] snapshot.
const KIND_OOC: u8 = 2;

/// Errors arising while saving or loading a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed, corrupt, or wrong-version snapshot.
    Format(String),
    /// The dataset supplied at load time does not match the snapshot's
    /// fingerprint.
    DataMismatch(String),
    /// A crash-safe save failed before its atomic rename: the new
    /// snapshot could not be written durably, and the previous file at
    /// the destination (if any) was left untouched.
    PartialWrite {
        /// Destination the save was aimed at.
        path: std::path::PathBuf,
        /// The underlying failure.
        source: std::io::Error,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "snapshot format error: {m}"),
            PersistError::DataMismatch(m) => write!(f, "dataset mismatch: {m}"),
            PersistError::PartialWrite { path, source } => write!(
                f,
                "partial write saving {} (existing file untouched): {source}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Fingerprint binding a snapshot to the dataset it was built over.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct DataFingerprint {
    len: usize,
    dim: usize,
    /// FNV-1a over the raw little-endian bytes of the hashed rows.
    checksum: u64,
}

/// Rows a sampled (out-of-core) fingerprint hashes, strided over the file.
const FINGERPRINT_SAMPLE_ROWS: usize = 64;

fn fnv_fold_f32(h: &mut u64, vs: &[f32]) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for v in vs {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(PRIME);
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

impl DataFingerprint {
    fn of(data: &Dataset) -> Self {
        let mut h = FNV_OFFSET;
        fnv_fold_f32(&mut h, data.as_flat());
        Self { len: data.len(), dim: data.dim(), checksum: h }
    }

    /// Sampled fingerprint of a disk-resident dataset: hashes up to
    /// [`FINGERPRINT_SAMPLE_ROWS`] rows strided across the file (plus the
    /// length and dimension), never the whole file.
    fn of_ooc(source: &OocDataset) -> std::io::Result<Self> {
        let n = source.len();
        let step = n.div_ceil(FINGERPRINT_SAMPLE_ROWS).max(1);
        let mut h = FNV_OFFSET;
        let mut buf = vec![0.0f32; source.dim()];
        let mut i = 0usize;
        while i < n {
            source.read_row_into(i, &mut buf)?;
            fnv_fold_f32(&mut h, &buf);
            i += step;
        }
        Ok(Self { len: n, dim: source.dim(), checksum: h })
    }

    fn check(&self, actual: &Self) -> Result<(), PersistError> {
        if self == actual {
            return Ok(());
        }
        Err(PersistError::DataMismatch(format!(
            "snapshot was built over {} × dim {} (checksum {:#x}), \
             got {} × dim {} (checksum {:#x})",
            self.len, self.dim, self.checksum, actual.len, actual.dim, actual.checksum,
        )))
    }
}

/// Lattice code arity the configured quantizer emits: `m` coordinates for
/// `Z^M`, whole 8-blocks for E8 (the decoder zero-pads the final block).
fn code_arity(config: &BiLevelConfig) -> usize {
    match config.quantizer {
        Quantizer::Zm => config.m,
        Quantizer::E8 => config.m.div_ceil(8) * 8,
    }
}

/// Structural validation shared by the v1 and v2 loaders: every bucket code
/// must carry the quantizer's arity and appear at most once per table.
fn check_bucket_codes<C: AsRef<[i32]>>(codes: &[C], arity: usize) -> Result<(), PersistError> {
    let mut seen = std::collections::HashSet::with_capacity(codes.len());
    for code in codes {
        let code = code.as_ref();
        if code.len() != arity {
            return Err(PersistError::Format(format!(
                "bucket code has arity {}, quantizer requires {arity}",
                code.len()
            )));
        }
        if !seen.insert(code) {
            return Err(PersistError::Format(format!("duplicate bucket code {code:?}")));
        }
    }
    Ok(())
}

/// Group-shape validation shared by the v1 and v2 loaders.
fn check_group_shape(
    num_groups: usize,
    table_groups: usize,
    widths: &[f32],
    config: &BiLevelConfig,
) -> Result<(), PersistError> {
    if table_groups != num_groups {
        return Err(PersistError::Format(format!(
            "snapshot has {table_groups} table groups, level-1 partitioner has {num_groups}"
        )));
    }
    if widths.len() != num_groups {
        return Err(PersistError::Format(format!(
            "snapshot has {} group widths for {num_groups} groups",
            widths.len()
        )));
    }
    if widths.iter().any(|w| !(w.is_finite() && *w > 0.0)) {
        return Err(PersistError::Format("non-positive group width".into()));
    }
    if config.l == 0 || config.m == 0 {
        return Err(PersistError::Format("config has zero tables or hash dimension".into()));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// v2 section encoders/decoders. Each returns/consumes one framed payload;
// the decoders validate everything the encoders take for granted.
// ---------------------------------------------------------------------------

fn sec_fingerprint(fp: &DataFingerprint) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(fp.len);
    w.put_len(fp.dim);
    w.put_u64(fp.checksum);
    w.into_bytes()
}

fn dec_fingerprint(bytes: &[u8]) -> Result<DataFingerprint, PersistError> {
    let mut r = ByteReader::new(bytes, "fingerprint");
    let fp = DataFingerprint { len: r.len()?, dim: r.len()?, checksum: r.u64()? };
    r.finish()?;
    Ok(fp)
}

fn sec_config(config: &BiLevelConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(config.l);
    w.put_len(config.m);
    w.put_u64(config.seed);
    match config.width {
        WidthMode::Fixed(v) => {
            w.put_u8(0);
            w.put_f32(v);
        }
        WidthMode::Scaled { base, k } => {
            w.put_u8(1);
            w.put_f32(base);
            w.put_len(k);
        }
        WidthMode::Tuned { target_recall, k } => {
            w.put_u8(2);
            w.put_f64(target_recall);
            w.put_len(k);
        }
    }
    match config.partition {
        Partition::None => w.put_u8(0),
        Partition::RpTree { groups, rule } => {
            w.put_u8(1);
            w.put_len(groups);
            w.put_u8(match rule {
                SplitRule::Max => 0,
                SplitRule::Mean => 1,
            });
        }
        Partition::KMeans { groups } => {
            w.put_u8(2);
            w.put_len(groups);
        }
        Partition::Kd { groups } => {
            w.put_u8(3);
            w.put_len(groups);
        }
    }
    w.put_u8(match config.quantizer {
        Quantizer::Zm => 0,
        Quantizer::E8 => 1,
    });
    match config.probe {
        Probe::Home => w.put_u8(0),
        Probe::Multi(t) => {
            w.put_u8(1);
            w.put_len(t);
        }
        Probe::Hierarchical { min_candidates } => {
            w.put_u8(2);
            w.put_len(min_candidates);
        }
    }
    match config.table_pool {
        None => w.put_u8(0),
        Some(pool) => {
            w.put_u8(1);
            w.put_len(pool);
        }
    }
    // Trailing optional fields, appended ONLY when non-default, so
    // snapshots of default-valued configs stay byte-identical to the
    // pre-field formats (and old snapshots, which end early, decode as
    // the defaults). Later fields force earlier ones to be written
    // explicitly: a metric/family pair needs the projection tag in front
    // of it (tag 0 = Dense) so the decoder can tell the sections apart.
    let nondefault_metric = config.metric != MetricKind::L2 || config.family != FamilyKind::PStable;
    match config.projection {
        Projection::Sparse { nnz } => {
            w.put_u8(1);
            w.put_len(nnz);
        }
        Projection::Dense if nondefault_metric => w.put_u8(0),
        Projection::Dense => {}
    }
    if nondefault_metric {
        match config.metric {
            MetricKind::L2 => w.put_u8(0),
            MetricKind::Cosine => w.put_u8(1),
            MetricKind::InnerProduct => w.put_u8(2),
            MetricKind::Lp { p } => {
                w.put_u8(3);
                w.put_f32(p);
            }
        }
        match config.family {
            FamilyKind::PStable => w.put_u8(0),
            FamilyKind::Srp => w.put_u8(1),
            FamilyKind::Mips => w.put_u8(2),
            FamilyKind::LpStable { p } => {
                w.put_u8(3);
                w.put_f32(p);
            }
        }
    }
    w.into_bytes()
}

fn dec_config(bytes: &[u8]) -> Result<BiLevelConfig, PersistError> {
    let bad = |what: &str| PersistError::Format(format!("config: unknown {what} tag"));
    let mut r = ByteReader::new(bytes, "config");
    let l = r.len()?;
    let m = r.len()?;
    let seed = r.u64()?;
    let width = match r.u8()? {
        0 => WidthMode::Fixed(r.f32()?),
        1 => WidthMode::Scaled { base: r.f32()?, k: r.len()? },
        2 => WidthMode::Tuned { target_recall: r.f64()?, k: r.len()? },
        _ => return Err(bad("width mode")),
    };
    let partition = match r.u8()? {
        0 => Partition::None,
        1 => {
            let groups = r.len()?;
            let rule = match r.u8()? {
                0 => SplitRule::Max,
                1 => SplitRule::Mean,
                _ => return Err(bad("split rule")),
            };
            Partition::RpTree { groups, rule }
        }
        2 => Partition::KMeans { groups: r.len()? },
        3 => Partition::Kd { groups: r.len()? },
        _ => return Err(bad("partition")),
    };
    let quantizer = match r.u8()? {
        0 => Quantizer::Zm,
        1 => Quantizer::E8,
        _ => return Err(bad("quantizer")),
    };
    let probe = match r.u8()? {
        0 => Probe::Home,
        1 => Probe::Multi(r.len()?),
        2 => Probe::Hierarchical { min_candidates: r.len()? },
        _ => return Err(bad("probe")),
    };
    let table_pool = match r.u8()? {
        0 => None,
        1 => Some(r.len()?),
        _ => return Err(bad("table pool")),
    };
    // Pre-projection snapshots end here; a trailing tag is the explicit
    // projection (0 = Dense, written only when metric/family follow).
    let projection = if r.remaining() == 0 {
        Projection::Dense
    } else {
        match r.u8()? {
            0 => Projection::Dense,
            1 => Projection::Sparse { nnz: r.len()? },
            _ => return Err(bad("projection")),
        }
    };
    // Pre-metric snapshots end here and decode as the L2 / p-stable
    // pairing they were built with.
    let (metric, family) = if r.remaining() == 0 {
        (MetricKind::L2, FamilyKind::PStable)
    } else {
        let metric = match r.u8()? {
            0 => MetricKind::L2,
            1 => MetricKind::Cosine,
            2 => MetricKind::InnerProduct,
            3 => MetricKind::Lp { p: r.f32()? },
            _ => return Err(bad("metric")),
        };
        let family = match r.u8()? {
            0 => FamilyKind::PStable,
            1 => FamilyKind::Srp,
            2 => FamilyKind::Mips,
            3 => FamilyKind::LpStable { p: r.f32()? },
            _ => return Err(bad("family")),
        };
        (metric, family)
    };
    r.finish()?;
    Ok(BiLevelConfig {
        l,
        m,
        width,
        partition,
        quantizer,
        probe,
        table_pool,
        projection,
        metric,
        family,
        seed,
    })
}

fn sec_level1(level1: &Level1) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match level1 {
        Level1::Single(_) => w.put_u8(0),
        Level1::Rp(tree) => {
            w.put_u8(1);
            let parts = tree.to_parts();
            w.put_len(parts.num_leaves);
            w.put_len(parts.dim);
            w.put_len(parts.nodes.len());
            for node in &parts.nodes {
                match node {
                    RpNodeParts::Leaf { leaf_id } => {
                        w.put_u8(0);
                        w.put_len(*leaf_id);
                    }
                    RpNodeParts::ProjSplit { dir, threshold, left, right } => {
                        w.put_u8(1);
                        w.put_f32(*threshold);
                        w.put_len(*left);
                        w.put_len(*right);
                        w.put_f32s(dir);
                    }
                    RpNodeParts::DistSplit { mean, threshold_sq, left, right } => {
                        w.put_u8(2);
                        w.put_f32(*threshold_sq);
                        w.put_len(*left);
                        w.put_len(*right);
                        w.put_f32s(mean);
                    }
                }
            }
        }
        Level1::Km(km) => {
            w.put_u8(2);
            let c = km.centroids();
            w.put_len(c.len());
            w.put_len(c.dim());
            w.put_f32s(c.as_flat());
        }
        Level1::Kd(kd) => {
            w.put_u8(3);
            let parts = kd.to_parts();
            w.put_len(parts.num_leaves);
            w.put_len(parts.dim);
            w.put_len(parts.nodes.len());
            for node in &parts.nodes {
                match node {
                    KdNodeParts::Leaf { leaf_id } => {
                        w.put_u8(0);
                        w.put_len(*leaf_id);
                    }
                    KdNodeParts::Split { axis, threshold, left, right } => {
                        w.put_u8(1);
                        w.put_len(*axis);
                        w.put_f32(*threshold);
                        w.put_len(*left);
                        w.put_len(*right);
                    }
                }
            }
        }
    }
    w.into_bytes()
}

fn dec_level1(bytes: &[u8]) -> Result<Level1, PersistError> {
    let invalid = |e: rptree::InvalidParts| PersistError::Format(e.to_string());
    let mut r = ByteReader::new(bytes, "level1");
    let level1 = match r.u8()? {
        0 => Level1::Single(rptree::SinglePartition),
        1 => {
            let num_leaves = r.len()?;
            let dim = r.len()?;
            let node_count = r.len()?;
            let mut nodes = Vec::new();
            for _ in 0..node_count {
                nodes.push(match r.u8()? {
                    0 => RpNodeParts::Leaf { leaf_id: r.len()? },
                    1 => {
                        let threshold = r.f32()?;
                        let left = r.len()?;
                        let right = r.len()?;
                        RpNodeParts::ProjSplit { threshold, left, right, dir: r.f32s(dim)? }
                    }
                    2 => {
                        let threshold_sq = r.f32()?;
                        let left = r.len()?;
                        let right = r.len()?;
                        RpNodeParts::DistSplit { threshold_sq, left, right, mean: r.f32s(dim)? }
                    }
                    _ => return Err(PersistError::Format("level1: unknown rp node tag".into())),
                });
            }
            Level1::Rp(RpTree::from_parts(RpTreeParts { nodes, num_leaves, dim }).map_err(invalid)?)
        }
        2 => {
            let count = r.len()?;
            let dim = r.len()?;
            if dim == 0 {
                return Err(PersistError::Format("level1: zero-dimensional centroids".into()));
            }
            let flat =
                r.f32s(count.checked_mul(dim).ok_or_else(|| {
                    PersistError::Format("level1: centroid size overflows".into())
                })?)?;
            Level1::Km(KMeans::from_centroids(Dataset::from_flat(dim, flat)).map_err(invalid)?)
        }
        3 => {
            let num_leaves = r.len()?;
            let dim = r.len()?;
            let node_count = r.len()?;
            let mut nodes = Vec::new();
            for _ in 0..node_count {
                nodes.push(match r.u8()? {
                    0 => KdNodeParts::Leaf { leaf_id: r.len()? },
                    1 => {
                        let axis = r.len()?;
                        let threshold = r.f32()?;
                        let left = r.len()?;
                        let right = r.len()?;
                        KdNodeParts::Split { axis, threshold, left, right }
                    }
                    _ => return Err(PersistError::Format("level1: unknown kd node tag".into())),
                });
            }
            Level1::Kd(
                KdPartitioner::from_parts(KdParts { nodes, num_leaves, dim }).map_err(invalid)?,
            )
        }
        _ => return Err(PersistError::Format("level1: unknown partitioner tag".into())),
    };
    r.finish()?;
    Ok(level1)
}

fn sec_widths(widths: &[f32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(widths.len());
    w.put_f32s(widths);
    w.into_bytes()
}

fn dec_widths(bytes: &[u8]) -> Result<Vec<f32>, PersistError> {
    let mut r = ByteReader::new(bytes, "group widths");
    let count = r.len()?;
    let widths = r.f32s(count)?;
    r.finish()?;
    Ok(widths)
}

fn put_family_parts(w: &mut ByteWriter, parts: &FamilyParts) {
    w.put_len(parts.dim);
    w.put_len(parts.b.len());
    w.put_f32(parts.w);
    w.put_f32s(&parts.a);
    w.put_f32s(&parts.b);
}

fn put_family(w: &mut ByteWriter, family: &HashFamily) {
    put_family_parts(w, &family.to_parts());
}

fn take_family_parts(r: &mut ByteReader) -> Result<FamilyParts, PersistError> {
    let dim = r.len()?;
    let m = r.len()?;
    let w = r.f32()?;
    let a = r.f32s(
        m.checked_mul(dim)
            .ok_or_else(|| PersistError::Format("family: matrix size overflows".into()))?,
    )?;
    let b = r.f32s(m)?;
    Ok(FamilyParts { a, b, w, dim })
}

fn take_family(r: &mut ByteReader) -> Result<HashFamily, PersistError> {
    HashFamily::from_parts(take_family_parts(r)?).map_err(|e| PersistError::Format(e.to_string()))
}

/// Writes a level-2 family. The family kind is *not* tagged here: the
/// config section (decoded first) already pins `config.family`, so the
/// p-stable arm stays byte-identical to the legacy `put_family` layout
/// and pre-family snapshots keep decoding. Non-p-stable kinds prefix the
/// base-array dump with their scalar extras (MIPS corpus scale, `l_p`
/// order).
fn put_level2(w: &mut ByteWriter, family: &Level2) {
    let parts = family.to_parts();
    match parts.kind {
        Level2PartsKind::PStable | Level2PartsKind::Srp => {}
        Level2PartsKind::Mips { scale } => w.put_f32(scale),
        Level2PartsKind::Lp { p } => w.put_f32(p),
    }
    put_family_parts(w, &parts.base);
}

fn take_level2(r: &mut ByteReader, family: FamilyKind) -> Result<Level2, PersistError> {
    let kind = match family {
        FamilyKind::PStable => Level2PartsKind::PStable,
        FamilyKind::Srp => Level2PartsKind::Srp,
        FamilyKind::Mips => Level2PartsKind::Mips { scale: r.f32()? },
        FamilyKind::LpStable { .. } => Level2PartsKind::Lp { p: r.f32()? },
    };
    let base = take_family_parts(r)?;
    level2_from_parts(Level2Parts { kind, base }).map_err(|e| PersistError::Format(e.to_string()))
}

fn sec_tables(tables: &[Vec<GroupTable>]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(tables.len());
    for per_group in tables {
        w.put_len(per_group.len());
        for gt in per_group {
            put_level2(&mut w, &gt.family);
            w.put_len(gt.bucket_codes.len());
            for code in &gt.bucket_codes {
                w.put_len(code.len());
                w.put_i32s(code);
            }
            // Buckets in the same deterministic sorted-code order, so
            // snapshots of the same index are byte-identical.
            for code in &gt.bucket_codes {
                let ids = gt.table.bucket(code);
                w.put_len(ids.len());
                w.put_u32s(ids);
            }
        }
    }
    w.into_bytes()
}

fn dec_tables(
    bytes: &[u8],
    config: &BiLevelConfig,
    data_len: usize,
) -> Result<Vec<Vec<GroupTable>>, PersistError> {
    let arity = code_arity(config);
    let build_hierarchy = matches!(config.probe, Probe::Hierarchical { .. });
    let tables_per_group = config.table_pool.unwrap_or(config.l);
    let mut r = ByteReader::new(bytes, "tables");
    let groups = r.len()?;
    let mut tables = Vec::new();
    for _ in 0..groups {
        let per = r.len()?;
        if per != tables_per_group {
            return Err(PersistError::Format(format!(
                "group has {per} tables, config demands {tables_per_group}"
            )));
        }
        let mut per_group = Vec::with_capacity(per);
        for _ in 0..per {
            let family = take_level2(&mut r, config.family)?;
            if family.m() != config.m {
                return Err(PersistError::Format(format!(
                    "family has m = {}, config has m = {}",
                    family.m(),
                    config.m
                )));
            }
            let code_count = r.len()?;
            let mut bucket_codes: Vec<Box<[i32]>> = Vec::new();
            for _ in 0..code_count {
                let clen = r.len()?;
                bucket_codes.push(r.i32s(clen)?.into_boxed_slice());
            }
            check_bucket_codes(&bucket_codes, arity)?;
            let mut table = LshTable::new();
            for code in &bucket_codes {
                let id_count = r.len()?;
                if id_count == 0 {
                    return Err(PersistError::Format("empty bucket in snapshot".into()));
                }
                for id in r.u32s(id_count)? {
                    if id as usize >= data_len {
                        return Err(PersistError::Format(format!("bucket id {id} out of range")));
                    }
                    table.insert(code, id);
                }
            }
            let hierarchy = if build_hierarchy && !bucket_codes.is_empty() {
                Some(build_table_hierarchy(&bucket_codes, config.quantizer))
            } else {
                None
            };
            per_group.push(GroupTable { family, table, bucket_codes, hierarchy });
        }
        tables.push(per_group);
    }
    r.finish()?;
    Ok(tables)
}

/// Mutability state: the txn epoch and the tombstone bitmap. Appended as a
/// trailing section only when non-trivial, so snapshots of never-mutated
/// indexes stay byte-identical to the pre-mutability format (and decode
/// under old readers, which stop after the structural sections).
fn sec_mutability(tombstones: &Tombstones, epoch: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(epoch);
    w.put_len(tombstones.count());
    let words = tombstones.as_words();
    w.put_len(words.len());
    w.put_u64s(words);
    w.into_bytes()
}

fn dec_mutability(bytes: &[u8], data_len: usize) -> Result<(Tombstones, u64), PersistError> {
    let mut r = ByteReader::new(bytes, "mutability");
    let epoch = r.u64()?;
    let count = r.len()?;
    let word_count = r.len()?;
    let words = r.u64s(word_count)?;
    r.finish()?;
    let tombstones = Tombstones::from_words(words);
    if tombstones.count() != count {
        return Err(PersistError::Format(format!(
            "mutability section claims {count} tombstones, bitmap holds {}",
            tombstones.count()
        )));
    }
    if let Some(id) = tombstones.iter().find(|&id| id as usize >= data_len) {
        return Err(PersistError::Format(format!("tombstoned id {id} out of range")));
    }
    Ok((tombstones, epoch))
}

fn sec_families(families: &[HashFamily]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(families.len());
    for family in families {
        put_family(&mut w, family);
    }
    w.into_bytes()
}

fn dec_families(bytes: &[u8]) -> Result<Vec<HashFamily>, PersistError> {
    let mut r = ByteReader::new(bytes, "families");
    let count = r.len()?;
    let mut families = Vec::new();
    for _ in 0..count {
        families.push(take_family(&mut r)?);
    }
    r.finish()?;
    Ok(families)
}

fn sec_linear(linear: &[u32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(linear.len());
    w.put_u32s(linear);
    w.into_bytes()
}

fn dec_linear(bytes: &[u8]) -> Result<Vec<u32>, PersistError> {
    let mut r = ByteReader::new(bytes, "linear");
    let count = r.len()?;
    let linear = r.u32s(count)?;
    r.finish()?;
    Ok(linear)
}

fn sec_intervals(intervals: &IntervalTable) -> Vec<u8> {
    let parts = intervals.to_parts();
    let mut w = ByteWriter::new();
    w.put_len(parts.spans.len());
    for &(start, len) in &parts.spans {
        w.put_u64(start);
        w.put_u64(len);
    }
    let lk = &parts.lookup;
    w.put_len(lk.slots.len());
    w.put_u64s(&lk.slots);
    w.put_len(lk.items.len());
    for &(k, v) in &lk.items {
        w.put_u64(k);
        w.put_u64(v);
    }
    w.put_len(lk.stash.len());
    for &(k, v) in &lk.stash {
        w.put_u64(k);
        w.put_u64(v);
    }
    w.put_u64s(&lk.seed_mul);
    w.put_u64s(&lk.seed_add);
    w.put_len(lk.max_chain);
    w.into_bytes()
}

fn dec_intervals(bytes: &[u8]) -> Result<IntervalTable, PersistError> {
    let mut r = ByteReader::new(bytes, "intervals");
    let span_count = r.len()?;
    let mut spans = Vec::new();
    for _ in 0..span_count {
        let start = r.u64()?;
        let len = r.u64()?;
        spans.push((start, len));
    }
    let slot_count = r.len()?;
    let slots = r.u64s(slot_count)?;
    let item_count = r.len()?;
    let mut items = Vec::new();
    for _ in 0..item_count {
        let k = r.u64()?;
        let v = r.u64()?;
        items.push((k, v));
    }
    let stash_count = r.len()?;
    let mut stash = Vec::new();
    for _ in 0..stash_count {
        let k = r.u64()?;
        let v = r.u64()?;
        stash.push((k, v));
    }
    let seed_mul: [u64; NUM_HASHES] =
        r.u64s(NUM_HASHES)?.try_into().expect("read exactly NUM_HASHES");
    let seed_add: [u64; NUM_HASHES] =
        r.u64s(NUM_HASHES)?.try_into().expect("read exactly NUM_HASHES");
    let max_chain = r.len()?;
    r.finish()?;
    let lookup = CuckooParts { slots, items, stash, seed_mul, seed_add, max_chain };
    IntervalTable::from_parts(IntervalParts { spans, lookup })
        .map_err(|e| PersistError::Format(e.to_string()))
}

/// Writes a v2 stream: magic, version, kind, then the framed sections.
fn write_v2<W: Write>(mut w: W, kind: u8, sections: &[Vec<u8>]) -> Result<(), PersistError> {
    w.write_all(&MAGIC)?;
    w.write_all(&BINARY_VERSION.to_le_bytes())?;
    w.write_all(&[kind])?;
    for section in sections {
        write_section(&mut w, section)?;
    }
    Ok(())
}

/// Reads and checks the v2 header after the magic has been consumed:
/// version and kind must match what the caller expects.
fn read_v2_header<R: Read>(r: &mut R, want_kind: u8) -> Result<(), PersistError> {
    let mut version = [0u8; 4];
    let mut kind = [0u8; 1];
    r.read_exact(&mut version)?;
    r.read_exact(&mut kind)?;
    let version = u32::from_le_bytes(version);
    if version != BINARY_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported snapshot version {version} (this build reads v{JSON_VERSION} JSON and \
             v{BINARY_VERSION} binary)"
        )));
    }
    if kind[0] != want_kind {
        let name = |k: u8| match k {
            KIND_BILEVEL => "an in-memory index".to_string(),
            KIND_OOC => "an out-of-core index".to_string(),
            other => format!("unknown kind {other}"),
        };
        return Err(PersistError::Format(format!(
            "snapshot holds {}, expected {}",
            name(kind[0]),
            name(want_kind)
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// v1 JSON structures (legacy).
// ---------------------------------------------------------------------------

/// One serialized `(group, table)` pair: the hash family plus the bucket
/// contents as parallel `(code, ids)` lists.
#[derive(Serialize, Deserialize)]
struct TableSnapshot {
    family: HashFamily,
    codes: Vec<Vec<i32>>,
    buckets: Vec<Vec<u32>>,
}

/// The complete v1 on-disk snapshot.
#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    fingerprint: DataFingerprint,
    config: BiLevelConfig,
    level1: Level1,
    group_widths: Vec<f32>,
    /// `tables[group][l]`.
    tables: Vec<Vec<TableSnapshot>>,
}

impl<'a> BiLevelIndex<'a> {
    /// Serializes the index structure to a writer in the preferred binary
    /// format (v2). [`BiLevelIndex::save_json_to`] writes the legacy JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn save_to<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        let mut sections = vec![
            sec_fingerprint(&DataFingerprint::of(&self.data)),
            sec_config(&self.config),
            sec_level1(&self.level1),
            sec_widths(&self.group_widths),
            sec_tables(&self.tables),
        ];
        // Trailing, only when the index has been mutated: never-mutated
        // snapshots stay byte-identical to the pre-mutability format, and
        // old snapshots (which end before this section) load as all-live.
        if !self.tombstones.is_empty() || self.epoch != 0 {
            sections.push(sec_mutability(&self.tombstones, self.epoch));
        }
        write_v2(writer, KIND_BILEVEL, &sections)
    }

    /// Saves the index to a file in the binary format (see
    /// [`BiLevelIndex::save_to`]), crash-safely: the snapshot is written
    /// to a temp file, synced, and atomically renamed into place, so a
    /// crash mid-save never clobbers an existing snapshot with a torn
    /// write (failures before the rename are [`PersistError::PartialWrite`]).
    pub fn save(&self, path: &std::path::Path) -> Result<(), PersistError> {
        crate::binio::atomic_write(path, |w| self.save_to(w))
    }

    /// Serializes the index in the legacy v1 JSON format, for consumers that
    /// want a text snapshot. [`BiLevelIndex::load_from`] reads both formats.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure or
    /// [`PersistError::Format`] when JSON encoding fails.
    pub fn save_json_to<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        // The v1 schema predates pluggable families: its `family` slot is a
        // bare p-stable dump with nowhere to put a kind tag or extras.
        if self.config.family != FamilyKind::PStable {
            return Err(PersistError::Format(format!(
                "legacy JSON snapshots support only the p-stable family \
                 (index family is `{}`); use the binary format",
                self.config.family.name()
            )));
        }
        let tables = self
            .tables
            .iter()
            .map(|per_group| {
                per_group
                    .iter()
                    .map(|gt| {
                        // Emit buckets in the deterministic sorted-code order
                        // so snapshots of the same index are byte-identical.
                        let codes: Vec<Vec<i32>> =
                            gt.bucket_codes.iter().map(|c| c.to_vec()).collect();
                        let buckets: Vec<Vec<u32>> =
                            codes.iter().map(|c| gt.table.bucket(c).to_vec()).collect();
                        let family = gt
                            .family
                            .as_pstable()
                            .expect("json save is gated to the p-stable family")
                            .clone();
                        TableSnapshot { family, codes, buckets }
                    })
                    .collect()
            })
            .collect();
        let snapshot = Snapshot {
            version: JSON_VERSION,
            fingerprint: DataFingerprint::of(&self.data),
            config: self.config.clone(),
            level1: self.level1.clone(),
            group_widths: self.group_widths.clone(),
            tables,
        };
        serde_json::to_writer(writer, &snapshot).map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Saves the index to a file in the legacy JSON format, with the same
    /// crash-safe temp-file / atomic-rename protocol as
    /// [`BiLevelIndex::save`].
    pub fn save_json(&self, path: &std::path::Path) -> Result<(), PersistError> {
        crate::binio::atomic_write(path, |w| self.save_json_to(w))
    }

    /// Reconstructs an index from a snapshot and the dataset it was built
    /// over. The format is auto-detected: streams opening with the binary
    /// magic decode as v2, everything else parses as v1 JSON.
    ///
    /// # Errors
    ///
    /// Fails with [`PersistError::DataMismatch`] when `data` does not match
    /// the snapshot's fingerprint, or [`PersistError::Format`] on version,
    /// checksum, or structural-validation problems.
    pub fn load_from<R: Read>(data: &'a Dataset, mut reader: R) -> Result<Self, PersistError> {
        let mut first = [0u8; 4];
        reader.read_exact(&mut first).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                PersistError::Format("snapshot shorter than 4 bytes".into())
            } else {
                PersistError::Io(e)
            }
        })?;
        if first == MAGIC {
            Self::load_v2(data, reader)
        } else {
            Self::load_v1_json(data, (&first[..]).chain(reader))
        }
    }

    fn load_v2<R: Read>(data: &'a Dataset, mut reader: R) -> Result<Self, PersistError> {
        read_v2_header(&mut reader, KIND_BILEVEL)?;
        let fp = dec_fingerprint(&read_section(&mut reader, "fingerprint")?)?;
        fp.check(&DataFingerprint::of(data))?;
        let config = dec_config(&read_section(&mut reader, "config")?)?;
        let level1 = dec_level1(&read_section(&mut reader, "level1")?)?;
        let group_widths = dec_widths(&read_section(&mut reader, "group widths")?)?;
        let tables = dec_tables(&read_section(&mut reader, "tables")?, &config, data.len())?;
        check_group_shape(level1.num_groups(), tables.len(), &group_widths, &config)?;
        // Snapshots written before mutation support (or of a never-mutated
        // index) end here and load as all-live at epoch 0.
        let (tombstones, epoch) = match read_optional_section(&mut reader, "mutability")? {
            Some(bytes) => dec_mutability(&bytes, data.len())?,
            None => (Tombstones::new(), 0),
        };
        // Rank-time caches are deterministic in `data`, so rebuilt instead
        // of serialized.
        let rank_norms = matches!(config.metric, MetricKind::Cosine)
            .then(|| vecstore::CosineWithNorms::new(data));
        Ok(BiLevelIndex {
            data: std::borrow::Cow::Borrowed(data),
            config,
            level1,
            tables,
            group_widths,
            quant: vecstore::QuantizedCorpus::from_dataset(data),
            tombstones,
            epoch,
            rank_norms,
        })
    }

    fn load_v1_json<R: Read>(data: &'a Dataset, reader: R) -> Result<Self, PersistError> {
        let snapshot: Snapshot =
            serde_json::from_reader(reader).map_err(|e| PersistError::Format(e.to_string()))?;
        if snapshot.version != JSON_VERSION {
            return Err(PersistError::Format(format!(
                "unsupported snapshot version {} (expected {JSON_VERSION})",
                snapshot.version
            )));
        }
        snapshot.fingerprint.check(&DataFingerprint::of(data))?;
        let arity = code_arity(&snapshot.config);
        let build_hierarchy = matches!(snapshot.config.probe, Probe::Hierarchical { .. });
        let tables = snapshot
            .tables
            .into_iter()
            .map(|per_group| {
                per_group
                    .into_iter()
                    .map(|ts| {
                        if ts.codes.len() != ts.buckets.len() {
                            return Err(PersistError::Format(
                                "codes/buckets length mismatch".into(),
                            ));
                        }
                        check_bucket_codes(&ts.codes, arity)?;
                        let mut table = LshTable::new();
                        for (code, ids) in ts.codes.iter().zip(&ts.buckets) {
                            for &id in ids {
                                if id as usize >= data.len() {
                                    return Err(PersistError::Format(format!(
                                        "bucket id {id} out of range"
                                    )));
                                }
                                table.insert(code, id);
                            }
                        }
                        let bucket_codes: Vec<Box<[i32]>> =
                            ts.codes.into_iter().map(|c| c.into_boxed_slice()).collect();
                        let hierarchy = if build_hierarchy && !bucket_codes.is_empty() {
                            Some(build_table_hierarchy(&bucket_codes, snapshot.config.quantizer))
                        } else {
                            None
                        };
                        Ok(GroupTable {
                            family: Level2::PStable(ts.family),
                            table,
                            bucket_codes,
                            hierarchy,
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        check_group_shape(
            snapshot.level1.num_groups(),
            tables.len(),
            &snapshot.group_widths,
            &snapshot.config,
        )?;
        let rank_norms = matches!(snapshot.config.metric, MetricKind::Cosine)
            .then(|| vecstore::CosineWithNorms::new(data));
        Ok(BiLevelIndex {
            data: std::borrow::Cow::Borrowed(data),
            config: snapshot.config,
            level1: snapshot.level1,
            tables,
            group_widths: snapshot.group_widths,
            quant: vecstore::QuantizedCorpus::from_dataset(data),
            // The legacy JSON format predates mutability: always all-live.
            tombstones: Tombstones::new(),
            epoch: 0,
            rank_norms,
        })
    }

    /// Loads an index from a file (see [`BiLevelIndex::load_from`]).
    pub fn load(data: &'a Dataset, path: &std::path::Path) -> Result<Self, PersistError> {
        let file = std::fs::File::open(path)?;
        Self::load_from(data, std::io::BufReader::new(file))
    }
}

impl<'a> OocFlatIndex<'a> {
    /// Serializes the out-of-core index structure (binary v2 only). The
    /// dataset file itself is *not* copied — loading takes the same
    /// [`OocDataset`] again, verified by a sampled fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure or when sampling the
    /// source file for the fingerprint fails.
    pub fn save_to<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        let mut sections = vec![
            sec_fingerprint(&DataFingerprint::of_ooc(self.source)?),
            sec_config(&self.config),
            sec_level1(&self.level1),
            sec_widths(&self.group_widths),
            sec_families(&self.families),
            sec_linear(&self.linear),
            sec_intervals(&self.intervals),
        ];
        // Out-of-core indexes have no txn epoch; the shared section encodes
        // zero. Appended only when deletes exist (see the in-memory path).
        if !self.tombstones.is_empty() {
            sections.push(sec_mutability(&self.tombstones, 0));
        }
        write_v2(writer, KIND_OOC, &sections)
    }

    /// Saves the index structure to a file (see [`OocFlatIndex::save_to`])
    /// with the crash-safe temp-file / atomic-rename protocol of
    /// [`BiLevelIndex::save`].
    pub fn save(&self, path: &std::path::Path) -> Result<(), PersistError> {
        crate::binio::atomic_write(path, |w| self.save_to(w))
    }

    /// Reconstructs an out-of-core index from a snapshot and the dataset
    /// file it was built over.
    ///
    /// # Errors
    ///
    /// Fails with [`PersistError::DataMismatch`] when `source` does not
    /// match the snapshot's sampled fingerprint, or [`PersistError::Format`]
    /// on version, checksum, or structural-validation problems.
    pub fn load_from<R: Read>(source: &'a OocDataset, mut reader: R) -> Result<Self, PersistError> {
        let mut first = [0u8; 4];
        reader.read_exact(&mut first).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                PersistError::Format("snapshot shorter than 4 bytes".into())
            } else {
                PersistError::Io(e)
            }
        })?;
        if first != MAGIC {
            return Err(PersistError::Format(
                "not a binary snapshot (out-of-core indexes have no JSON format)".into(),
            ));
        }
        read_v2_header(&mut reader, KIND_OOC)?;
        let fp = dec_fingerprint(&read_section(&mut reader, "fingerprint")?)?;
        fp.check(&DataFingerprint::of_ooc(source)?)?;
        let config = dec_config(&read_section(&mut reader, "config")?)?;
        let level1 = dec_level1(&read_section(&mut reader, "level1")?)?;
        let group_widths = dec_widths(&read_section(&mut reader, "group widths")?)?;
        let families = dec_families(&read_section(&mut reader, "families")?)?;
        let linear = dec_linear(&read_section(&mut reader, "linear")?)?;
        let intervals = dec_intervals(&read_section(&mut reader, "intervals")?)?;

        let num_groups = level1.num_groups();
        check_group_shape(num_groups, num_groups, &group_widths, &config)?;
        if families.len() != config.l * num_groups {
            return Err(PersistError::Format(format!(
                "snapshot has {} families, want l × groups = {}",
                families.len(),
                config.l * num_groups
            )));
        }
        for (i, family) in families.iter().enumerate() {
            if family.dim() != source.dim() || family.m() != config.m {
                return Err(PersistError::Format(format!("family {i} shape mismatch")));
            }
            let g = i % num_groups;
            if family.w() != group_widths[g] {
                return Err(PersistError::Format(format!(
                    "family {i} width {} disagrees with group width {}",
                    family.w(),
                    group_widths[g]
                )));
            }
        }
        if linear.iter().any(|&id| id as usize >= source.len()) {
            return Err(PersistError::Format("linear array id out of range".into()));
        }
        if intervals.covered() != linear.len() as u64 {
            return Err(PersistError::Format(format!(
                "intervals cover {} entries, linear array has {}",
                intervals.covered(),
                linear.len()
            )));
        }
        let (tombstones, _) = match read_optional_section(&mut reader, "mutability")? {
            Some(bytes) => dec_mutability(&bytes, source.len())?,
            None => (Tombstones::new(), 0),
        };
        Ok(OocFlatIndex {
            source,
            config,
            level1,
            families,
            group_widths,
            linear,
            intervals,
            retry: vecstore::fault::RetryPolicy::default(),
            retry_stats: vecstore::fault::RetryStats::default(),
            tombstones,
        })
    }

    /// Loads an out-of-core index from a file (see
    /// [`OocFlatIndex::load_from`]).
    pub fn load(source: &'a OocDataset, path: &std::path::Path) -> Result<Self, PersistError> {
        let file = std::fs::File::open(path)?;
        Self::load_from(source, std::io::BufReader::new(file))
    }
}

// ---------------------------------------------------------------------------
// Streaming dataset sections — used by replica JOIN to ship the corpus
// over a socket with the same per-section checksum protection snapshots
// get, without buffering the whole dataset in one allocation.
// ---------------------------------------------------------------------------

/// Rows per chunk section written by [`write_dataset_sections`].
pub const DATASET_CHUNK_ROWS: usize = 16 * 1024;

/// Streams `data` as checksummed v2-style sections over any writer: one
/// header section (`dim`, `rows`, chunk size), then one section per
/// [`DATASET_CHUNK_ROWS`]-row chunk. Each chunk carries its own FNV-1a
/// checksum, so a receiver detects corruption as the bytes arrive rather
/// than after materializing the whole corpus. Bit patterns round-trip
/// exactly (NaNs and signed zeros included).
///
/// # Errors
///
/// [`PersistError::Io`] on write failure.
pub fn write_dataset_sections<W: Write>(w: &mut W, data: &Dataset) -> Result<(), PersistError> {
    let mut header = ByteWriter::new();
    header.put_len(data.dim());
    header.put_len(data.len());
    header.put_len(DATASET_CHUNK_ROWS);
    write_section(w, &header.into_bytes())?;
    let mut start = 0usize;
    while start < data.len() {
        let rows = DATASET_CHUNK_ROWS.min(data.len() - start);
        let mut chunk = ByteWriter::new();
        for r in start..start + rows {
            chunk.put_f32s(data.row(r));
        }
        write_section(w, &chunk.into_bytes())?;
        start += rows;
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset_sections`], verifying every
/// chunk's checksum as it streams in. The inverse round-trips exactly:
/// `read_dataset_sections(write_dataset_sections(d)) == d` bit for bit.
///
/// # Errors
///
/// [`PersistError::Format`] on truncation, checksum mismatch, or a
/// header/chunk shape disagreement; [`PersistError::Io`] on read failure.
pub fn read_dataset_sections<R: Read>(r: &mut R) -> Result<Dataset, PersistError> {
    let header = read_section(r, "dataset header")?;
    let mut hr = ByteReader::new(&header, "dataset header");
    let dim = hr.len()?;
    let rows = hr.len()?;
    let chunk_rows = hr.len()?;
    hr.finish()?;
    if dim == 0 || chunk_rows == 0 {
        return Err(PersistError::Format("dataset header has zero dim or chunk size".into()));
    }
    let mut data = Dataset::with_capacity(dim, rows);
    let mut remaining = rows;
    while remaining > 0 {
        let want = chunk_rows.min(remaining);
        let chunk = read_section(r, "dataset chunk")?;
        let mut cr = ByteReader::new(&chunk, "dataset chunk");
        let values = cr.f32s(
            want.checked_mul(dim)
                .ok_or_else(|| PersistError::Format("dataset chunk size overflows".into()))?,
        )?;
        cr.finish()?;
        for row in values.chunks_exact(dim) {
            data.push(row);
        }
        remaining -= want;
    }
    Ok(data)
}

impl BiLevelIndex<'static> {
    /// Reconstructs an index that *owns* its dataset from a snapshot
    /// stream — the borrowless twin of [`BiLevelIndex::load_from`], for
    /// consumers (a joining replica, a long-lived service) that cannot
    /// keep an external dataset alive for the index's lifetime.
    ///
    /// # Errors
    ///
    /// Same contract as [`BiLevelIndex::load_from`]: the snapshot's
    /// fingerprint must match `data`.
    pub fn load_from_owned<R: Read>(
        data: Dataset,
        reader: R,
    ) -> Result<BiLevelIndex<'static>, PersistError> {
        let loaded = BiLevelIndex::load_from(&data, reader)?;
        // Destructure to drop the borrow of the local `data`, then rebuild
        // the same index around the owned dataset.
        let BiLevelIndex {
            config,
            level1,
            tables,
            group_widths,
            quant,
            tombstones,
            epoch,
            rank_norms,
            ..
        } = loaded;
        Ok(BiLevelIndex {
            data: std::borrow::Cow::Owned(data),
            config,
            level1,
            tables,
            group_widths,
            quant,
            tombstones,
            epoch,
            rank_norms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Probe, Quantizer};
    use crate::index::Engine;
    use crate::options::QueryOptions;
    use vecstore::io::write_fvecs;
    use vecstore::synth::{self, ClusteredSpec};

    /// Whether the JSON backend actually works here. Offline builds may
    /// link a stub `serde_json` that errors at runtime; legacy-format tests
    /// skip rather than fail there, since the binary format is the product.
    fn json_available() -> bool {
        serde_json::to_vec(&1u32).is_ok()
    }

    /// `unwrap_err` without requiring `Debug` on the loaded index.
    fn err_of<T>(r: Result<T, PersistError>) -> PersistError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected the load to fail"),
        }
    }

    fn corpus() -> (Dataset, Dataset) {
        synth::clustered(&ClusteredSpec::small(400), 55).split_at(350)
    }

    fn roundtrip(cfg: &BiLevelConfig) {
        let (data, queries) = corpus();
        let index = BiLevelIndex::build(&data, cfg);
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        let loaded = BiLevelIndex::load_from(&data, buf.as_slice()).unwrap();
        let a = index.query_batch_opts(&queries, &QueryOptions::new(7));
        let b = loaded.query_batch_opts(&queries, &QueryOptions::new(7));
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn roundtrip_zm_home() {
        roundtrip(&BiLevelConfig::paper_default(5.0));
    }

    #[test]
    fn roundtrip_e8_multiprobe() {
        roundtrip(
            &BiLevelConfig::paper_default(5.0).quantizer(Quantizer::E8).probe(Probe::Multi(16)),
        );
    }

    #[test]
    fn roundtrip_hierarchical_rebuilds_hierarchy() {
        roundtrip(
            &BiLevelConfig::paper_default(3.0).probe(Probe::Hierarchical { min_candidates: 8 }),
        );
    }

    #[test]
    fn roundtrip_sparse_projection() {
        roundtrip(&BiLevelConfig::paper_default(5.0).projection(Projection::Sparse { nnz: 8 }));
    }

    #[test]
    fn dense_config_encoding_has_no_projection_tail() {
        let dense = BiLevelConfig::paper_default(5.0);
        let sparse = dense.clone().projection(Projection::Sparse { nnz: 8 });
        let (db, sb) = (sec_config(&dense), sec_config(&sparse));
        assert!(sb.len() > db.len(), "sparse config must append a tail");
        // A pre-projection snapshot is exactly the dense encoding: it must
        // decode (as Dense) even though it ends before the optional field.
        assert_eq!(dec_config(&db).unwrap().projection, Projection::Dense);
        assert_eq!(dec_config(&sb).unwrap().projection, Projection::Sparse { nnz: 8 });
    }

    #[test]
    fn roundtrip_kmeans_and_kd_partitions() {
        let mut cfg = BiLevelConfig::paper_default(5.0);
        cfg.partition = Partition::KMeans { groups: 8 };
        roundtrip(&cfg);
        cfg.partition = Partition::Kd { groups: 8 };
        roundtrip(&cfg);
    }

    #[test]
    fn load_rejects_different_dataset() {
        let (data, _) = corpus();
        let other = synth::clustered(&ClusteredSpec::small(350), 56);
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        let err = match BiLevelIndex::load_from(&other, buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched dataset accepted"),
        };
        assert!(matches!(err, PersistError::DataMismatch(_)), "got {err}");
    }

    #[test]
    fn load_rejects_garbage() {
        let (data, _) = corpus();
        let err = match BiLevelIndex::load_from(&data, &b"not a snapshot"[..]) {
            Err(e) => e,
            Ok(_) => panic!("garbage snapshot accepted"),
        };
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn save_is_deterministic() {
        let (data, _) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(5.0));
        let mut a = Vec::new();
        let mut b = Vec::new();
        index.save_to(&mut a).unwrap();
        index.save_to(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let (data, queries) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let dir = std::env::temp_dir().join("bilevel_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        index.save(&path).unwrap();
        let loaded = BiLevelIndex::load(&data, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            index.query_batch_opts(&queries, &QueryOptions::new(3)).neighbors,
            loaded.query_batch_opts(&queries, &QueryOptions::new(3)).neighbors
        );
    }

    #[test]
    fn failed_save_leaves_existing_snapshot_untouched() {
        let (data, _) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let dir = std::env::temp_dir().join("bilevel_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.snap");
        index.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // A save whose write fails mid-stream must not touch the existing
        // snapshot — and must not leave its temp file behind.
        let err = crate::binio::atomic_write(&path, |w| {
            use std::io::Write as _;
            w.write_all(b"partial garbage").unwrap();
            Err(PersistError::Io(std::io::Error::other("disk full")))
        })
        .unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "closure error passes through: {err}");
        assert_eq!(std::fs::read(&path).unwrap(), good, "existing snapshot was clobbered");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp file leaked: {leftovers:?}");

        // A successful re-save replaces the file completely.
        index.save(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), good);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_version_rejected() {
        let (data, _) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        buf[4..8].copy_from_slice(&9u32.to_le_bytes());
        let err = err_of(BiLevelIndex::load_from(&data, buf.as_slice()));
        assert!(
            matches!(&err, PersistError::Format(m) if m.contains("unsupported snapshot version 9")),
            "got {err}"
        );
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let (data, _) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        for cut in [2, 7, buf.len() / 2, buf.len() - 5] {
            let err = err_of(BiLevelIndex::load_from(&data, &buf[..cut]));
            assert!(
                matches!(err, PersistError::Format(_) | PersistError::Io(_)),
                "cut at {cut} must fail cleanly"
            );
        }
    }

    #[test]
    fn corrupted_section_rejected() {
        let (data, _) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        // Flip a byte deep inside the stream: a section checksum must trip.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let err = err_of(BiLevelIndex::load_from(&data, buf.as_slice()));
        assert!(
            matches!(&err, PersistError::Format(_) | PersistError::DataMismatch(_)),
            "got {err}"
        );
    }

    /// Re-frames a v2 snapshot with tampered tables, exercising the
    /// structural validation the wire format itself cannot express.
    fn snapshot_with_tampered_tables(
        data: &Dataset,
        mutate: impl Fn(&mut Vec<Vec<GroupTable>>),
    ) -> (Vec<u8>, BiLevelConfig) {
        let cfg = BiLevelConfig::standard(5.0);
        let index = BiLevelIndex::build(data, &cfg);
        let mut tables: Vec<Vec<GroupTable>> = index
            .tables
            .iter()
            .map(|per_group| {
                per_group
                    .iter()
                    .map(|gt| {
                        let mut table = LshTable::new();
                        for code in &gt.bucket_codes {
                            for &id in gt.table.bucket(code) {
                                table.insert(code, id);
                            }
                        }
                        GroupTable {
                            family: gt.family.clone(),
                            table,
                            bucket_codes: gt.bucket_codes.clone(),
                            hierarchy: None,
                        }
                    })
                    .collect()
            })
            .collect();
        mutate(&mut tables);
        let mut buf = Vec::new();
        write_v2(
            &mut buf,
            KIND_BILEVEL,
            &[
                sec_fingerprint(&DataFingerprint::of(data)),
                sec_config(&index.config),
                sec_level1(&index.level1),
                sec_widths(&index.group_widths),
                sec_tables(&tables),
            ],
        )
        .unwrap();
        (buf, cfg)
    }

    #[test]
    fn duplicate_bucket_codes_rejected() {
        let (data, _) = corpus();
        let (buf, _) = snapshot_with_tampered_tables(&data, |tables| {
            let gt = &mut tables[0][0];
            let dup = gt.bucket_codes[0].clone();
            gt.bucket_codes.push(dup);
        });
        let err = err_of(BiLevelIndex::load_from(&data, buf.as_slice()));
        assert!(
            matches!(&err, PersistError::Format(m) if m.contains("duplicate bucket code")),
            "got {err}"
        );
    }

    #[test]
    fn wrong_arity_bucket_codes_rejected() {
        let (data, _) = corpus();
        let (buf, _) = snapshot_with_tampered_tables(&data, |tables| {
            let gt = &mut tables[0][0];
            let short: Vec<i32> = gt.bucket_codes[0][..gt.bucket_codes[0].len() - 1].to_vec();
            gt.bucket_codes[0] = short.into_boxed_slice();
        });
        let err = err_of(BiLevelIndex::load_from(&data, buf.as_slice()));
        assert!(matches!(&err, PersistError::Format(m) if m.contains("arity")), "got {err}");
    }

    #[test]
    fn untampered_reframed_snapshot_loads() {
        let (data, queries) = corpus();
        let (buf, cfg) = snapshot_with_tampered_tables(&data, |_| {});
        let loaded = BiLevelIndex::load_from(&data, buf.as_slice()).unwrap();
        let fresh = BiLevelIndex::build(&data, &cfg);
        assert_eq!(
            fresh.query_batch_opts(&queries, &QueryOptions::new(5)).neighbors,
            loaded.query_batch_opts(&queries, &QueryOptions::new(5)).neighbors
        );
    }

    #[test]
    fn json_v1_still_loads() {
        if !json_available() {
            return;
        }
        let (data, queries) = corpus();
        for cfg in [
            BiLevelConfig::paper_default(5.0),
            BiLevelConfig::standard(5.0).quantizer(Quantizer::E8).probe(Probe::Multi(8)),
        ] {
            let index = BiLevelIndex::build(&data, &cfg);
            let mut json = Vec::new();
            index.save_json_to(&mut json).unwrap();
            assert_ne!(&json[..4], &MAGIC, "JSON must not collide with the magic");
            let loaded = BiLevelIndex::load_from(&data, json.as_slice()).unwrap();
            assert_eq!(
                index.query_batch_opts(&queries, &QueryOptions::new(7)).neighbors,
                loaded.query_batch_opts(&queries, &QueryOptions::new(7)).neighbors
            );
        }
    }

    #[test]
    fn binary_and_json_snapshots_load_identically() {
        if !json_available() {
            return;
        }
        let (data, queries) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(4.0));
        let mut bin = Vec::new();
        let mut json = Vec::new();
        index.save_to(&mut bin).unwrap();
        index.save_json_to(&mut json).unwrap();
        let from_bin = BiLevelIndex::load_from(&data, bin.as_slice()).unwrap();
        let from_json = BiLevelIndex::load_from(&data, json.as_slice()).unwrap();
        let a = from_bin.query_batch_opts(&queries, &QueryOptions::new(9));
        let b = from_json.query_batch_opts(&queries, &QueryOptions::new(9));
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.candidates, b.candidates);
    }

    // ---- Out-of-core snapshots. ----

    fn ooc_file(name: &str, n: usize, seed: u64) -> (std::path::PathBuf, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(n + 50), seed);
        let (data, queries) = all.split_at(n);
        let dir = std::env::temp_dir().join("bilevel_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_fvecs(&path, &data).unwrap();
        (path, queries)
    }

    #[test]
    fn ooc_roundtrip_matches_built_index() {
        let (path, queries) = ooc_file("ooc_rt.fvecs", 500, 77);
        let source = OocDataset::open(&path).unwrap();
        for quantizer in [Quantizer::Zm, Quantizer::E8] {
            let cfg = BiLevelConfig::paper_default(5.0).quantizer(quantizer);
            let built = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
            let mut buf = Vec::new();
            built.save_to(&mut buf).unwrap();
            let loaded = OocFlatIndex::load_from(&source, buf.as_slice()).unwrap();
            for q in queries.iter() {
                assert_eq!(built.candidates(q), loaded.candidates(q), "{quantizer:?}");
            }
            let a = built
                .query_batch_opts(
                    &queries,
                    &QueryOptions::new(6).engine(Engine::PerQuery { threads: 4 }),
                )
                .unwrap();
            let b = loaded
                .query_batch_opts(
                    &queries,
                    &QueryOptions::new(6).engine(Engine::PerQuery { threads: 4 }),
                )
                .unwrap();
            for (x, y) in a.iter().zip(&b) {
                let x: Vec<(usize, f32)> = x.iter().map(|n| (n.id, n.dist)).collect();
                let y: Vec<(usize, f32)> = y.iter().map(|n| (n.id, n.dist)).collect();
                assert_eq!(x, y, "{quantizer:?}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ooc_save_is_deterministic() {
        let (path, _) = ooc_file("ooc_det.fvecs", 300, 78);
        let source = OocDataset::open(&path).unwrap();
        let index =
            OocFlatIndex::build(&source, &BiLevelConfig::standard(5.0), usize::MAX).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        index.save_to(&mut a).unwrap();
        index.save_to(&mut b).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ooc_load_rejects_different_file() {
        let (path_a, _) = ooc_file("ooc_a.fvecs", 300, 79);
        let (path_b, _) = ooc_file("ooc_b.fvecs", 300, 80);
        let source_a = OocDataset::open(&path_a).unwrap();
        let source_b = OocDataset::open(&path_b).unwrap();
        let index =
            OocFlatIndex::build(&source_a, &BiLevelConfig::standard(5.0), usize::MAX).unwrap();
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        let err = err_of(OocFlatIndex::load_from(&source_b, buf.as_slice()));
        assert!(matches!(err, PersistError::DataMismatch(_)), "got {err}");
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn ooc_rejects_bilevel_snapshot_and_vice_versa() {
        let (data, _) = corpus();
        let (path, _) = ooc_file("ooc_kind.fvecs", 200, 81);
        let source = OocDataset::open(&path).unwrap();
        let mem_index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let ooc_index =
            OocFlatIndex::build(&source, &BiLevelConfig::standard(5.0), usize::MAX).unwrap();
        let mut mem_buf = Vec::new();
        let mut ooc_buf = Vec::new();
        mem_index.save_to(&mut mem_buf).unwrap();
        ooc_index.save_to(&mut ooc_buf).unwrap();
        let err = err_of(OocFlatIndex::load_from(&source, mem_buf.as_slice()));
        assert!(matches!(&err, PersistError::Format(m) if m.contains("in-memory")), "got {err}");
        let err = err_of(BiLevelIndex::load_from(&data, ooc_buf.as_slice()));
        assert!(matches!(&err, PersistError::Format(m) if m.contains("out-of-core")), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ooc_truncated_and_corrupted_snapshots_rejected() {
        let (path, _) = ooc_file("ooc_trunc.fvecs", 300, 82);
        let source = OocDataset::open(&path).unwrap();
        let index =
            OocFlatIndex::build(&source, &BiLevelConfig::standard(5.0), usize::MAX).unwrap();
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        for cut in [3, 8, buf.len() / 2, buf.len() - 4] {
            let err = err_of(OocFlatIndex::load_from(&source, &buf[..cut]));
            assert!(
                matches!(err, PersistError::Format(_) | PersistError::Io(_)),
                "cut at {cut} must fail cleanly"
            );
        }
        let mut corrupt = buf.clone();
        let mid = corrupt.len() * 3 / 4;
        corrupt[mid] ^= 0xFF;
        let err = err_of(OocFlatIndex::load_from(&source, corrupt.as_slice()));
        assert!(
            matches!(&err, PersistError::Format(_) | PersistError::DataMismatch(_)),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_sections_roundtrip_bit_exact() {
        let mut data = synth::clustered(&ClusteredSpec::small(300), 91);
        // Awkward bit patterns must survive: signed zero, subnormal, NaN.
        let dim = data.dim();
        let mut weird = vec![0.0f32; dim];
        weird[0] = -0.0;
        weird[1 % dim] = f32::MIN_POSITIVE / 2.0;
        weird[2 % dim] = f32::NAN;
        data.push(&weird);
        let mut buf = Vec::new();
        write_dataset_sections(&mut buf, &data).unwrap();
        let back = read_dataset_sections(&mut buf.as_slice()).unwrap();
        assert_eq!(back.dim(), data.dim());
        assert_eq!(back.len(), data.len());
        for r in 0..data.len() {
            let (a, b) = (data.row(r), back.row(r));
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {r} reparsed inexactly");
            }
        }
    }

    #[test]
    fn dataset_sections_reject_truncation_and_corruption() {
        let data = synth::clustered(&ClusteredSpec::small(200), 7);
        let mut buf = Vec::new();
        write_dataset_sections(&mut buf, &data).unwrap();
        for cut in [0, 5, buf.len() / 2, buf.len() - 3] {
            let err = err_of(read_dataset_sections(&mut &buf[..cut]));
            assert!(
                matches!(err, PersistError::Format(_) | PersistError::Io(_)),
                "cut at {cut} must fail cleanly"
            );
        }
        let mut corrupt = buf.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let err = err_of(read_dataset_sections(&mut corrupt.as_slice()));
        assert!(matches!(&err, PersistError::Format(_)), "got {err}");
    }

    #[test]
    fn load_from_owned_matches_borrowed_load() {
        let (data, queries) = corpus();
        let cfg = BiLevelConfig::paper_default(5.0).probe(Probe::Multi(8));
        let index = BiLevelIndex::build(&data, &cfg);
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        let borrowed = BiLevelIndex::load_from(&data, buf.as_slice()).unwrap();
        let owned = BiLevelIndex::load_from_owned(data.clone(), buf.as_slice()).unwrap();
        let a = borrowed.query_batch_opts(&queries, &QueryOptions::new(9));
        let b = owned.query_batch_opts(&queries, &QueryOptions::new(9));
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.candidates, b.candidates);
        // Fingerprint checks still guard the owned path.
        let wrong = synth::clustered(&ClusteredSpec::small(400), 56).split_at(350).0;
        let err = err_of(BiLevelIndex::load_from_owned(wrong, buf.as_slice()));
        assert!(matches!(err, PersistError::DataMismatch(_)), "got {err}");
    }
}
