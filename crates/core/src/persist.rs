//! Index persistence: save a built [`BiLevelIndex`] to disk and load it
//! back without re-hashing the dataset.
//!
//! The snapshot contains the *index structure only* — level-1 partitioner,
//! per-group widths, hash families, and bucket contents — not the vectors,
//! which the index borrows. Loading therefore takes the same dataset again
//! and verifies a fingerprint (length, dimension, and a content checksum) so
//! a snapshot can never be silently attached to different data.
//!
//! Bucket hierarchies are *not* stored: they are deterministic functions of
//! the bucket codes and are rebuilt on load when the configuration demands
//! them. The on-disk format is versioned JSON (`serde_json`); see DESIGN.md
//! for the dependency justification.

use crate::config::{BiLevelConfig, Probe};
use crate::index::{build_table_hierarchy, BiLevelIndex, GroupTable, Level1};
use lsh::{HashFamily, LshTable};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use vecstore::Dataset;

/// Current snapshot format version.
const FORMAT_VERSION: u32 = 1;

/// Errors arising while saving or loading a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or wrong-version snapshot.
    Format(String),
    /// The dataset supplied at load time does not match the snapshot's
    /// fingerprint.
    DataMismatch(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "snapshot format error: {m}"),
            PersistError::DataMismatch(m) => write!(f, "dataset mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Fingerprint binding a snapshot to the dataset it was built over.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct DataFingerprint {
    len: usize,
    dim: usize,
    /// FNV-1a over the raw little-endian bytes of the flat buffer.
    checksum: u64,
}

impl DataFingerprint {
    fn of(data: &Dataset) -> Self {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for v in data.as_flat() {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        Self { len: data.len(), dim: data.dim(), checksum: h }
    }
}

/// One serialized `(group, table)` pair: the hash family plus the bucket
/// contents as parallel `(code, ids)` lists.
#[derive(Serialize, Deserialize)]
struct TableSnapshot {
    family: HashFamily,
    codes: Vec<Vec<i32>>,
    buckets: Vec<Vec<u32>>,
}

/// The complete on-disk snapshot.
#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    fingerprint: DataFingerprint,
    config: BiLevelConfig,
    level1: Level1,
    group_widths: Vec<f32>,
    /// `tables[group][l]`.
    tables: Vec<Vec<TableSnapshot>>,
}

impl<'a> BiLevelIndex<'a> {
    /// Serializes the index structure to a writer.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn save_to<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        let tables = self
            .tables
            .iter()
            .map(|per_group| {
                per_group
                    .iter()
                    .map(|gt| {
                        // Emit buckets in the deterministic sorted-code order
                        // so snapshots of the same index are byte-identical.
                        let codes: Vec<Vec<i32>> =
                            gt.bucket_codes.iter().map(|c| c.to_vec()).collect();
                        let buckets: Vec<Vec<u32>> =
                            codes.iter().map(|c| gt.table.bucket(c).to_vec()).collect();
                        TableSnapshot { family: gt.family.clone(), codes, buckets }
                    })
                    .collect()
            })
            .collect();
        let snapshot = Snapshot {
            version: FORMAT_VERSION,
            fingerprint: DataFingerprint::of(&self.data),
            config: self.config.clone(),
            level1: clone_level1(&self.level1),
            group_widths: self.group_widths.clone(),
            tables,
        };
        serde_json::to_writer(writer, &snapshot).map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Saves the index to a file (see [`BiLevelIndex::save_to`]).
    pub fn save(&self, path: &std::path::Path) -> Result<(), PersistError> {
        let file = std::fs::File::create(path)?;
        self.save_to(std::io::BufWriter::new(file))
    }

    /// Reconstructs an index from a snapshot and the dataset it was built
    /// over.
    ///
    /// # Errors
    ///
    /// Fails with [`PersistError::DataMismatch`] when `data` does not match
    /// the snapshot's fingerprint, or [`PersistError::Format`] on version or
    /// decoding problems.
    pub fn load_from<R: Read>(data: &'a Dataset, reader: R) -> Result<Self, PersistError> {
        let snapshot: Snapshot =
            serde_json::from_reader(reader).map_err(|e| PersistError::Format(e.to_string()))?;
        if snapshot.version != FORMAT_VERSION {
            return Err(PersistError::Format(format!(
                "unsupported snapshot version {} (expected {FORMAT_VERSION})",
                snapshot.version
            )));
        }
        let fp = DataFingerprint::of(data);
        if fp != snapshot.fingerprint {
            return Err(PersistError::DataMismatch(format!(
                "snapshot was built over {} × dim {} (checksum {:#x}), \
                 got {} × dim {} (checksum {:#x})",
                snapshot.fingerprint.len,
                snapshot.fingerprint.dim,
                snapshot.fingerprint.checksum,
                fp.len,
                fp.dim,
                fp.checksum,
            )));
        }
        let build_hierarchy = matches!(snapshot.config.probe, Probe::Hierarchical { .. });
        let tables = snapshot
            .tables
            .into_iter()
            .map(|per_group| {
                per_group
                    .into_iter()
                    .map(|ts| {
                        if ts.codes.len() != ts.buckets.len() {
                            return Err(PersistError::Format(
                                "codes/buckets length mismatch".into(),
                            ));
                        }
                        let mut table = LshTable::new();
                        for (code, ids) in ts.codes.iter().zip(&ts.buckets) {
                            for &id in ids {
                                if id as usize >= data.len() {
                                    return Err(PersistError::Format(format!(
                                        "bucket id {id} out of range"
                                    )));
                                }
                                table.insert(code, id);
                            }
                        }
                        let bucket_codes: Vec<Box<[i32]>> =
                            ts.codes.into_iter().map(|c| c.into_boxed_slice()).collect();
                        let hierarchy = if build_hierarchy && !bucket_codes.is_empty() {
                            Some(build_table_hierarchy(&bucket_codes, snapshot.config.quantizer))
                        } else {
                            None
                        };
                        Ok(GroupTable { family: ts.family, table, bucket_codes, hierarchy })
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BiLevelIndex {
            data: std::borrow::Cow::Borrowed(data),
            config: snapshot.config,
            level1: snapshot.level1,
            tables,
            group_widths: snapshot.group_widths,
        })
    }

    /// Loads an index from a file (see [`BiLevelIndex::load_from`]).
    pub fn load(data: &'a Dataset, path: &std::path::Path) -> Result<Self, PersistError> {
        let file = std::fs::File::open(path)?;
        Self::load_from(data, std::io::BufReader::new(file))
    }
}

/// `Level1` holds no shared state, but some variants don't implement
/// `Clone`; round-trip through serde to copy it for the snapshot.
fn clone_level1(level1: &Level1) -> Level1 {
    let json = serde_json::to_string(level1).expect("level1 serializes");
    serde_json::from_str(&json).expect("level1 deserializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Probe, Quantizer};
    use vecstore::synth::{self, ClusteredSpec};

    fn corpus() -> (Dataset, Dataset) {
        synth::clustered(&ClusteredSpec::small(400), 55).split_at(350)
    }

    fn roundtrip(cfg: &BiLevelConfig) {
        let (data, queries) = corpus();
        let index = BiLevelIndex::build(&data, cfg);
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        let loaded = BiLevelIndex::load_from(&data, buf.as_slice()).unwrap();
        let a = index.query_batch(&queries, 7);
        let b = loaded.query_batch(&queries, 7);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn roundtrip_zm_home() {
        roundtrip(&BiLevelConfig::paper_default(5.0));
    }

    #[test]
    fn roundtrip_e8_multiprobe() {
        roundtrip(
            &BiLevelConfig::paper_default(5.0).quantizer(Quantizer::E8).probe(Probe::Multi(16)),
        );
    }

    #[test]
    fn roundtrip_hierarchical_rebuilds_hierarchy() {
        roundtrip(
            &BiLevelConfig::paper_default(3.0).probe(Probe::Hierarchical { min_candidates: 8 }),
        );
    }

    #[test]
    fn load_rejects_different_dataset() {
        let (data, _) = corpus();
        let other = synth::clustered(&ClusteredSpec::small(350), 56);
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let mut buf = Vec::new();
        index.save_to(&mut buf).unwrap();
        let err = match BiLevelIndex::load_from(&other, buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched dataset accepted"),
        };
        assert!(matches!(err, PersistError::DataMismatch(_)), "got {err}");
    }

    #[test]
    fn load_rejects_garbage() {
        let (data, _) = corpus();
        let err = match BiLevelIndex::load_from(&data, &b"not a snapshot"[..]) {
            Err(e) => e,
            Ok(_) => panic!("garbage snapshot accepted"),
        };
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn save_is_deterministic() {
        let (data, _) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::paper_default(5.0));
        let mut a = Vec::new();
        let mut b = Vec::new();
        index.save_to(&mut a).unwrap();
        index.save_to(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let (data, queries) = corpus();
        let index = BiLevelIndex::build(&data, &BiLevelConfig::standard(5.0));
        let dir = std::env::temp_dir().join("bilevel_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        index.save(&path).unwrap();
        let loaded = BiLevelIndex::load(&data, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            index.query_batch(&queries, 3).neighbors,
            loaded.query_batch(&queries, 3).neighbors
        );
    }
}
