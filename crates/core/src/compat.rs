//! Deprecated query entry points, kept as thin shims over the unified
//! [`QueryOptions`] API.
//!
//! The four legacy variants each grew one positional parameter at a time
//! (`query_batch` → `query_batch_with` → `query_batch_at` →
//! `query_shard_batch_at`); they now delegate, one line each, to
//! [`BiLevelIndex::query_batch_opts`] /
//! [`ShardedIndex::query_batch_opts`] /
//! [`OocFlatIndex::query_batch_opts`] and stay bit-identical to their
//! pre-consolidation behavior (the equivalence test suite in
//! `crates/core/tests/equivalence.rs` proves it across probe modes and
//! quantizers).
//!
//! | old entry point | replacement |
//! |---|---|
//! | `index.query_batch(q, k)` | `index.query_batch_opts(q, &QueryOptions::new(k))` |
//! | `index.query_batch_with(q, k, engine)` | `index.query_batch_opts(q, &QueryOptions::new(k).engine(engine))` |
//! | `index.query_batch_at(q, k, engine, probe)` | `index.query_batch_opts(q, &QueryOptions::new(k).engine(engine).probe(probe))` |
//! | `sharded.query_shard_batch_at(s, q, k, engine, probe)` | `sharded.query_shard_batch_opts(s, q, &QueryOptions::new(k).engine(engine).probe(probe))` |
//! | `ooc.query_batch(q, k)` | `ooc.query_batch_per_row(q, k)` (per-row baseline) or `ooc.query_batch_opts(q, &QueryOptions::new(k))` (coalesced) |
//! | `ooc.query_batch_with(q, k, threads)` | `ooc.query_batch_opts(q, &QueryOptions::new(k).engine(Engine::PerQuery { threads }))` |
//! | `pstable_family(dim, m, w, seed, proj)` | `BiLevelConfig::family(FamilyKind::PStable)` — the index samples its own families |
//! | `sample_level2_pstable(dim, cfg, l, w)` | `BiLevelConfig::family(FamilyKind::…)` + build; see [`lsh::Level2`] for the family zoo |
//!
//! This module is the **only** place in the tree allowed to reference the
//! legacy signatures — CI greps for strays.

use crate::config::{BiLevelConfig, Probe};
use crate::index::{BatchResult, BiLevelIndex, Engine};
use crate::ooc::OocFlatIndex;
use crate::options::QueryOptions;
use crate::shard::ShardedIndex;
use lsh::{HashFamily, Projection};
use vecstore::ooc::RowSource;
use vecstore::{Dataset, Neighbor};

/// Old direct level-2 constructor: a concrete p-stable [`HashFamily`]
/// sampled from explicit dimensions. Pre-family-zoo code built tables from
/// these by hand; the metric-aware API samples families from
/// [`BiLevelConfig::family`](crate::FamilyKind) at build time instead.
#[deprecated(
    since = "0.1.0",
    note = "configure the family via BiLevelConfig::family(FamilyKind::…); the index samples \
            its own level-2 families"
)]
pub fn pstable_family(
    dim: usize,
    m: usize,
    w: f32,
    seed: u64,
    projection: Projection,
) -> HashFamily {
    HashFamily::sample_with(dim, m, w, seed, projection)
}

/// Old level-2 sampling rule for table `l` of a bi-level build: the
/// concrete p-stable family seeded with `config.seed ^ (0x1000 + l)` at
/// the group's tuned width. Bit-identical to what an L2 / p-stable build
/// samples internally (proven in `crates/core/tests/equivalence.rs`).
#[deprecated(
    since = "0.1.0",
    note = "builds sample their own families from BiLevelConfig::family; this shim only \
            reproduces the L2 / p-stable arm"
)]
pub fn sample_level2_pstable(
    dim: usize,
    config: &BiLevelConfig,
    l: u64,
    group_w: f32,
) -> HashFamily {
    HashFamily::sample_with(dim, config.m, 1.0, config.seed ^ (0x1000 + l), config.projection)
        .with_w(group_w)
}

impl BiLevelIndex<'_> {
    /// Batch k-nearest-neighbor query with the batch-median escalation
    /// rule on the serial engine.
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_opts(queries, &QueryOptions::new(k)) instead"
    )]
    pub fn query_batch(&self, queries: &Dataset, k: usize) -> BatchResult {
        self.query_batch_opts(queries, &QueryOptions::new(k))
    }

    /// Batch query with an explicit engine and the batch-median escalation
    /// rule.
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_opts(queries, &QueryOptions::new(k).engine(engine)) instead"
    )]
    pub fn query_batch_with(&self, queries: &Dataset, k: usize, engine: Engine) -> BatchResult {
        self.query_batch_opts(queries, &QueryOptions::new(k).engine(engine))
    }

    /// Batch-invariant query under an explicit probe (fixed-floor
    /// escalation).
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_opts(queries, &QueryOptions::new(k).engine(engine).probe(probe)) \
                instead"
    )]
    pub fn query_batch_at(
        &self,
        queries: &Dataset,
        k: usize,
        engine: Engine,
        probe: Probe,
    ) -> BatchResult {
        self.query_batch_opts(queries, &QueryOptions::new(k).engine(engine).probe(probe))
    }
}

impl ShardedIndex {
    /// Batch query with the batch-median escalation rule on the serial
    /// engine.
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_opts(queries, &QueryOptions::new(k)) instead"
    )]
    pub fn query_batch(&self, queries: &Dataset, k: usize) -> BatchResult {
        self.query_batch_opts(queries, &QueryOptions::new(k))
    }

    /// Batch query with an explicit engine and the batch-median escalation
    /// rule.
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_opts(queries, &QueryOptions::new(k).engine(engine)) instead"
    )]
    pub fn query_batch_with(&self, queries: &Dataset, k: usize, engine: Engine) -> BatchResult {
        self.query_batch_opts(queries, &QueryOptions::new(k).engine(engine))
    }

    /// Batch-invariant query under an explicit probe (fixed-floor
    /// escalation).
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_opts(queries, &QueryOptions::new(k).engine(engine).probe(probe)) \
                instead"
    )]
    pub fn query_batch_at(
        &self,
        queries: &Dataset,
        k: usize,
        engine: Engine,
        probe: Probe,
    ) -> BatchResult {
        self.query_batch_opts(queries, &QueryOptions::new(k).engine(engine).probe(probe))
    }

    /// Batch query against one shard only, with independent fixed-floor
    /// escalation.
    #[deprecated(
        since = "0.1.0",
        note = "use query_shard_batch_opts(shard, queries, \
                &QueryOptions::new(k).engine(engine).probe(probe)) instead"
    )]
    pub fn query_shard_batch_at(
        &self,
        shard: usize,
        queries: &Dataset,
        k: usize,
        engine: Engine,
        probe: Probe,
    ) -> BatchResult {
        self.query_shard_batch_opts(
            shard,
            queries,
            &QueryOptions::new(k).engine(engine).probe(probe),
        )
    }
}

impl<S: RowSource> OocFlatIndex<'_, S> {
    /// Batch query: the serial per-row read baseline.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from candidate row reads.
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_per_row(queries, k) (same per-row I/O pattern) or \
                query_batch_opts(queries, &QueryOptions::new(k)) (coalesced reads) instead"
    )]
    pub fn query_batch(&self, queries: &Dataset, k: usize) -> std::io::Result<Vec<Vec<Neighbor>>> {
        self.query_batch_per_row(queries, k)
    }

    /// Batch query on `threads` workers with coalesced candidate fetches.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from candidate row reads.
    #[deprecated(
        since = "0.1.0",
        note = "use query_batch_opts(queries, &QueryOptions::new(k).engine(Engine::PerQuery { \
                threads })) instead"
    )]
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        threads: usize,
    ) -> std::io::Result<Vec<Vec<Neighbor>>> {
        self.query_batch_opts(queries, &QueryOptions::new(k).engine(Engine::PerQuery { threads }))
    }
}
