//! Little-endian binary framing for snapshot format v2.
//!
//! A v2 stream is `magic · version · kind` followed by length-prefixed,
//! checksummed sections. The framing layer knows nothing about index
//! structure: [`write_section`] frames an opaque payload, [`read_section`]
//! verifies length and checksum before handing the payload to a decoder,
//! and [`ByteReader`] walks a payload with bounds-checked primitive reads.
//! Every multi-byte value is little-endian; every length is a `u64`.
//!
//! The section API works over any [`Read`]/[`Write`] — nothing here seeks —
//! so the same per-section checksum verification protects snapshots read
//! from disk *and* streamed over a socket (replica `JOIN` in `knn-net`
//! pulls a dataset plus snapshot through this exact path). The module is
//! public for those consumers; the index-structure encoders in
//! [`crate::persist`] stay private.

use crate::persist::PersistError;
use std::io::{Read, Write};

/// Stream magic, also the v1/v2 auto-detection key: JSON can never start
/// with these bytes.
pub(crate) const MAGIC: [u8; 4] = *b"BLSH";

/// Per-section size cap: a corrupted length header must not drive a huge
/// allocation before the checksum gets a chance to reject the payload.
const MAX_SECTION: u64 = 1 << 33;

/// FNV-1a over a byte slice — the section checksum.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Frames one payload: length, FNV-1a checksum, bytes.
pub fn write_section<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), PersistError> {
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&fnv64(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Crash-safe file replacement: runs `write` against a temp file in the
/// destination's directory, `sync_all`s it, atomically renames it over
/// `path`, then fsyncs the directory so the rename itself is durable.
///
/// A crash or error at any point before the rename leaves an existing
/// file at `path` untouched — the caller observes either the complete
/// old snapshot or the complete new one, never a torn write. Failures
/// before the rename surface as [`PersistError::PartialWrite`] (and the
/// temp file is removed); the `write` closure's own errors pass through
/// unchanged.
pub(crate) fn atomic_write(
    path: &std::path::Path,
    write: impl FnOnce(&mut std::io::BufWriter<&std::fs::File>) -> Result<(), PersistError>,
) -> Result<(), PersistError> {
    let partial =
        |source: std::io::Error| PersistError::PartialWrite { path: path.to_path_buf(), source };
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| partial(std::io::Error::other("destination has no file name")))?;
    // Pid-suffixed so concurrent savers from different processes cannot
    // collide on the temp name; same-process savers serialize on rename.
    let tmp = dir.join(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));

    let result = (|| {
        let file = std::fs::File::create(&tmp).map_err(partial)?;
        let mut w = std::io::BufWriter::new(&file);
        write(&mut w)?;
        w.flush().map_err(partial)?;
        drop(w);
        file.sync_all().map_err(partial)?;
        std::fs::rename(&tmp, path).map_err(partial)?;
        // Make the rename durable: fsync the directory entry. Failure here
        // is reported, but the destination already holds the new file.
        std::fs::File::open(&dir).and_then(|d| d.sync_all()).map_err(partial)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Reads one framed section, rejecting truncation, absurd lengths, and
/// checksum mismatches with [`PersistError::Format`] naming `what`.
pub fn read_section<R: Read>(r: &mut R, what: &str) -> Result<Vec<u8>, PersistError> {
    let mut header = [0u8; 16];
    read_exact_or_format(r, &mut header, what)?;
    let len = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
    let want = u64::from_le_bytes(header[8..].try_into().expect("8 bytes"));
    if len > MAX_SECTION {
        return Err(PersistError::Format(format!(
            "{what} section claims {len} bytes (corrupt length)"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_format(r, &mut payload, what)?;
    if fnv64(&payload) != want {
        return Err(PersistError::Format(format!("{what} section checksum mismatch")));
    }
    Ok(payload)
}

/// Reads one framed section that may legitimately be absent: clean EOF
/// *before any header byte* yields `Ok(None)` (an older snapshot that ends
/// here), while EOF mid-header or mid-payload is still a truncation error.
pub fn read_optional_section<R: Read>(
    r: &mut R,
    what: &str,
) -> Result<Option<Vec<u8>>, PersistError> {
    let mut header = [0u8; 16];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(PersistError::Format(format!("{what} section truncated"))),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(PersistError::Io(e)),
        }
    }
    let len = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
    let want = u64::from_le_bytes(header[8..].try_into().expect("8 bytes"));
    if len > MAX_SECTION {
        return Err(PersistError::Format(format!(
            "{what} section claims {len} bytes (corrupt length)"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_format(r, &mut payload, what)?;
    if fnv64(&payload) != want {
        return Err(PersistError::Format(format!("{what} section checksum mismatch")));
    }
    Ok(Some(payload))
}

fn read_exact_or_format<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    what: &str,
) -> Result<(), PersistError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Format(format!("{what} section truncated"))
        } else {
            PersistError::Io(e)
        }
    })
}

/// Append-only little-endian payload builder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty payload builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated payload, ready for [`write_section`].
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Lengths and indices travel as `u64` regardless of platform width.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a little-endian `f32` (bit pattern preserved exactly).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a run of little-endian `f32`s.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a run of little-endian `i32`s.
    pub fn put_i32s(&mut self, vs: &[i32]) {
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a run of little-endian `u32`s.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a run of little-endian `u64`s.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// Bounds-checked cursor over one section payload. Every read names the
/// payload (`what`) in its error so a corrupt snapshot points at itself.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> ByteReader<'a> {
    /// A cursor over `buf`; errors name the payload `what`.
    pub fn new(buf: &'a [u8], what: &'a str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            PersistError::Format(format!("unexpected end of {} payload", self.what))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Bytes not yet consumed. Decoders use this to accept optional
    /// trailing fields that newer writers append only when non-default —
    /// absent in old snapshots, present in new ones.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The payload must be fully consumed — trailing bytes mean the encoder
    /// and decoder disagree about the layout.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(PersistError::Format(format!(
                "{} payload has {} trailing bytes",
                self.what,
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A `u64` length that must fit the platform's `usize`.
    #[allow(clippy::len_without_is_empty)] // consumes input, not a container
    pub fn len(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            PersistError::Format(format!("{} length {v} exceeds platform usize", self.what))
        })
    }

    /// Reads a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads `n` little-endian `f32`s.
    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, PersistError> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| overflow(self.what))?)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    /// Reads `n` little-endian `i32`s.
    pub fn i32s(&mut self, n: usize) -> Result<Vec<i32>, PersistError> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| overflow(self.what))?)?;
        Ok(bytes.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    /// Reads `n` little-endian `u32`s.
    pub fn u32s(&mut self, n: usize) -> Result<Vec<u32>, PersistError> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| overflow(self.what))?)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    /// Reads `n` little-endian `u64`s.
    pub fn u64s(&mut self, n: usize) -> Result<Vec<u64>, PersistError> {
        let bytes = self.take(n.checked_mul(8).ok_or_else(|| overflow(self.what))?)?;
        Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect())
    }
}

fn overflow(what: &str) -> PersistError {
    PersistError::Format(format!("{what} length overflows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_len(42);
        w.put_f32s(&[0.1, 0.2]);
        w.put_i32s(&[-3, 4]);
        w.put_u32s(&[9, 10]);
        w.put_u64s(&[11, 12]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32s(1).unwrap(), vec![0xDEAD_BEEF]);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert_eq!(r.len().unwrap(), 42);
        assert_eq!(r.f32s(2).unwrap(), vec![0.1, 0.2]);
        assert_eq!(r.i32s(2).unwrap(), vec![-3, 4]);
        assert_eq!(r.u32s(2).unwrap(), vec![9, 10]);
        assert_eq!(r.u64s(2).unwrap(), vec![11, 12]);
        r.finish().unwrap();
    }

    #[test]
    fn over_read_and_trailing_bytes_are_errors() {
        let bytes = vec![1u8, 2, 3];
        let mut r = ByteReader::new(&bytes, "test");
        assert!(r.u64().is_err(), "reading past the end");
        let mut r = ByteReader::new(&bytes, "test");
        r.u8().unwrap();
        assert!(r.finish().is_err(), "trailing bytes rejected");
    }

    #[test]
    fn section_roundtrip_and_corruption() {
        let payload = b"hello sections".to_vec();
        let mut stream = Vec::new();
        write_section(&mut stream, &payload).unwrap();
        let got = read_section(&mut stream.as_slice(), "demo").unwrap();
        assert_eq!(got, payload);

        // Flip one payload byte: checksum must catch it.
        let mut bad = stream.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let err = read_section(&mut bad.as_slice(), "demo").unwrap_err();
        assert!(matches!(err, PersistError::Format(m) if m.contains("checksum")));

        // Truncate mid-payload.
        let cut = &stream[..stream.len() - 3];
        let err = read_section(&mut &cut[..], "demo").unwrap_err();
        assert!(matches!(err, PersistError::Format(m) if m.contains("truncated")));

        // Absurd length header.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        huge.extend_from_slice(&0u64.to_le_bytes());
        let err = read_section(&mut huge.as_slice(), "demo").unwrap_err();
        assert!(matches!(err, PersistError::Format(m) if m.contains("corrupt length")));
    }
}
