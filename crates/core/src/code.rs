//! Bi-level hash codes and their compressed `u64` keys.
//!
//! A Bi-level code is the pair `(RP-tree(v), H(v))` — the level-1 group
//! index concatenated with the level-2 lattice code (Section III). The flat
//! GPU-style storage compresses this variable-length code to a single `u64`
//! key "by using another hash function" (Section V-A); collisions merely
//! merge buckets (adding a few extra short-list candidates), never lose
//! items.

use serde::{Deserialize, Serialize};

/// A full Bi-level code: group index plus lattice coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BiLevelCode {
    /// Level-1 group (RP-tree leaf / cluster id).
    pub group: u32,
    /// Level-2 lattice code (`Z^M` coords, or doubled E8 coords).
    pub code: Vec<i32>,
}

impl BiLevelCode {
    /// Compressed `u64` key over `(table, group, code)`.
    ///
    /// The table index is folded in so one flat array can host all `L`
    /// tables — same-code buckets of different tables must not merge.
    pub fn compress(&self, table: usize) -> u64 {
        compress_code(table, self.group, &self.code)
    }
}

/// FNV-1a–style fold of a bi-level code into a `u64` key, avoiding the
/// cuckoo table's reserved `u64::MAX`.
pub fn compress_code(table: usize, group: u32, code: &[i32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for shift in [0, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (v >> shift) & 0xff;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(table as u64);
    eat(group as u64);
    for &c in code {
        eat(c as u32 as u64);
    }
    // Final avalanche so sequential codes spread over the key space.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    if h == u64::MAX {
        h = 0;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_codes_compress_equal() {
        let a = BiLevelCode { group: 3, code: vec![1, -2, 5] };
        let b = BiLevelCode { group: 3, code: vec![1, -2, 5] };
        assert_eq!(a.compress(0), b.compress(0));
    }

    #[test]
    fn table_group_and_code_all_matter() {
        let base = BiLevelCode { group: 1, code: vec![0, 0] };
        let other_group = BiLevelCode { group: 2, code: vec![0, 0] };
        let other_code = BiLevelCode { group: 1, code: vec![0, 1] };
        assert_ne!(base.compress(0), base.compress(1));
        assert_ne!(base.compress(0), other_group.compress(0));
        assert_ne!(base.compress(0), other_code.compress(0));
    }

    #[test]
    fn never_produces_reserved_sentinel() {
        for t in 0..4usize {
            for g in 0..64u32 {
                for c in -64i32..64 {
                    assert_ne!(compress_code(t, g, &[c, -c, c ^ 3]), u64::MAX);
                }
            }
        }
    }

    #[test]
    fn collision_rate_is_low_on_dense_grid() {
        // 20k distinct small codes: expect no collisions at u64 width.
        let mut keys: Vec<u64> = Vec::new();
        for g in 0..20u32 {
            for a in -16i32..16 {
                for b in -16i32..16 {
                    keys.push(compress_code(0, g, &[a, b]));
                }
            }
        }
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "hash collision on a small grid");
    }
}
