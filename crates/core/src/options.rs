//! The unified query API: one [`QueryOptions`] value carries everything a
//! batch query needs — `k`, the execution [`Engine`], an optional probe
//! override, an optional deadline, and a telemetry sink.
//!
//! Historically the index types grew four overlapping entry points
//! (`query_batch`, `query_batch_with`, `query_batch_at`,
//! `query_shard_batch_at`), each adding one positional parameter. They
//! survive as deprecated one-line shims in [`crate::compat`]; every index
//! now answers `query_batch_opts(&queries, &options)` uniformly.
//!
//! # Escalation semantics
//!
//! The `probe` field selects between the two escalation rules the legacy
//! entry points encoded in their names:
//!
//! * `probe: None` (the default) — probe with the index's built
//!   configuration and, for `Probe::Hierarchical`, escalate starved queries
//!   to the **batch median** of base candidate-set sizes (the paper's
//!   rule). This is what `query_batch` / `query_batch_with` did.
//! * `probe: Some(p)` — probe with `p` (the built probe or a rung of
//!   [`Probe::ladder`]) under **batch-invariant** fixed-floor escalation:
//!   splitting a batch into any sub-batches returns bit-identical per-query
//!   results. This is what `query_batch_at` did, and is the contract the
//!   serving layer's micro-batcher relies on.

use crate::config::Probe;
use crate::index::Engine;
use knn_telemetry::{Recorder, NOOP};
use std::time::Instant;

/// Options for one batch query, accepted uniformly by
/// [`crate::BiLevelIndex::query_batch_opts`],
/// [`crate::ShardedIndex::query_batch_opts`], and
/// [`crate::OocFlatIndex::query_batch_opts`].
///
/// Build with [`QueryOptions::new`] and chain the builder methods:
///
/// ```
/// use bilevel_lsh::{Engine, Probe, QueryOptions};
/// let opts = QueryOptions::new(10)
///     .engine(Engine::PerQuery { threads: 4 })
///     .probe(Probe::Home);
/// assert_eq!(opts.k, 10);
/// ```
///
/// The value is `Copy`; the recorder is borrowed, so an options value lives
/// no longer than the sink it reports to (the default borrows the global
/// [`NOOP`] recorder and is `'static`).
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions<'r> {
    /// Neighbors to return per query.
    pub k: usize,
    /// Execution engine for both pipeline phases (probe and rank).
    pub engine: Engine,
    /// `None`: built probe with batch-median escalation. `Some(p)`: probe
    /// `p` with batch-invariant fixed-floor escalation (see module docs).
    pub probe: Option<Probe>,
    /// Advisory completion deadline. The index layer does not enforce it;
    /// the serving layer uses it to pick a degradation-ladder rung before
    /// the query starts and to bound batching windows.
    pub deadline: Option<Instant>,
    /// Quantized first-pass rerank depth. `None` (default) ranks every
    /// candidate exactly — bit-identical to the pre-knob pipeline.
    /// `Some(depth)`: candidate lists longer than `max(depth, k)` are first
    /// scored with the index's i8 scalar-quantized rows and only the
    /// `max(depth, k)` best survivors are reranked with exact f32 distances
    /// (see `DESIGN.md` §11 for the recall contract).
    pub rerank: Option<usize>,
    /// Telemetry sink for pipeline events. Defaults to the zero-overhead
    /// noop recorder.
    pub recorder: &'r dyn Recorder,
}

impl QueryOptions<'static> {
    /// Options for a `k`-NN query: serial engine, built probe with
    /// batch-median escalation, no deadline, noop recorder — exactly the
    /// behavior of the legacy `query_batch(queries, k)`.
    pub fn new(k: usize) -> Self {
        QueryOptions {
            k,
            engine: Engine::Serial,
            probe: None,
            deadline: None,
            rerank: None,
            recorder: &NOOP,
        }
    }
}

impl Default for QueryOptions<'static> {
    /// `QueryOptions::new(10)`.
    fn default() -> Self {
        QueryOptions::new(10)
    }
}

impl<'r> QueryOptions<'r> {
    /// Select the execution engine (default [`Engine::Serial`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Override the probe strategy, switching to batch-invariant
    /// fixed-floor escalation (see module docs).
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Attach an advisory completion deadline.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enable the quantized first pass, reranking at most
    /// `max(depth, k)` survivors exactly (see [`QueryOptions::rerank`]).
    pub fn rerank(mut self, depth: usize) -> Self {
        self.rerank = Some(depth);
        self
    }

    /// Attach a telemetry sink; pipeline stages report into it.
    pub fn recorder<'n>(self, recorder: &'n dyn Recorder) -> QueryOptions<'n> {
        QueryOptions {
            k: self.k,
            engine: self.engine,
            probe: self.probe,
            deadline: self.deadline,
            rerank: self.rerank,
            recorder,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_legacy_query_batch() {
        let opts = QueryOptions::new(7);
        assert_eq!(opts.k, 7);
        assert_eq!(opts.engine, Engine::Serial);
        assert!(opts.probe.is_none());
        assert!(opts.deadline.is_none());
        assert!(opts.rerank.is_none());
        assert!(!opts.recorder.enabled());
    }

    #[test]
    fn builder_chains() {
        let rec = knn_telemetry::InMemoryRecorder::new();
        let opts = QueryOptions::new(5)
            .engine(Engine::PerQuery { threads: 2 })
            .probe(Probe::Multi(3))
            .rerank(256)
            .recorder(&rec);
        assert_eq!(opts.engine, Engine::PerQuery { threads: 2 });
        assert_eq!(opts.probe, Some(Probe::Multi(3)));
        assert_eq!(opts.rerank, Some(256));
        assert!(opts.recorder.enabled());
    }
}
