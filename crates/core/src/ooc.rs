//! Out-of-core Bi-level LSH: the index structure in memory, the vectors on
//! disk (the paper's Section VII future-work item).
//!
//! Construction follows the sample-fit / stream-encode pattern:
//!
//! 1. a strided in-memory **sample** fits the level-1 partitioner and the
//!    per-group widths (partition quality degrades gracefully with the
//!    sample rate, never correctness);
//! 2. the full file is **streamed** in chunks, each row hashed into its
//!    compressed bi-level key — only `(key, id)` pairs are retained;
//! 3. queries probe the cuckoo-indexed flat bucket layout exactly like
//!    [`crate::FlatIndex`], but the short-list search fetches candidate
//!    rows from disk with positioned reads.

use crate::code::compress_code;
use crate::config::{BiLevelConfig, Partition, Probe, WidthMode};
use crate::index::{probe_sequence, quantize};
use cuckoo::CuckooTable;
use lsh::{tune_w, DistanceProfile, HashFamily, TuningGoal};
use rptree::{KMeans, KdPartitioner, Partitioner, RpTree, RpTreeConfig, SinglePartition};
use vecstore::metric::squared_l2;
use vecstore::ooc::OocDataset;
use vecstore::{Dataset, Neighbor, TopK};

/// Rows per streaming chunk during construction.
const CHUNK_ROWS: usize = 4_096;

/// Disk-resident Bi-level LSH index over an [`OocDataset`].
///
/// Supports `Probe::Home` and `Probe::Multi`; hierarchical probing needs the
/// in-memory per-table structures.
pub struct OocFlatIndex<'a> {
    source: &'a OocDataset,
    config: BiLevelConfig,
    partitioner: Box<dyn Partitioner>,
    /// Per-table families; group widths are folded in per query/row via
    /// `group_widths` (families are sampled at `W = 1`).
    base_families: Vec<HashFamily>,
    group_widths: Vec<f32>,
    /// All item ids sorted by (table, compressed code).
    linear: Vec<u32>,
    /// Compressed code → packed `(start << 32) | end` interval.
    intervals: CuckooTable,
}

impl<'a> OocFlatIndex<'a> {
    /// Builds the index by sampling `sample_size` rows for fitting and then
    /// streaming the whole file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying file.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or hierarchical probing.
    pub fn build(
        source: &'a OocDataset,
        config: &BiLevelConfig,
        sample_size: usize,
    ) -> std::io::Result<Self> {
        config.validate();
        assert!(
            !matches!(config.probe, Probe::Hierarchical { .. }),
            "OocFlatIndex does not support hierarchical probing"
        );
        assert!(!source.is_empty(), "cannot index an empty file");
        let config = config.clone();

        // ---- Fit phase: everything model-like comes from the sample. ----
        let sample = source.sample(sample_size)?;
        let partitioner: Box<dyn Partitioner> = match config.partition {
            Partition::None => Box::new(SinglePartition),
            Partition::RpTree { groups, rule } => {
                let cfg = RpTreeConfig::with_leaves(groups).rule(rule).seed(config.seed ^ 0xA11);
                Box::new(RpTree::fit(&sample, &cfg).0)
            }
            Partition::KMeans { groups } => {
                Box::new(KMeans::fit(&sample, groups, 50, config.seed ^ 0xB22).0)
            }
            Partition::Kd { groups } => Box::new(KdPartitioner::fit(&sample, groups).0),
        };
        let num_groups = partitioner.num_groups();
        let group_widths = sample_group_widths(&sample, partitioner.as_ref(), num_groups, &config);
        let base_families: Vec<HashFamily> = (0..config.l)
            .map(|l| {
                HashFamily::sample(source.dim(), config.m, 1.0, config.seed ^ (0x1000 + l as u64))
            })
            .collect();

        // ---- Stream phase: encode every row, keep only (key, id). ----
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(source.len() * config.l);
        let mut raw = vec![0.0f32; config.m];
        for chunk in source.chunks(CHUNK_ROWS) {
            let (start, block) = chunk?;
            for (j, row) in block.iter().enumerate() {
                let id = (start + j) as u32;
                let g = partitioner.assign(row);
                for (l, base) in base_families.iter().enumerate() {
                    let family = base.with_w(group_widths[g]);
                    family.project_into(row, &mut raw);
                    let code = quantize(&raw, config.quantizer);
                    keyed.push((compress_code(l, g as u32, &code), id));
                }
            }
        }
        keyed.sort_unstable();
        let linear: Vec<u32> = keyed.iter().map(|&(_, id)| id).collect();
        let mut items: Vec<(u64, u64)> = Vec::new();
        let mut i = 0usize;
        while i < keyed.len() {
            let key = keyed[i].0;
            let mut j = i;
            while j < keyed.len() && keyed[j].0 == key {
                j += 1;
            }
            items.push((key, ((i as u64) << 32) | j as u64));
            i = j;
        }
        let intervals =
            CuckooTable::build(items, config.seed ^ 0xC0C0).expect("cuckoo build failed");

        Ok(Self { source, config, partitioner, base_families, group_widths, linear, intervals })
    }

    /// Number of level-1 groups in effect.
    pub fn num_groups(&self) -> usize {
        self.partitioner.num_groups()
    }

    /// Deduplicated candidate ids for one query (no disk reads — pure
    /// bucket lookup).
    pub fn candidates(&self, v: &[f32]) -> Vec<u32> {
        assert_eq!(v.len(), self.source.dim(), "query dimension mismatch");
        let g = self.partitioner.assign(v);
        let mut raw = vec![0.0f32; self.config.m];
        let mut out = Vec::new();
        for (l, base) in self.base_families.iter().enumerate() {
            let family = base.with_w(self.group_widths[g]);
            family.project_into(v, &mut raw);
            let home = quantize(&raw, self.config.quantizer);
            let probes = match self.config.probe {
                Probe::Home => vec![home],
                Probe::Multi(t) => probe_sequence(&raw, &home, t, self.config.quantizer),
                Probe::Hierarchical { .. } => unreachable!("rejected at build"),
            };
            for code in probes {
                if let Some(packed) = self.intervals.get(compress_code(l, g as u32, &code)) {
                    let (start, end) = ((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize);
                    out.extend_from_slice(&self.linear[start..end]);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Full k-NN query: probes buckets, then ranks candidates by reading
    /// their rows from disk. Returns L2 distances.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from candidate row reads.
    pub fn query(&self, v: &[f32], k: usize) -> std::io::Result<Vec<Neighbor>> {
        let candidates = self.candidates(v);
        let mut top = TopK::new(k);
        let mut buf = vec![0.0f32; self.source.dim()];
        for &id in &candidates {
            self.source.read_row_into(id as usize, &mut buf)?;
            top.push(id as usize, squared_l2(v, &buf));
        }
        let mut hits = top.into_sorted();
        for n in &mut hits {
            n.dist = n.dist.sqrt();
        }
        Ok(hits)
    }

    /// Batch query over an in-memory query set.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from candidate row reads.
    pub fn query_batch(&self, queries: &Dataset, k: usize) -> std::io::Result<Vec<Vec<Neighbor>>> {
        queries.iter().map(|q| self.query(q, k)).collect()
    }
}

/// Per-group widths estimated on the fitting sample.
fn sample_group_widths(
    sample: &Dataset,
    partitioner: &dyn Partitioner,
    num_groups: usize,
    config: &BiLevelConfig,
) -> Vec<f32> {
    match config.width {
        WidthMode::Fixed(w) => vec![w; num_groups],
        WidthMode::Scaled { base, k } => {
            let assignments = partitioner.assign_all(sample);
            let global = DistanceProfile::fit(sample, k, 200);
            per_group(sample, &assignments, num_groups, |subset| {
                if subset.len() < 2 {
                    return base;
                }
                let p = DistanceProfile::fit(subset, k, 200);
                base * (p.d_knn / global.d_knn.max(1e-12)).clamp(0.1, 10.0) as f32
            })
        }
        WidthMode::Tuned { target_recall, k } => {
            let assignments = partitioner.assign_all(sample);
            per_group(sample, &assignments, num_groups, |subset| {
                if subset.len() < 2 {
                    return 1.0;
                }
                let p = DistanceProfile::fit(subset, k, 200);
                tune_w(&p, config.m, config.l, TuningGoal::Recall(target_recall)) as f32
            })
        }
    }
}

fn per_group<F: Fn(&Dataset) -> f32>(
    sample: &Dataset,
    assignments: &[usize],
    num_groups: usize,
    f: F,
) -> Vec<f32> {
    (0..num_groups)
        .map(|g| {
            let ids: Vec<usize> =
                assignments.iter().enumerate().filter(|&(_, &a)| a == g).map(|(i, _)| i).collect();
            if ids.is_empty() {
                1.0
            } else {
                f(&sample.gather(&ids))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use vecstore::io::write_fvecs;
    use vecstore::synth::{self, ClusteredSpec};

    fn on_disk(name: &str, n: usize) -> (std::path::PathBuf, Dataset, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(n + 50), 61);
        let (data, queries) = all.split_at(n);
        let dir = std::env::temp_dir().join("bilevel_ooc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_fvecs(&path, &data).unwrap();
        (path, data, queries)
    }

    #[test]
    fn full_sample_matches_in_memory_flat_index() {
        let (path, data, queries) = on_disk("match.fvecs", 600);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::paper_default(5.0);
        // Sample >= n: the fit sees the whole dataset, so candidates must be
        // identical to the in-memory flat index built with the same seed.
        let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
        let mem = FlatIndex::build(&data, &cfg);
        for q in queries.iter() {
            assert_eq!(ooc.candidates(q), mem.candidates(q));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn small_sample_still_answers_sanely() {
        let (path, data, queries) = on_disk("sampled.fvecs", 600);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::paper_default(8.0);
        let ooc = OocFlatIndex::build(&source, &cfg, 100).unwrap();
        assert!(ooc.num_groups() >= 1);
        let hits = ooc.query(queries.row(0), 5).unwrap();
        assert!(hits.len() <= 5);
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(hits.iter().all(|n| n.id < data.len()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_distances_match_disk_rows() {
        let (path, data, queries) = on_disk("dist.fvecs", 400);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::standard(10.0);
        let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
        let hits = ooc.query(queries.row(1), 3).unwrap();
        for n in hits {
            let want = squared_l2(queries.row(1), data.row(n.id)).sqrt();
            assert!((n.dist - want).abs() < 1e-4);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multiprobe_supported() {
        let (path, _, queries) = on_disk("multi.fvecs", 300);
        let source = OocDataset::open(&path).unwrap();
        let home_cfg = BiLevelConfig::standard(4.0);
        let multi_cfg = BiLevelConfig::standard(4.0).probe(Probe::Multi(16));
        let home = OocFlatIndex::build(&source, &home_cfg, usize::MAX).unwrap();
        let multi = OocFlatIndex::build(&source, &multi_cfg, usize::MAX).unwrap();
        let ch: usize = queries.iter().map(|q| home.candidates(q).len()).sum();
        let cm: usize = queries.iter().map(|q| multi.candidates(q).len()).sum();
        assert!(cm >= ch);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "hierarchical")]
    fn hierarchical_rejected() {
        let (path, _, _) = on_disk("hier.fvecs", 100);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::standard(4.0).probe(Probe::Hierarchical { min_candidates: 4 });
        let _ = OocFlatIndex::build(&source, &cfg, 50);
    }
}
