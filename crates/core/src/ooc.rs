//! Out-of-core Bi-level LSH: the index structure in memory, the vectors on
//! disk (the paper's Section VII future-work item).
//!
//! Construction follows the sample-fit / stream-encode pattern:
//!
//! 1. a strided in-memory **sample** fits the level-1 partitioner and the
//!    per-group widths (partition quality degrades gracefully with the
//!    sample rate, never correctness);
//! 2. the full file is **streamed** in chunks, each chunk's rows hashed
//!    into their compressed bi-level keys on the worker pool — only
//!    `(key, id)` pairs are retained, and the fan-out writes into
//!    pre-sized slots so any thread count produces bit-identical keys;
//! 3. queries probe the cuckoo-indexed flat bucket layout exactly like
//!    [`crate::FlatIndex`]; the short-list search fetches candidate rows
//!    from disk with positioned reads — one per row on the serial path, or
//!    one per *run* of adjacent candidates on the coalesced batch path.

use crate::code::compress_code;
use crate::config::{BiLevelConfig, Probe, WidthMode};
use crate::index::{fit_level1, probe_sequence, quantize, Level1};
use crate::interval::IntervalTable;
use crate::options::QueryOptions;
use cuckoo::CuckooError;
use knn_telemetry::{Counter, Recorder, SpanTimer, Stage, Value, NOOP};
use lsh::{tune_w, DistanceProfile, HashFamily, ProjectionScratch, TuningGoal};
use rptree::Partitioner;
use shortlist::parallel_fill_with;
use vecstore::fault::{RetryPolicy, RetryStats};
use vecstore::kernel::squared_l2_batch;
use vecstore::metric::squared_l2;
use vecstore::ooc::{OocDataset, RowSource};
use vecstore::{Dataset, Neighbor, Tombstones, TopK};

/// Rows per streaming chunk during construction.
const CHUNK_ROWS: usize = 4_096;

/// Largest id gap bridged when merging adjacent candidates into one
/// positioned read: reading up to this many unrequested rows costs less
/// than a second syscall + seek.
const COALESCE_GAP: usize = 8;

/// Typed error from out-of-core index construction: either the storage
/// layer failed permanently (or exhausted its retry budget), or the
/// cuckoo-hashed interval table could not place its keys.
#[derive(Debug)]
pub enum OocBuildError {
    /// A read from the row source failed after retries.
    Io(std::io::Error),
    /// The interval table's cuckoo placement failed.
    Cuckoo(CuckooError),
    /// The source holds more rows than the `u32` row-id space can address.
    TooLarge(crate::index::CorpusTooLarge),
    /// The configuration asks for a hash family or metric the out-of-core
    /// path does not implement: it ranks by streaming squared-L2 reads and
    /// width-folds p-stable projections, so only the L2 / p-stable pairing
    /// is supported.
    UnsupportedFamily {
        /// The configured level-2 family name.
        family: &'static str,
        /// The configured metric name.
        metric: &'static str,
    },
}

impl std::fmt::Display for OocBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocBuildError::Io(e) => write!(f, "out-of-core build I/O failure: {e}"),
            OocBuildError::Cuckoo(e) => write!(f, "interval-table build failure: {e}"),
            OocBuildError::TooLarge(e) => write!(f, "{e}"),
            OocBuildError::UnsupportedFamily { family, metric } => write!(
                f,
                "out-of-core indexes support only the l2/p-stable configuration \
                 (got family `{family}` under metric `{metric}`)"
            ),
        }
    }
}

impl std::error::Error for OocBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocBuildError::Io(e) => Some(e),
            OocBuildError::Cuckoo(e) => Some(e),
            OocBuildError::TooLarge(e) => Some(e),
            OocBuildError::UnsupportedFamily { .. } => None,
        }
    }
}

impl From<std::io::Error> for OocBuildError {
    fn from(e: std::io::Error) -> Self {
        OocBuildError::Io(e)
    }
}

impl From<CuckooError> for OocBuildError {
    fn from(e: CuckooError) -> Self {
        OocBuildError::Cuckoo(e)
    }
}

impl From<crate::index::CorpusTooLarge> for OocBuildError {
    fn from(e: crate::index::CorpusTooLarge) -> Self {
        OocBuildError::TooLarge(e)
    }
}

/// Disk-resident Bi-level LSH index over a [`RowSource`] (an
/// [`OocDataset`] in production, a fault-injecting wrapper in chaos
/// tests).
///
/// Supports `Probe::Home` and `Probe::Multi`; hierarchical probing needs the
/// in-memory per-table structures.
///
/// Every disk read — during construction and per-query candidate
/// ranking — runs under the index's [`RetryPolicy`]: transient errors
/// (`EINTR`, `EIO`, checksum-detected corruption) are retried with
/// bounded exponential backoff under a per-query budget, so a storage
/// hiccup degrades latency instead of failing the query. Retry activity
/// is counted in [`RetryStats`].
pub struct OocFlatIndex<'a, S: RowSource = OocDataset> {
    pub(crate) source: &'a S,
    pub(crate) config: BiLevelConfig,
    pub(crate) level1: Level1,
    /// Width-folded families, `families[l * num_groups + g]`: table `l`'s
    /// base projections at group `g`'s width. Folded once at build — the
    /// projection matrix is shared per table, so this costs one rescaled
    /// offset vector per `(l, g)` instead of a matrix clone per row.
    pub(crate) families: Vec<HashFamily>,
    pub(crate) group_widths: Vec<f32>,
    /// All item ids sorted by (table, compressed code).
    pub(crate) linear: Vec<u32>,
    /// Compressed code → `(start, len)` interval into `linear`.
    pub(crate) intervals: IntervalTable,
    /// Retry policy for every disk read this index performs.
    pub(crate) retry: RetryPolicy,
    /// Counters for retry activity across all reads.
    pub(crate) retry_stats: RetryStats,
    /// Logically deleted rows, filtered out before candidate rows are
    /// fetched — a tombstoned row costs no disk read and no rank slot.
    pub(crate) tombstones: Tombstones,
}

impl<'a, S: RowSource> OocFlatIndex<'a, S> {
    /// Builds the index by sampling `sample_size` rows for fitting and then
    /// streaming the whole file, encoding on all available cores.
    ///
    /// # Errors
    ///
    /// Returns [`OocBuildError::Io`] when a read fails permanently (or
    /// exhausts the retry budget), [`OocBuildError::Cuckoo`] when the
    /// interval table cannot place its keys.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or hierarchical probing.
    pub fn build(
        source: &'a S,
        config: &BiLevelConfig,
        sample_size: usize,
    ) -> Result<Self, OocBuildError> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::build_with(source, config, sample_size, threads)
    }

    /// Builds with an explicit worker count for the stream-encode phase.
    /// The result is bit-identical for every `threads` value: rows are
    /// block-partitioned into pre-sized key slots, and the final sort makes
    /// bucket layout independent of encode order.
    ///
    /// # Errors
    ///
    /// Returns [`OocBuildError::Io`] when a read fails permanently (or
    /// exhausts the retry budget), [`OocBuildError::Cuckoo`] when the
    /// interval table cannot place its keys.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or hierarchical probing.
    pub fn build_with(
        source: &'a S,
        config: &BiLevelConfig,
        sample_size: usize,
        threads: usize,
    ) -> Result<Self, OocBuildError> {
        config.validate();
        if config.family != crate::config::FamilyKind::PStable
            || config.metric != crate::config::MetricKind::L2
        {
            return Err(OocBuildError::UnsupportedFamily {
                family: config.family.name(),
                metric: config.metric.name(),
            });
        }
        assert!(
            !matches!(config.probe, Probe::Hierarchical { .. }),
            "OocFlatIndex does not support hierarchical probing"
        );
        assert!(!source.is_empty(), "cannot index an empty file");
        crate::index::check_id_space(source.len())?;
        let config = config.clone();
        let threads = threads.max(1);
        let retry = RetryPolicy::default();
        let retry_stats = RetryStats::default();
        // Each build read retries under its own budget: the attempt cap
        // already bounds per-operation retries, and independent reads must
        // not share a budget — transient faults scattered across thousands
        // of rows would otherwise drain it and fail a recoverable build.

        // ---- Fit phase: everything model-like comes from the sample. ----
        // Sampled rows are read (and retried) one at a time: a transient
        // fault costs one row's retries, never a whole-sample restart.
        let sample = {
            let n = sample_size.clamp(1, source.len());
            let stride = (source.len() / n).max(1);
            let mut out = Dataset::with_capacity(source.dim(), n);
            let mut buf = vec![0.0f32; source.dim()];
            let (mut taken, mut i) = (0usize, 0usize);
            while taken < n && i < source.len() {
                let mut budget = retry.budget();
                retry.run(&mut budget, &retry_stats, || source.read_row_into(i, &mut buf))?;
                out.push(&buf);
                taken += 1;
                i += stride;
            }
            out
        };
        let (level1, _) = fit_level1(&sample, &config);
        let num_groups = level1.num_groups();
        let group_widths = sample_group_widths(&sample, &level1, num_groups, &config);
        let families = fold_families(source.dim(), &config, &group_widths);

        // ---- Stream phase: encode every row, keep only (key, id). ----
        let l = config.l;
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(source.len() * l);
        let mut groups: Vec<u32> = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        let mut start = 0usize;
        while start < source.len() {
            let rows = CHUNK_ROWS.min(source.len() - start);
            let mut budget = retry.budget();
            let block = retry.run(&mut budget, &retry_stats, || source.read_block(start, rows))?;
            // Pass 1: level-1 assignment per row.
            groups.clear();
            groups.resize(block.len(), 0);
            parallel_fill_with(
                &mut groups,
                threads,
                || (),
                |_, j, slot| {
                    *slot = level1.assign(block.row(j)) as u32;
                },
            );
            // Pass 2: one compressed key per (row, table) slot.
            keys.clear();
            keys.resize(block.len() * l, 0);
            parallel_fill_with(
                &mut keys,
                threads,
                || ProjectionScratch::new(config.m),
                |scratch, idx, slot| {
                    let (j, li) = (idx / l, idx % l);
                    let g = groups[j] as usize;
                    let raw = scratch.project(&families[li * num_groups + g], block.row(j));
                    let code = quantize(raw, config.quantizer);
                    *slot = compress_code(li, groups[j], &code);
                },
            );
            for j in 0..block.len() {
                let id = u32::try_from(start + j).expect("row count checked against u32 id space");
                for li in 0..l {
                    keyed.push((keys[j * l + li], id));
                }
            }
            start += rows;
        }
        keyed.sort_unstable();
        let linear: Vec<u32> = keyed.iter().map(|&(_, id)| id).collect();
        let intervals = IntervalTable::from_sorted_entries(&keyed, config.seed ^ 0xC0C0)?;

        Ok(Self {
            source,
            config,
            level1,
            families,
            group_widths,
            linear,
            intervals,
            retry,
            retry_stats,
            tombstones: Tombstones::new(),
        })
    }

    /// Logically deletes row `id`: it is tombstoned and excluded from every
    /// subsequent rank stage (the on-disk row is untouched — physical
    /// reclamation is a rebuild). Returns `true` if newly tombstoned.
    ///
    /// # Panics
    ///
    /// Panics if `id` is at or past the source length.
    pub fn delete(&mut self, id: usize) -> bool {
        assert!(id < self.source.len(), "delete id {id} out of range ({} rows)", self.source.len());
        self.tombstones.set(id as u32)
    }

    /// Whether row `id` is tombstoned.
    pub fn is_deleted(&self, id: usize) -> bool {
        id < self.source.len() && self.tombstones.contains(id as u32)
    }

    /// The tombstone bitmap.
    pub fn deleted(&self) -> &Tombstones {
        &self.tombstones
    }

    /// Replaces the retry policy governing this index's disk reads.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The retry policy governing this index's disk reads.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Counters for retry activity across every read this index made.
    pub fn retry_stats(&self) -> &RetryStats {
        &self.retry_stats
    }

    /// Number of level-1 groups in effect.
    pub fn num_groups(&self) -> usize {
        self.level1.num_groups()
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &BiLevelConfig {
        &self.config
    }

    /// The row source the index reads candidate rows from.
    pub fn source(&self) -> &S {
        self.source
    }

    /// The sorted linear id array backing the bucket layout — exposed so
    /// build-determinism checks can compare layouts across thread counts.
    pub fn linear_ids(&self) -> &[u32] {
        &self.linear
    }

    /// Deduplicated candidate ids for one query (no disk reads — pure
    /// bucket lookup).
    pub fn candidates(&self, v: &[f32]) -> Vec<u32> {
        self.candidates_with(
            v,
            &mut ProjectionScratch::new(self.config.m),
            self.config.probe,
            &NOOP,
        )
    }

    /// Scratch-reusing probe — the per-worker routine of the batch paths.
    /// `probe` is the built probe or a `Home`/`Multi` override.
    fn candidates_with(
        &self,
        v: &[f32],
        scratch: &mut ProjectionScratch,
        probe: Probe,
        rec: &dyn Recorder,
    ) -> Vec<u32> {
        assert_eq!(v.len(), self.source.dim(), "query dimension mismatch");
        let span = SpanTimer::start(rec, Stage::Probe);
        let g = self.level1.assign(v);
        let num_groups = self.level1.num_groups();
        let mut out = Vec::new();
        let mut extra_buckets = 0u64;
        for li in 0..self.config.l {
            let raw = scratch.project(&self.families[li * num_groups + g], v);
            let home = quantize(raw, self.config.quantizer);
            let probes = match probe {
                Probe::Home => vec![home],
                Probe::Multi(t) => probe_sequence(raw, &home, t, self.config.quantizer),
                Probe::Hierarchical { .. } => unreachable!("rejected at build"),
            };
            extra_buckets += (probes.len().saturating_sub(1)) as u64;
            for code in probes {
                if let Some((start, len)) = self.intervals.get(compress_code(li, g as u32, &code)) {
                    out.extend_from_slice(&self.linear[start as usize..(start + len) as usize]);
                }
            }
        }
        if extra_buckets > 0 {
            rec.add(Counter::MultiProbeBuckets, extra_buckets);
        }
        out.sort_unstable();
        out.dedup();
        drop(span);
        out
    }

    /// Full k-NN query: probes buckets, then ranks candidates by reading
    /// their rows from disk one positioned read per row. This is the serial
    /// per-row baseline; [`OocFlatIndex::query_batch_opts`] coalesces.
    /// Returns L2 distances.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from candidate row reads — after the retry
    /// policy has retried transient errors under this query's budget.
    pub fn query(&self, v: &[f32], k: usize) -> std::io::Result<Vec<Neighbor>> {
        let candidates = self.candidates(v);
        let mut top = TopK::new(k);
        let mut buf = vec![0.0f32; self.source.dim()];
        let mut budget = self.retry.budget();
        for &id in &candidates {
            if self.tombstones.contains(id) {
                continue;
            }
            self.retry.run(&mut budget, &self.retry_stats, || {
                self.source.read_row_into(id as usize, &mut buf)
            })?;
            top.push(id as usize, squared_l2(v, &buf));
        }
        let mut hits = top.into_sorted();
        for n in &mut hits {
            n.dist = n.dist.sqrt();
        }
        Ok(hits)
    }

    /// Batch query over an in-memory query set: the serial per-row baseline
    /// (one positioned read per candidate row, one query at a time). Kept
    /// as a named, non-deprecated entry point because its I/O pattern is
    /// the baseline the coalesced path is benchmarked against.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from candidate row reads.
    pub fn query_batch_per_row(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> std::io::Result<Vec<Vec<Neighbor>>> {
        queries.iter().map(|q| self.query(q, k)).collect()
    }

    /// Batch k-nearest-neighbor query under a [`QueryOptions`] value, with
    /// coalesced candidate fetches: each query's sorted candidate ids are
    /// merged into runs (gaps up to `COALESCE_GAP` rows bridged) and
    /// every run is fetched with a single positioned read. Runs on the
    /// engine's worker count; results are identical to
    /// [`OocFlatIndex::query_batch_per_row`] at any thread count —
    /// candidates are generated by the same probe routine and ranked in
    /// the same ascending-id order.
    ///
    /// `options.probe` may override the built probe with another
    /// `Home`/`Multi` strategy; there is no escalation out-of-core, so
    /// both `None` and `Some(built probe)` mean the same thing here.
    /// Positioned reads, fetched bytes, and retry attempts are reported to
    /// `options.recorder`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from candidate row reads.
    ///
    /// # Panics
    ///
    /// Panics if `options.probe` is hierarchical (unsupported out-of-core)
    /// or [`Engine::validate`](crate::Engine::validate) rejects the engine.
    pub fn query_batch_opts(
        &self,
        queries: &Dataset,
        options: &QueryOptions<'_>,
    ) -> std::io::Result<Vec<Vec<Neighbor>>> {
        assert_eq!(queries.dim(), self.source.dim(), "query dimension mismatch");
        let (k, rec) = (options.k, options.recorder);
        options.engine.validate(k);
        let probe = options.probe.unwrap_or(self.config.probe);
        assert!(
            !matches!(probe, Probe::Hierarchical { .. }),
            "hierarchical probing is not supported out-of-core"
        );
        let threads = options.engine.threads();
        let mut out: Vec<std::io::Result<Vec<Neighbor>>> = Vec::new();
        out.resize_with(queries.len(), || Ok(Vec::new()));
        parallel_fill_with(
            &mut out,
            threads,
            || (ProjectionScratch::new(self.config.m), Vec::new(), Vec::new()),
            |(scratch, row_buf, dist_buf), q, slot| {
                let v = queries.row(q);
                let candidates = self.candidates_with(v, scratch, probe, rec);
                if rec.enabled() {
                    rec.add(Counter::CandidatesGenerated, candidates.len() as u64);
                    rec.observe(Value::CandidatesPerQuery, candidates.len() as u64);
                }
                let rank_span = SpanTimer::start(rec, Stage::Rank);
                *slot = self.rank_coalesced(v, &candidates, k, row_buf, dist_buf, rec);
                drop(rank_span);
            },
        );
        rec.add(Counter::QueriesProbed, queries.len() as u64);
        out.into_iter().collect()
    }

    /// Ranks `candidates` (ascending ids) against `v` by fetching runs of
    /// adjacent rows with one read each. Each run is scored with the blocked
    /// batch kernel — one linear sweep over the run buffer instead of a
    /// per-candidate distance call — then pushed into the top-k in the same
    /// ascending-id order as the per-row path, so ties resolve identically
    /// (the batch kernel is bit-identical per row to `squared_l2`).
    fn rank_coalesced(
        &self,
        v: &[f32],
        candidates: &[u32],
        k: usize,
        row_buf: &mut Vec<f32>,
        dist_buf: &mut Vec<f32>,
        rec: &dyn Recorder,
    ) -> std::io::Result<Vec<Neighbor>> {
        let dim = self.source.dim();
        // Drop tombstoned ids before run formation: dead rows neither widen
        // coalesced reads nor occupy rank slots.
        let live_storage: Vec<u32>;
        let candidates: &[u32] = if self.tombstones.is_empty() {
            candidates
        } else {
            live_storage =
                candidates.iter().copied().filter(|&id| !self.tombstones.contains(id)).collect();
            if rec.enabled() {
                rec.add(
                    Counter::TombstonedFiltered,
                    (candidates.len() - live_storage.len()) as u64,
                );
            }
            &live_storage
        };
        let mut top = TopK::new(k);
        let mut budget = self.retry.budget();
        let mut i = 0usize;
        while i < candidates.len() {
            let run_start = candidates[i] as usize;
            let mut j = i;
            while j + 1 < candidates.len()
                && candidates[j + 1] as usize - candidates[j] as usize <= COALESCE_GAP
            {
                j += 1;
            }
            let rows = candidates[j] as usize - run_start + 1;
            row_buf.resize(rows * dim, 0.0);
            let mut attempts = 0u64;
            let io_span = SpanTimer::start(rec, Stage::OocIo);
            self.retry.run(&mut budget, &self.retry_stats, || {
                attempts += 1;
                self.source.read_rows_into(run_start, rows, row_buf)
            })?;
            drop(io_span);
            if rec.enabled() {
                rec.add(Counter::OocReads, 1);
                rec.add(Counter::OocBytesRead, (rows * dim * 4) as u64);
                if attempts > 1 {
                    rec.add(Counter::OocRetries, attempts - 1);
                }
            }
            // Score only candidate rows: consecutive ids batch into one
            // kernel sweep each; gap rows fetched purely to coalesce I/O are
            // never scored. dist_buf fills in candidate order.
            dist_buf.clear();
            dist_buf.reserve(j - i + 1);
            let mut s = i;
            while s <= j {
                let mut e = s;
                while e < j && candidates[e + 1] == candidates[e] + 1 {
                    e += 1;
                }
                let lo = (candidates[s] as usize - run_start) * dim;
                let hi = (candidates[e] as usize - run_start + 1) * dim;
                if e == s {
                    // Lone candidate in its stretch: the pair kernel skips
                    // the batch call's setup (bit-identical accumulation).
                    dist_buf.push(squared_l2(v, &row_buf[lo..hi]));
                } else {
                    squared_l2_batch(v, &row_buf[lo..hi], dim, dist_buf);
                }
                s = e + 1;
            }
            for (&id, &dist) in candidates[i..=j].iter().zip(dist_buf.iter()) {
                top.push(id as usize, dist);
            }
            i = j + 1;
        }
        let mut hits = top.into_sorted();
        for n in &mut hits {
            n.dist = n.dist.sqrt();
        }
        Ok(hits)
    }
}

/// One width-folded family per `(table, group)` pair, sharing each table's
/// base projections: `out[l * num_groups + g]`.
fn fold_families(dim: usize, config: &BiLevelConfig, group_widths: &[f32]) -> Vec<HashFamily> {
    let mut out = Vec::with_capacity(config.l * group_widths.len());
    for l in 0..config.l {
        let base = HashFamily::sample_with(
            dim,
            config.m,
            1.0,
            config.seed ^ (0x1000 + l as u64),
            config.projection,
        );
        for &w in group_widths {
            out.push(base.with_w(w));
        }
    }
    out
}

/// Per-group widths estimated on the fitting sample.
fn sample_group_widths(
    sample: &Dataset,
    partitioner: &dyn Partitioner,
    num_groups: usize,
    config: &BiLevelConfig,
) -> Vec<f32> {
    match config.width {
        WidthMode::Fixed(w) => vec![w; num_groups],
        WidthMode::Scaled { base, k } => {
            let assignments = partitioner.assign_all(sample);
            let global = DistanceProfile::fit(sample, k, 200);
            per_group(sample, &assignments, num_groups, |subset| {
                if subset.len() < 2 {
                    return base;
                }
                let p = DistanceProfile::fit(subset, k, 200);
                base * (p.d_knn / global.d_knn.max(1e-12)).clamp(0.1, 10.0) as f32
            })
        }
        WidthMode::Tuned { target_recall, k } => {
            let assignments = partitioner.assign_all(sample);
            per_group(sample, &assignments, num_groups, |subset| {
                if subset.len() < 2 {
                    return 1.0;
                }
                let p = DistanceProfile::fit(subset, k, 200);
                tune_w(&p, config.m, config.l, TuningGoal::Recall(target_recall)) as f32
            })
        }
    }
}

fn per_group<F: Fn(&Dataset) -> f32>(
    sample: &Dataset,
    assignments: &[usize],
    num_groups: usize,
    f: F,
) -> Vec<f32> {
    (0..num_groups)
        .map(|g| {
            let ids: Vec<usize> =
                assignments.iter().enumerate().filter(|&(_, &a)| a == g).map(|(i, _)| i).collect();
            if ids.is_empty() {
                1.0
            } else {
                f(&sample.gather(&ids))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::index::Engine;
    use vecstore::io::write_fvecs;
    use vecstore::metric::squared_l2;
    use vecstore::synth::{self, ClusteredSpec};

    fn on_disk(name: &str, n: usize) -> (std::path::PathBuf, Dataset, Dataset) {
        let all = synth::clustered(&ClusteredSpec::small(n + 50), 61);
        let (data, queries) = all.split_at(n);
        let dir = std::env::temp_dir().join("bilevel_ooc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_fvecs(&path, &data).unwrap();
        (path, data, queries)
    }

    #[test]
    fn full_sample_matches_in_memory_flat_index() {
        let (path, data, queries) = on_disk("match.fvecs", 600);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::paper_default(5.0);
        // Sample >= n: the fit sees the whole dataset, so candidates must be
        // identical to the in-memory flat index built with the same seed.
        let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
        let mem = FlatIndex::build(&data, &cfg);
        for q in queries.iter() {
            assert_eq!(ooc.candidates(q), mem.candidates(q));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn small_sample_still_answers_sanely() {
        let (path, data, queries) = on_disk("sampled.fvecs", 600);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::paper_default(8.0);
        let ooc = OocFlatIndex::build(&source, &cfg, 100).unwrap();
        assert!(ooc.num_groups() >= 1);
        let hits = ooc.query(queries.row(0), 5).unwrap();
        assert!(hits.len() <= 5);
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(hits.iter().all(|n| n.id < data.len()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_distances_match_disk_rows() {
        let (path, data, queries) = on_disk("dist.fvecs", 400);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::standard(10.0);
        let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
        let hits = ooc.query(queries.row(1), 3).unwrap();
        for n in hits {
            let want = squared_l2(queries.row(1), data.row(n.id)).sqrt();
            assert!((n.dist - want).abs() < 1e-4);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multiprobe_supported() {
        let (path, _, queries) = on_disk("multi.fvecs", 300);
        let source = OocDataset::open(&path).unwrap();
        let home_cfg = BiLevelConfig::standard(4.0);
        let multi_cfg = BiLevelConfig::standard(4.0).probe(Probe::Multi(16));
        let home = OocFlatIndex::build(&source, &home_cfg, usize::MAX).unwrap();
        let multi = OocFlatIndex::build(&source, &multi_cfg, usize::MAX).unwrap();
        let ch: usize = queries.iter().map(|q| home.candidates(q).len()).sum();
        let cm: usize = queries.iter().map(|q| multi.candidates(q).len()).sum();
        assert!(cm >= ch);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "hierarchical")]
    fn hierarchical_rejected() {
        let (path, _, _) = on_disk("hier.fvecs", 100);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::standard(4.0).probe(Probe::Hierarchical { min_candidates: 4 });
        let _ = OocFlatIndex::build(&source, &cfg, 50);
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        use crate::config::Quantizer;
        let (path, _, queries) = on_disk("threads.fvecs", 500);
        let source = OocDataset::open(&path).unwrap();
        for quantizer in [Quantizer::Zm, Quantizer::E8] {
            let cfg = BiLevelConfig::paper_default(5.0).quantizer(quantizer);
            let serial = OocFlatIndex::build_with(&source, &cfg, usize::MAX, 1).unwrap();
            for threads in [2, 4, 7] {
                let par = OocFlatIndex::build_with(&source, &cfg, usize::MAX, threads).unwrap();
                assert_eq!(serial.linear, par.linear, "{quantizer:?} at {threads} threads");
                for q in queries.iter() {
                    assert_eq!(serial.candidates(q), par.candidates(q), "{quantizer:?}");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coalesced_batch_matches_per_row_baseline() {
        use crate::config::Quantizer;
        let (path, _, queries) = on_disk("coalesce.fvecs", 500);
        let source = OocDataset::open(&path).unwrap();
        for quantizer in [Quantizer::Zm, Quantizer::E8] {
            let cfg = BiLevelConfig::paper_default(6.0).quantizer(quantizer).probe(Probe::Multi(8));
            let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
            let baseline = ooc.query_batch_per_row(&queries, 10).unwrap();
            for threads in [1, 4] {
                let coalesced = ooc
                    .query_batch_opts(
                        &queries,
                        &QueryOptions::new(10).engine(Engine::PerQuery { threads }),
                    )
                    .unwrap();
                assert_eq!(baseline.len(), coalesced.len());
                for (a, b) in baseline.iter().zip(&coalesced) {
                    let a: Vec<(usize, f32)> = a.iter().map(|n| (n.id, n.dist)).collect();
                    let b: Vec<(usize, f32)> = b.iter().map(|n| (n.id, n.dist)).collect();
                    assert_eq!(a, b, "{quantizer:?} at {threads} threads");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coalesced_runs_span_gaps_correctly() {
        // Force the ranking path over a candidate list with gaps straddling
        // COALESCE_GAP so both the merged-run and run-break branches execute.
        let (path, data, queries) = on_disk("gaps.fvecs", 300);
        let source = OocDataset::open(&path).unwrap();
        let cfg = BiLevelConfig::standard(4.0);
        let ooc = OocFlatIndex::build(&source, &cfg, usize::MAX).unwrap();
        let candidates: Vec<u32> = vec![0, 1, 9, 40, 41, 60, 299];
        let q = queries.row(0);
        let got =
            ooc.rank_coalesced(q, &candidates, 4, &mut Vec::new(), &mut Vec::new(), &NOOP).unwrap();
        let mut want: Vec<(usize, f32)> = candidates
            .iter()
            .map(|&id| (id as usize, squared_l2(q, data.row(id as usize)).sqrt()))
            .collect();
        want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        want.truncate(4);
        let got: Vec<(usize, f32)> = got.iter().map(|n| (n.id, n.dist)).collect();
        for ((gi, gd), (wi, wd)) in got.iter().zip(&want) {
            assert_eq!(gi, wi);
            assert!((gd - wd).abs() < 1e-5);
        }
        std::fs::remove_file(&path).ok();
    }
}
