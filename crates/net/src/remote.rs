//! `RemoteShard` — a [`ShardSource`] whose shards live on other
//! processes, with hedged requests against replica sets.
//!
//! This is the transport half of remote fan-out: the coordinator's
//! existing `FanoutBackend` (circuit breakers, coverage-tagged partial
//! merges) drives a `RemoteShard` exactly as it drives a local
//! `Arc<ShardedIndex>` — per-shard `query_shard_batch_opts` calls that
//! return globally-merged-ready top-k lists. Each call becomes one
//! `SHARDQ` frame against one replica.
//!
//! ## Hedging
//!
//! Every replica holds the *same* fully-built index split the same way,
//! so any replica can answer any shard. The primary for shard `s` is
//! `replicas[s % n]` (spreading load); a per-replica latency EWMA sets a
//! hedge threshold, and when the primary's answer hasn't arrived by then,
//! a backup probe fires at the next replica — first answer wins, the
//! loser finishes in the background onto its pooled connection. A primary
//! *error* fails over to the backup immediately. Only when every probe
//! has failed does the call panic, which is precisely the failure the
//! `FanoutBackend` breaker machinery is built to contain: the shard is
//! skipped, the breaker opens, and the merged answer ships tagged with
//! partial [`Coverage`](knn_serve::Coverage).
//!
//! Because replicas are bit-identical and `SHARDQ` text round-trips `f32`
//! exactly, a hedged answer is the same bytes no matter which replica
//! produced it — hedging changes tail latency, never results.

use crate::client::{ClientError, NetClient, TenantMeta};
use bilevel_lsh::telemetry::{Counter, Recorder};
use bilevel_lsh::{BatchResult, Probe, QueryOptions};
use knn_serve::fanout::ShardSource;
use knn_serve::protocol::{self, format_probe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vecstore::Dataset;

/// When to fire a backup probe.
#[derive(Debug, Clone, Copy)]
pub struct HedgePolicy {
    /// Master switch; disabled means a shard lives and dies with its
    /// primary replica (used to demonstrate coverage degradation).
    pub enabled: bool,
    /// Hedge when the primary exceeds `ewma × multiplier`.
    pub multiplier: f64,
    /// Floor on the hedge threshold (also the threshold while the EWMA is
    /// still cold).
    pub min: Duration,
    /// Ceiling on the hedge threshold.
    pub max: Duration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            multiplier: 3.0,
            min: Duration::from_millis(2),
            max: Duration::from_millis(500),
        }
    }
}

impl HedgePolicy {
    /// No hedging: every shard query rides its primary replica alone.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }

    fn hedge_after(&self, ewma_us: u64) -> Duration {
        let scaled = Duration::from_micros((ewma_us as f64 * self.multiplier) as u64);
        scaled.clamp(self.min, self.max)
    }
}

/// How long a shard query may take end to end (all probes included)
/// before the call gives up and panics into the breaker machinery.
const OVERALL_TIMEOUT: Duration = Duration::from_secs(30);

/// EWMA weight: `new = (old * 4 + sample) / 5`.
fn ewma_update(cell: &AtomicU64, sample_us: u64) {
    let old = cell.load(Ordering::Relaxed);
    let new = if old == 0 { sample_us } else { (old * 4 + sample_us) / 5 };
    cell.store(new, Ordering::Relaxed);
}

/// A client-side shard source over one tenant replicated across several
/// server processes.
pub struct RemoteShard {
    replicas: Vec<Arc<NetClient>>,
    meta: TenantMeta,
    policy: HedgePolicy,
    ewma_us: Vec<AtomicU64>,
    recorder: Arc<dyn Recorder>,
}

impl RemoteShard {
    /// Dials every replica address, pins each connection pool to
    /// `tenant`, and checks the replicas agree on the tenant's shape
    /// (dim, shard count, probe).
    ///
    /// # Errors
    ///
    /// [`ClientError`] if any dial or `USE` handshake fails, or if the
    /// replicas disagree about the tenant.
    pub fn connect(
        addrs: &[String],
        tenant: &str,
        policy: HedgePolicy,
        recorder: Arc<dyn Recorder>,
    ) -> Result<Self, ClientError> {
        if addrs.is_empty() {
            return Err(ClientError::Protocol("RemoteShard needs at least one replica".into()));
        }
        let mut replicas = Vec::with_capacity(addrs.len());
        let mut meta: Option<TenantMeta> = None;
        for addr in addrs {
            let client = NetClient::with_tenant(addr, tenant)?;
            let m = client
                .meta()
                .ok_or_else(|| ClientError::Protocol("USE handshake returned no meta".into()))?;
            match meta {
                None => meta = Some(m),
                Some(prev) if prev != m => {
                    return Err(ClientError::Protocol(format!(
                        "replica {addr} disagrees about tenant {tenant:?}: {m:?} vs {prev:?}"
                    )))
                }
                Some(_) => {}
            }
            replicas.push(Arc::new(client));
        }
        let ewma_us = (0..replicas.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(Self { replicas, meta: meta.expect("at least one replica"), policy, ewma_us, recorder })
    }

    /// The tenant meta every replica agreed on during the handshake. A
    /// coordinator adopts this (notably `k`) so its answers match what
    /// the replicas themselves would serve.
    pub fn tenant_meta(&self) -> &TenantMeta {
        &self.meta
    }

    /// Renders the `SHARDQ` multi-line frame for one shard-batch call.
    fn render_frame(&self, shard: usize, queries: &Dataset, options: &QueryOptions<'_>) -> String {
        let rerank = match options.rerank {
            Some(depth) => depth.to_string(),
            None => "-".to_string(),
        };
        let mut frame = format!(
            "SHARDQ {shard} {} {} {rerank} {}",
            options.k,
            format_probe(options.probe),
            queries.len()
        );
        for q in 0..queries.len() {
            frame.push('\n');
            frame.push_str(&protocol::format_vector(queries.row(q)));
        }
        frame
    }

    /// Fires one probe on a worker thread; the result (with its latency
    /// and replica index) lands on `tx`.
    fn fire(
        &self,
        replica: usize,
        frame: &str,
        queries: usize,
        is_backup: bool,
        tx: &mpsc::Sender<ProbeResult>,
    ) {
        let client = Arc::clone(&self.replicas[replica]);
        let frame = frame.to_string();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            let outcome = client
                .request_ok(&frame)
                .map_err(|e| e.to_string())
                .and_then(|reply| parse_batch(&reply, queries));
            let _ = tx.send(ProbeResult { replica, is_backup, elapsed: start.elapsed(), outcome });
        });
    }
}

struct ProbeResult {
    replica: usize,
    is_backup: bool,
    elapsed: Duration,
    outcome: Result<BatchResult, String>,
}

/// Parses a `SHARDQ` response frame: one shard-reply line per query.
fn parse_batch(reply: &str, queries: usize) -> Result<BatchResult, String> {
    let mut neighbors = Vec::with_capacity(queries);
    let mut candidates = Vec::with_capacity(queries);
    for line in reply.lines() {
        let (c, n) = protocol::parse_shard_reply(line).map_err(|e| e.to_string())?;
        candidates.push(c);
        neighbors.push(n);
    }
    if neighbors.len() != queries {
        return Err(format!("expected {queries} shard replies, got {}", neighbors.len()));
    }
    Ok(BatchResult { neighbors, candidates })
}

impl ShardSource for RemoteShard {
    fn dim(&self) -> usize {
        self.meta.dim
    }

    fn probe(&self) -> Probe {
        self.meta.probe
    }

    fn supports_probe(&self, probe: Probe) -> bool {
        match probe {
            Probe::Hierarchical { .. } => self.meta.hierarchical,
            _ => true,
        }
    }

    fn num_shards(&self) -> usize {
        self.meta.shards
    }

    fn query_shard_batch_opts(
        &self,
        shard: usize,
        queries: &Dataset,
        options: &QueryOptions<'_>,
    ) -> BatchResult {
        let frame = self.render_frame(shard, queries, options);
        let n = self.replicas.len();
        let primary = shard % n;
        let backup = (primary + 1) % n;
        let can_hedge = self.policy.enabled && n > 1;

        let (tx, rx) = mpsc::channel();
        self.fire(primary, &frame, queries.len(), false, &tx);
        let mut outstanding = 1u32;
        let mut backup_fired = false;
        let mut last_error = String::new();
        let deadline = Instant::now() + OVERALL_TIMEOUT;

        loop {
            let wait = if !backup_fired && can_hedge {
                self.policy.hedge_after(self.ewma_us[primary].load(Ordering::Relaxed))
            } else {
                deadline.saturating_duration_since(Instant::now())
            };
            match rx.recv_timeout(wait) {
                Ok(result) => match result.outcome {
                    Ok(batch) => {
                        ewma_update(
                            &self.ewma_us[result.replica],
                            result.elapsed.as_micros() as u64,
                        );
                        if result.is_backup {
                            self.recorder.add(Counter::HedgeWins, 1);
                        }
                        return batch;
                    }
                    Err(e) => {
                        outstanding -= 1;
                        last_error = e;
                        if !backup_fired && can_hedge {
                            // Failover: the primary is dead, not just slow.
                            self.recorder.add(Counter::HedgesFired, 1);
                            self.fire(backup, &frame, queries.len(), true, &tx);
                            backup_fired = true;
                            outstanding += 1;
                        } else if outstanding == 0 {
                            panic!("shard {shard}: every replica probe failed, last: {last_error}");
                        }
                    }
                },
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !backup_fired && can_hedge {
                        // The primary is past its latency threshold —
                        // hedge, then race both probes.
                        self.recorder.add(Counter::HedgesFired, 1);
                        self.fire(backup, &frame, queries.len(), true, &tx);
                        backup_fired = true;
                        outstanding += 1;
                    } else {
                        panic!("shard {shard}: query timed out after {OVERALL_TIMEOUT:?}");
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("shard {shard}: probe threads vanished, last error: {last_error}")
                }
            }
        }
    }
}
