//! The threaded TCP server: framed line protocol, per-connection
//! pipelining, multi-tenant sessions, shard-query serving, and replica
//! `JOIN` streaming.
//!
//! ## Connection anatomy
//!
//! Each accepted socket gets two threads: a *reader* that decodes frames
//! into a bounded channel, and a *session* that executes them. The split
//! is what makes pipelining pay off server-side: while earlier queries sit
//! in the service's micro-batcher as tickets, the session keeps draining
//! newly arrived frames from the channel, so consecutive `QUERY` frames
//! from one client coalesce into the same dispatch batches. Responses are
//! written strictly in request order — one response frame per request
//! frame, always — so a pipelining client can match them up by position.
//!
//! ## Failure semantics
//!
//! A malformed *line* (unknown verb operands, bad floats) is an
//! `ERROR ...` response frame; the session lives on. A malformed *frame*
//! (oversized length prefix, non-UTF-8 payload, mid-frame EOF) poisons
//! the byte stream itself, so the server sends a best-effort `ERROR`
//! frame and closes that one connection; other sessions are untouched.
//! The process never panics on input.

use crate::frame::{read_frame, write_frame, CountingWriter, FrameError};
use crate::registry::{QuotaGuard, Registry, Tenant, TenantKind};
use bilevel_lsh::binio::write_section;
use bilevel_lsh::persist::write_dataset_sections;
use bilevel_lsh::telemetry::{Counter, InMemoryRecorder, Recorder};
use bilevel_lsh::QueryOptions;
use knn_serve::protocol::{self, Request, StatsFormat, WirePrecision};
use knn_serve::{Handle, SubmitError, Ticket};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use vecstore::fault::{FaultKind, FaultPlan};
use vecstore::Dataset;

/// Server-level knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Deterministic per-request fault injection (only the latency class
    /// is applied — the request sleeps `latency_dur` before executing).
    /// Used by tests to make one replica slow and provoke hedging.
    pub fault_plan: Option<FaultPlan>,
}

/// A running TCP server over a [`Registry`]. Dropping it (or calling
/// [`NetServer::shutdown`]) closes the listener, shuts every live
/// connection, and joins all threads.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections against `registry`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the listener cannot bind.
    pub fn bind(
        addr: &str,
        registry: Arc<Registry>,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let events = Arc::new(AtomicU64::new(0));

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let sessions = Arc::clone(&sessions);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nodelay(true);
                            if let Ok(clone) = stream.try_clone() {
                                conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
                            }
                            let session = Session {
                                registry: Arc::clone(&registry),
                                recorder: Arc::clone(registry.recorder()),
                                plan: config.fault_plan.clone(),
                                events: Arc::clone(&events),
                                tenant: registry.sole(),
                                handle: None,
                                pending: VecDeque::new(),
                            };
                            let thread = std::thread::spawn(move || session.run(stream));
                            sessions.lock().unwrap_or_else(|e| e.into_inner()).push(thread);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })
        };
        Ok(NetServer { addr: local, stop, accept: Some(accept), conns, sessions })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs every live connection, and joins all
    /// server threads. In-flight tickets still resolve first — sessions
    /// flush their pending responses before exiting when the client is
    /// still reachable.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for conn in self.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<_> =
            self.sessions.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Why a session ended.
enum SessionEnd {
    /// The peer closed, or the stream broke — just clean up.
    Closed,
    /// The frame layer saw garbage; send this error (best effort), close.
    Poisoned(String),
}

struct Session {
    registry: Arc<Registry>,
    recorder: Arc<InMemoryRecorder>,
    plan: Option<FaultPlan>,
    events: Arc<AtomicU64>,
    tenant: Option<Arc<Tenant>>,
    handle: Option<Handle>,
    pending: VecDeque<(Ticket, QuotaGuard)>,
}

impl Session {
    fn run(mut self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else { return };
        let (tx, rx): (SyncSender<Result<String, FrameError>>, Receiver<_>) = sync_channel(256);
        let recorder = Arc::clone(&self.recorder);
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(read_half);
            loop {
                let frame = read_frame(&mut r, recorder.as_ref(), Counter::NetBytesIn);
                let failed = frame.is_err();
                if tx.send(frame).is_err() || failed {
                    break;
                }
            }
        });

        let mut out = BufWriter::new(stream);
        let end = self.pump(&rx, &mut out);
        // Flush whatever is still in flight so no accepted query is
        // silently dropped, then report the poisoned-stream error if the
        // socket still works.
        let _ = self.flush_pending(&mut out);
        if let SessionEnd::Poisoned(msg) = end {
            let _ = self.reply(&mut out, &format!("ERROR {msg}"));
        }
        let _ = out.flush();
        if let Ok(stream) = out.into_inner() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let _ = reader.join();
    }

    /// The session loop: block for a frame, then opportunistically drain
    /// everything else already buffered (this is where pipelined queries
    /// coalesce), then flush responses in order.
    fn pump<W: Write>(
        &mut self,
        rx: &Receiver<Result<String, FrameError>>,
        out: &mut W,
    ) -> SessionEnd {
        loop {
            let first = match rx.recv() {
                Ok(f) => f,
                Err(_) => return SessionEnd::Closed,
            };
            if let Some(end) = self.step(first, out) {
                return end;
            }
            loop {
                match rx.try_recv() {
                    Ok(frame) => {
                        if let Some(end) = self.step(frame, out) {
                            return end;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        if self.flush_pending(out).is_err() {
                            return SessionEnd::Closed;
                        }
                        return SessionEnd::Closed;
                    }
                }
            }
            if self.flush_pending(out).is_err() || out.flush().is_err() {
                return SessionEnd::Closed;
            }
        }
    }

    /// Handles one frame; `Some(end)` terminates the session.
    fn step<W: Write>(
        &mut self,
        frame: Result<String, FrameError>,
        out: &mut W,
    ) -> Option<SessionEnd> {
        let payload = match frame {
            Ok(p) => p,
            Err(FrameError::Closed) => return Some(SessionEnd::Closed),
            Err(e @ (FrameError::Truncated | FrameError::TooLarge(_) | FrameError::BadUtf8)) => {
                return Some(SessionEnd::Poisoned(e.to_string()))
            }
            Err(FrameError::Io(e)) => return Some(SessionEnd::Poisoned(e.to_string())),
        };
        self.recorder.add(Counter::NetRequests, 1);
        match self.handle_payload(&payload, out) {
            Ok(()) => None,
            Err(_) => Some(SessionEnd::Closed),
        }
    }

    /// Sleeps if the injection plan fires the latency class for this
    /// request — deterministic per (seed, event) like every other fault
    /// in the repo.
    fn maybe_inject_latency(&self) {
        if let Some(plan) = &self.plan {
            let event = self.events.fetch_add(1, Ordering::SeqCst);
            if plan.decide(event, 0) == Some(FaultKind::Latency) {
                std::thread::sleep(plan.latency_dur);
            }
        }
    }

    fn handle_payload<W: Write>(&mut self, payload: &str, out: &mut W) -> io::Result<()> {
        let (first_line, rest) = match payload.split_once('\n') {
            Some((first, rest)) => (first, Some(rest)),
            None => (payload, None),
        };
        let request = match protocol::parse_request(first_line) {
            Ok(r) => r,
            Err(e) => {
                self.flush_pending(out)?;
                return self.reply(out, &format!("ERROR {e}"));
            }
        };
        // Only SHARDQ is a multi-line frame.
        if rest.is_some() && !matches!(request, Request::ShardQuery { .. }) {
            self.flush_pending(out)?;
            return self.reply(out, "ERROR only SHARDQ frames may span multiple lines");
        }
        match request {
            Request::Query { vector, metric } => self.handle_query(vector, metric, out),
            Request::ShardQuery { .. } => self.handle_shardq(request, rest.unwrap_or(""), out),
            Request::Config => {
                let Some(tenant) = self.need_tenant(out)? else { return Ok(()) };
                self.flush_pending(out)?;
                self.reply(out, &tenant.config_line())
            }
            Request::Use { tenant } => {
                self.flush_pending(out)?;
                match self.registry.get(&tenant) {
                    Some(t) => {
                        let line = t.describe();
                        self.tenant = Some(t);
                        self.handle = None;
                        self.reply(out, &line)
                    }
                    None => self.reply(out, &format!("ERROR unknown tenant {tenant:?}")),
                }
            }
            Request::List => {
                self.flush_pending(out)?;
                // Each tenant is tagged with its metric so a client can
                // pick a compatible index before the USE handshake.
                let entries: Vec<String> = self
                    .registry
                    .names()
                    .into_iter()
                    .map(|name| match self.registry.get(&name) {
                        Some(t) => {
                            format!("{name}:{}", protocol::format_metric(t.metric()))
                        }
                        None => name,
                    })
                    .collect();
                self.reply(out, &format!("TENANTS {}", entries.join(" ")))
            }
            Request::Join { tenant } => self.handle_join(&tenant, out),
            Request::Stats(format) => {
                self.flush_pending(out)?;
                let snapshot = self.recorder.snapshot();
                let text = match format {
                    StatsFormat::Prometheus => snapshot.to_prometheus(),
                    StatsFormat::Json => snapshot.to_json(),
                    StatsFormat::Table => snapshot.render_table(),
                };
                self.reply(out, &text)
            }
            write_request @ (Request::Upsert { .. }
            | Request::Delete { .. }
            | Request::Commit
            | Request::Compact) => self.handle_write(write_request, out),
        }
    }

    /// The session's current tenant, or `None` after replying an error.
    fn need_tenant<W: Write>(&mut self, out: &mut W) -> io::Result<Option<Arc<Tenant>>> {
        match &self.tenant {
            Some(t) => Ok(Some(Arc::clone(t))),
            None => {
                self.flush_pending(out)?;
                self.reply(out, "ERROR no tenant selected: USE <name> (see LIST)")?;
                Ok(None)
            }
        }
    }

    fn handle_query<W: Write>(
        &mut self,
        vector: Vec<f32>,
        metric: Option<bilevel_lsh::MetricKind>,
        out: &mut W,
    ) -> io::Result<()> {
        let Some(tenant) = self.need_tenant(out)? else { return Ok(()) };
        // A stated metric must match the tenant's: answering a cosine
        // query with l2 distances would be silently wrong, so the
        // mismatch is a typed protocol error instead.
        if let Some(got) = metric.filter(|&got| got != tenant.metric()) {
            self.flush_pending(out)?;
            let e = protocol::ProtocolError::MetricMismatch {
                expected: protocol::format_metric(tenant.metric()),
                got: protocol::format_metric(got),
            };
            return self.reply(out, &format!("ERROR {e}"));
        }
        let guard = match tenant.try_admit(self.recorder.as_ref()) {
            Ok(g) => g,
            Err(e) => {
                self.flush_pending(out)?;
                return self.reply(out, &format!("ERROR {e}"));
            }
        };
        self.maybe_inject_latency();
        // A mutable tenant commits staged writes before the query runs, so
        // a query observes exactly the write frames before it. In-flight
        // responses flush first — a commit can't overtake queued queries.
        if let TenantKind::Mutable { writer } = tenant.kind() {
            let staged = writer.lock().unwrap_or_else(|e| e.into_inner()).pending() > 0;
            if staged {
                self.flush_pending(out)?;
                let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                if let Err(e) = w.commit(self.recorder.as_ref()) {
                    return self.reply(out, &format!("ERROR commit failed: {e}"));
                }
            }
        }
        if self.handle.is_none() {
            self.handle = Some(tenant.handle());
        }
        let handle = self.handle.as_ref().expect("handle just set").clone();
        let k = tenant.k();
        let ticket = loop {
            match handle.submit(&vector, k, None) {
                Ok(t) => break t,
                Err(SubmitError::Overloaded) => {
                    // The service queue is full: resolve the oldest
                    // in-flight response to make room (per-connection
                    // backpressure), or briefly yield.
                    match self.pending.pop_front() {
                        Some((oldest, slot)) => {
                            self.write_ticket(oldest, out)?;
                            drop(slot);
                        }
                        None => std::thread::sleep(Duration::from_micros(50)),
                    }
                }
                Err(e) => {
                    self.flush_pending(out)?;
                    return self.reply(out, &format!("ERROR {e}"));
                }
            }
        };
        self.pending.push_back((ticket, guard));
        Ok(())
    }

    fn handle_shardq<W: Write>(
        &mut self,
        request: Request,
        body: &str,
        out: &mut W,
    ) -> io::Result<()> {
        let Request::ShardQuery { shard, k, probe, rerank, queries } = request else {
            unreachable!("caller routes only SHARDQ frames here");
        };
        let Some(tenant) = self.need_tenant(out)? else { return Ok(()) };
        // SHARDQ responses interleave with query responses in frame
        // order, so everything in flight flushes first.
        self.flush_pending(out)?;
        let TenantKind::Replica { index, .. } = tenant.kind() else {
            return self.reply(out, "ERROR SHARDQ requires a replica tenant");
        };
        let guard = match tenant.try_admit(self.recorder.as_ref()) {
            Ok(g) => g,
            Err(e) => return self.reply(out, &format!("ERROR {e}")),
        };
        if shard >= index.num_shards() {
            return self.reply(
                out,
                &format!("ERROR shard {shard} out of range (0..{})", index.num_shards()),
            );
        }
        let mut batch = Dataset::with_capacity(tenant.dim(), queries);
        for line in body.lines() {
            let v = match protocol::parse_vector(line) {
                Ok(v) => v,
                Err(e) => return self.reply(out, &format!("ERROR {e}")),
            };
            if v.len() != tenant.dim() {
                return self.reply(
                    out,
                    &format!("ERROR dim mismatch: expected {}, got {}", tenant.dim(), v.len()),
                );
            }
            batch.push(&v);
        }
        if batch.len() != queries {
            return self.reply(
                out,
                &format!("ERROR SHARDQ declared {queries} queries, frame holds {}", batch.len()),
            );
        }
        self.maybe_inject_latency();
        let mut options = QueryOptions::new(k);
        options.probe = probe;
        options.rerank = rerank;
        let result = index.query_shard_batch_opts(shard, &batch, &options);
        drop(guard);
        let mut frame = String::new();
        for (i, (neighbors, candidates)) in
            result.neighbors.iter().zip(&result.candidates).enumerate()
        {
            if i > 0 {
                frame.push('\n');
            }
            frame.push_str(&protocol::render_shard_reply(*candidates, neighbors));
        }
        self.reply(out, &frame)
    }

    fn handle_join<W: Write>(&mut self, tenant_name: &str, out: &mut W) -> io::Result<()> {
        self.flush_pending(out)?;
        let Some(tenant) = self.registry.get(tenant_name) else {
            return self.reply(out, &format!("ERROR unknown tenant {tenant_name:?}"));
        };
        let TenantKind::Replica { index, snapshot } = tenant.kind() else {
            return self.reply(out, "ERROR JOIN requires a replica tenant");
        };
        let (index, snapshot) = (Arc::clone(index), Arc::clone(snapshot));
        self.reply(
            out,
            &format!(
                "OK shards={} dim={} rows={} k={}",
                index.num_shards(),
                index.data().dim(),
                index.data().len(),
                tenant.k()
            ),
        )?;
        // After the OK frame, raw checksummed sections stream on the
        // socket: the corpus in chunks, then the snapshot as one section.
        let mut counted =
            CountingWriter::new(&mut *out, self.recorder.as_ref(), Counter::NetBytesOut);
        write_dataset_sections(&mut counted, index.data())
            .map_err(|e| io::Error::other(e.to_string()))?;
        write_section(&mut counted, &snapshot).map_err(|e| io::Error::other(e.to_string()))?;
        out.flush()?;
        self.recorder.add(Counter::ReplicaJoins, 1);
        Ok(())
    }

    fn handle_write<W: Write>(&mut self, request: Request, out: &mut W) -> io::Result<()> {
        let Some(tenant) = self.need_tenant(out)? else { return Ok(()) };
        // One response frame per request frame, in order: writes flush
        // in-flight query responses before answering.
        self.flush_pending(out)?;
        let TenantKind::Mutable { writer } = tenant.kind() else {
            return self.reply(out, "ERROR writes require a mutable tenant");
        };
        let mut writer = writer.lock().unwrap_or_else(|e| e.into_inner());
        let reply = match request {
            Request::Upsert { id: None, vector } => match writer.stage_insert(&vector) {
                Ok(()) => format!("STAGED {}", writer.pending()),
                Err(e) => format!("ERROR {e}"),
            },
            Request::Upsert { id: Some(id), vector } => match writer.stage_update(id, &vector) {
                Ok(()) => format!("STAGED {}", writer.pending()),
                Err(e) => format!("ERROR {e}"),
            },
            Request::Delete { id } => {
                writer.stage_delete(id);
                format!("STAGED {}", writer.pending())
            }
            Request::Commit => match writer.commit(self.recorder.as_ref()) {
                Ok(Some(s)) => format!(
                    "COMMITTED inserted={} updated={} deleted={} epoch={}",
                    s.inserted, s.updated, s.deleted, s.epoch
                ),
                Ok(None) => format!("COMMITTED nothing epoch={}", writer.epoch()),
                Err(e) => format!("ERROR {e}"),
            },
            Request::Compact => match writer.commit(self.recorder.as_ref()) {
                Err(e) => format!("ERROR {e}"),
                Ok(_) if writer.live_len() == 0 => {
                    "ERROR cannot compact a fully deleted index".to_string()
                }
                Ok(_) => {
                    let survivors = writer.compact(self.recorder.as_ref());
                    format!("COMPACTED live={} epoch={}", survivors.len(), writer.epoch())
                }
            },
            other => unreachable!("non-write request routed to handle_write: {other:?}"),
        };
        drop(writer);
        self.reply(out, &reply)
    }

    /// Resolves every pending ticket into a response frame, in order.
    fn flush_pending<W: Write>(&mut self, out: &mut W) -> io::Result<()> {
        while let Some((ticket, guard)) = self.pending.pop_front() {
            self.write_ticket(ticket, out)?;
            drop(guard);
        }
        Ok(())
    }

    fn write_ticket<W: Write>(&self, ticket: Ticket, out: &mut W) -> io::Result<()> {
        let frame = match ticket.wait() {
            Ok(resp) => {
                protocol::render_response(&resp.neighbors, resp.coverage, WirePrecision::Exact)
            }
            Err(e) => format!("ERROR {e}"),
        };
        self.reply(out, &frame)
    }

    fn reply<W: Write>(&self, out: &mut W, frame: &str) -> io::Result<()> {
        write_frame(out, frame, self.recorder.as_ref(), Counter::NetBytesOut)
            .map_err(|e| io::Error::other(e.to_string()))
    }
}
