#![warn(missing_docs)]

//! TCP front end for the Bi-level LSH service.
//!
//! The serving crate (`knn-serve`) speaks a line protocol on stdin; this
//! crate puts the same protocol on sockets and grows it into a small
//! distributed system, all on plain `std` threads:
//!
//! * **Framing** ([`frame`]) — each line travels as a length-delimited
//!   UTF-8 frame, so clients can pipeline requests and the server can
//!   reject oversized or truncated input with typed errors.
//! * **Multi-tenancy** ([`registry`]) — one process serves several named
//!   indexes; sessions bind with `USE <tenant>`, and each tenant carries
//!   an admission quota that rejects excess load with the service layer's
//!   own `Overloaded` error.
//! * **Serving** ([`server`]) — a threaded TCP server; pipelined `QUERY`
//!   frames coalesce into the service's micro-batches, responses return
//!   strictly in request order.
//! * **Client** ([`client`]) — connection pooling, request pipelining,
//!   and the `JOIN` download path.
//! * **Remote fan-out** ([`remote`]) — [`RemoteShard`] implements the
//!   serving crate's `ShardSource` over the wire, so a coordinator's
//!   `FanoutBackend` (circuit breakers, coverage-tagged partials) drives
//!   remote replicas exactly as it drives local shards, with hedged
//!   requests against slow replicas.
//! * **Replica join** — a fresh process streams a peer's corpus and
//!   snapshot over one socket (every section checksummed) and boots warm,
//!   never touching shared disk.
//!
//! Distances travel as shortest-round-trip `f32` text, so a remote
//! fan-out merge is bit-identical to the same merge done locally.

pub mod client;
pub mod frame;
pub mod registry;
pub mod remote;
pub mod server;

pub use client::{ClientError, JoinedReplica, NetClient, TenantMeta};
pub use frame::{FrameError, MAX_FRAME};
pub use registry::{Registry, RegistryError, Tenant, TenantConfig, TenantKind};
pub use remote::{HedgePolicy, RemoteShard};
pub use server::{NetServer, ServerConfig};
