//! `NetClient` — a pooled, pipelining client for the framed line protocol.
//!
//! Each client targets one server address and (optionally) pins every
//! connection it opens to a tenant with a `USE` handshake at dial time.
//! Connections live in a small pool: [`NetClient::request`] checks one
//! out per call, so concurrent callers (the hedging layer fires probes
//! from multiple threads) each get their own socket without locking each
//! other out. [`NetClient::pipeline`] is the throughput path — it writes
//! every request frame back to back, flushes once, then reads the
//! responses, amortizing syscalls and round trips across the batch.

use crate::frame::{read_frame, write_frame, FrameError};
use bilevel_lsh::binio::read_section;
use bilevel_lsh::persist::read_dataset_sections;
use bilevel_lsh::telemetry::{Counter, NOOP};
use bilevel_lsh::{FamilyKind, MetricKind, PersistError, Probe};
use knn_serve::protocol::{self, ProtocolError};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Mutex;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or socket-level I/O failed.
    Io(io::Error),
    /// The frame layer rejected or lost a frame.
    Frame(FrameError),
    /// The server answered `ERROR ...`.
    Server(String),
    /// The server's reply didn't parse as the expected shape.
    Protocol(String),
    /// A streamed snapshot section failed its checksum or shape checks.
    Persist(PersistError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Persist(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<PersistError> for ClientError {
    fn from(e: PersistError) -> Self {
        ClientError::Persist(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// What a tenant reports about itself in the `USE` handshake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantMeta {
    /// Vector dimensionality.
    pub dim: usize,
    /// Shard count of the tenant's index.
    pub shards: usize,
    /// The probe the index was built with.
    pub probe: Probe,
    /// Whether hierarchical probing is available.
    pub hierarchical: bool,
    /// The metric the tenant ranks distances under.
    pub metric: MetricKind,
    /// The level-2 hash family the tenant's index was built with.
    pub family: FamilyKind,
    /// The tenant's default `k`.
    pub k: usize,
}

/// Parses the `OK tenant=... dim=... shards=... probe=... hier=...
/// metric=... family=... k=...` reply of `USE`. The geometry tokens
/// default to l2/p-stable when absent, so a client can still talk to
/// servers that predate metric metadata.
fn parse_meta(reply: &str) -> Result<TenantMeta, ClientError> {
    let bad = || ClientError::Protocol(format!("malformed USE reply: {reply:?}"));
    if !reply.starts_with("OK ") {
        return Err(ClientError::Server(reply.to_string()));
    }
    let mut dim = None;
    let mut shards = None;
    let mut probe = None;
    let mut hier = None;
    let mut metric = None;
    let mut family = None;
    let mut k = None;
    for token in reply.split_whitespace().skip(1) {
        let (key, value) = token.split_once('=').ok_or_else(bad)?;
        match key {
            "dim" => dim = Some(value.parse::<usize>().map_err(|_| bad())?),
            "shards" => shards = Some(value.parse::<usize>().map_err(|_| bad())?),
            "probe" => {
                probe = Some(protocol::parse_probe(value).map_err(|_| bad())?.ok_or_else(bad)?)
            }
            "hier" => hier = Some(value == "1"),
            "metric" => metric = Some(protocol::parse_metric(value).map_err(|_| bad())?),
            "family" => family = Some(protocol::parse_family(value).map_err(|_| bad())?),
            "k" => k = Some(value.parse::<usize>().map_err(|_| bad())?),
            _ => {}
        }
    }
    Ok(TenantMeta {
        dim: dim.ok_or_else(bad)?,
        shards: shards.ok_or_else(bad)?,
        probe: probe.ok_or_else(bad)?,
        hierarchical: hier.ok_or_else(bad)?,
        metric: metric.unwrap_or(MetricKind::L2),
        family: family.unwrap_or(FamilyKind::PStable),
        k: k.ok_or_else(bad)?,
    })
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A replica's state downloaded through [`NetClient::join_fetch`]: enough
/// to boot a warm copy without touching shared disk.
pub struct JoinedReplica {
    /// The full corpus, streamed as checksummed chunk sections.
    pub data: Dataset,
    /// The serving index's v2 snapshot, verbatim.
    pub snapshot: Vec<u8>,
    /// How many shards the peer splits the index into.
    pub shards: usize,
    /// The neighbors-per-query the peer serves the tenant with; a joiner
    /// adopts it so coordinators see consistent tenant meta.
    pub k: usize,
}

use vecstore::Dataset;

/// A pooled client for one server address, optionally pinned to a tenant.
pub struct NetClient {
    addr: String,
    tenant: Option<String>,
    pool: Mutex<Vec<Conn>>,
    meta: Mutex<Option<TenantMeta>>,
}

impl NetClient {
    /// Connects to `addr` with no tenant pinned — the server auto-binds
    /// the session when it hosts exactly one tenant. Dials eagerly so a
    /// bad address fails here, not on first use.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the dial fails.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let client = Self {
            addr: addr.to_string(),
            tenant: None,
            pool: Mutex::new(Vec::new()),
            meta: Mutex::new(None),
        };
        let conn = client.dial()?;
        client.put_back(conn);
        Ok(client)
    }

    /// Connects to `addr` and pins every connection to `tenant` via a
    /// `USE` handshake, capturing the tenant's [`TenantMeta`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on dial failure, [`ClientError::Server`] if the
    /// tenant is unknown.
    pub fn with_tenant(addr: &str, tenant: &str) -> Result<Self, ClientError> {
        let client = Self {
            addr: addr.to_string(),
            tenant: Some(tenant.to_string()),
            pool: Mutex::new(Vec::new()),
            meta: Mutex::new(None),
        };
        let conn = client.dial()?;
        client.put_back(conn);
        Ok(client)
    }

    /// The tenant meta captured at the `USE` handshake; `None` when no
    /// tenant is pinned.
    pub fn meta(&self) -> Option<TenantMeta> {
        *self.meta.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn dial(&self) -> Result<Conn, ClientError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut conn = Conn { reader, writer };
        if let Some(tenant) = &self.tenant {
            let reply = Self::exchange(&mut conn, &format!("USE {tenant}"))?;
            let meta = parse_meta(&reply)?;
            let mut slot = self.meta.lock().unwrap_or_else(|e| e.into_inner());
            *slot = Some(meta);
        }
        Ok(conn)
    }

    fn exchange(conn: &mut Conn, line: &str) -> Result<String, ClientError> {
        write_frame(&mut conn.writer, line, &NOOP, Counter::NetBytesOut)?;
        conn.writer.flush()?;
        Ok(read_frame(&mut conn.reader, &NOOP, Counter::NetBytesIn)?)
    }

    fn checkout(&self) -> Result<Conn, ClientError> {
        let pooled = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match pooled {
            Some(conn) => Ok(conn),
            None => self.dial(),
        }
    }

    fn put_back(&self, conn: Conn) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).push(conn);
    }

    /// One request, one response (a full round trip). The raw reply is
    /// returned even when it is an `ERROR ...` line — callers that want an
    /// error instead use [`NetClient::request_ok`].
    ///
    /// # Errors
    ///
    /// Transport failures only; the connection is discarded on error (the
    /// next call dials fresh).
    pub fn request(&self, line: &str) -> Result<String, ClientError> {
        let mut conn = self.checkout()?;
        match Self::exchange(&mut conn, line) {
            Ok(reply) => {
                self.put_back(conn);
                Ok(reply)
            }
            Err(e) => Err(e),
        }
    }

    /// Like [`NetClient::request`], but an `ERROR ...` reply becomes
    /// [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's error message.
    pub fn request_ok(&self, line: &str) -> Result<String, ClientError> {
        let reply = self.request(line)?;
        if reply.starts_with("ERROR") {
            return Err(ClientError::Server(reply));
        }
        Ok(reply)
    }

    /// Pipelines `lines` over one connection: every request frame is
    /// written before any response is read, with a single flush — the
    /// round trip and the syscalls amortize across the whole batch.
    /// Responses come back in request order.
    ///
    /// # Errors
    ///
    /// Transport failures only; per-request `ERROR ...` replies appear in
    /// the returned vector like any other response.
    pub fn pipeline<S: AsRef<str>>(&self, lines: &[S]) -> Result<Vec<String>, ClientError> {
        let mut conn = self.checkout()?;
        let run = |conn: &mut Conn| -> Result<Vec<String>, ClientError> {
            for line in lines {
                write_frame(&mut conn.writer, line.as_ref(), &NOOP, Counter::NetBytesOut)?;
            }
            conn.writer.flush()?;
            let mut replies = Vec::with_capacity(lines.len());
            for _ in lines {
                replies.push(read_frame(&mut conn.reader, &NOOP, Counter::NetBytesIn)?);
            }
            Ok(replies)
        };
        match run(&mut conn) {
            Ok(replies) => {
                self.put_back(conn);
                Ok(replies)
            }
            Err(e) => Err(e),
        }
    }

    /// Downloads `tenant`'s full state over the wire: the `JOIN`
    /// handshake, then the corpus as checksummed chunk sections, then the
    /// index snapshot — nothing touches shared disk. Feed the result to
    /// `Registry::register_joined` to boot a warm replica.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the tenant is unknown or not a replica;
    /// [`ClientError::Persist`] on checksum or shape mismatch in the
    /// stream.
    pub fn join_fetch(&self, tenant: &str) -> Result<JoinedReplica, ClientError> {
        // A dedicated connection: the raw section stream leaves the frame
        // layer, so don't share a pooled socket mid-download.
        let mut conn = self.dial()?;
        let reply = Self::exchange(&mut conn, &format!("JOIN {tenant}"))?;
        if !reply.starts_with("OK ") {
            return Err(ClientError::Server(reply));
        }
        let field = |key: &str| {
            reply
                .split_whitespace()
                .find_map(|t| t.strip_prefix(key))
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| ClientError::Protocol(format!("malformed JOIN reply: {reply:?}")))
        };
        let shards = field("shards=")?;
        let k = field("k=")?;
        let data = read_dataset_sections(&mut conn.reader)?;
        let snapshot = read_section(&mut conn.reader, "replica snapshot")?;
        Ok(JoinedReplica { data, snapshot, shards, k })
    }
}
