//! The multi-index registry: several named datasets served by one
//! process, each behind its own [`Service`] with a per-tenant admission
//! quota.
//!
//! A *tenant* is one named index plus the machinery to serve it: a
//! micro-batching [`Service`], a cloneable [`Handle`] sessions submit
//! through, and — depending on the kind — either a write path
//! ([`TenantKind::Mutable`]), a shard-query + snapshot-streaming path for
//! remote fan-out and replica join ([`TenantKind::Replica`]), or a remote
//! fan-out coordinator ([`TenantKind::Coordinator`]).
//!
//! Quotas reuse the service layer's vocabulary: exceeding a tenant's
//! in-flight budget is [`SubmitError::Overloaded`], exactly what a full
//! admission queue reports, so clients handle both identically.

use crate::remote::RemoteShard;
use bilevel_lsh::telemetry::{Counter, InMemoryRecorder, Recorder};
use bilevel_lsh::{
    BiLevelConfig, BiLevelIndex, FamilyKind, MetricKind, PersistError, Probe, ShardedIndex,
};
use knn_serve::fanout::ShardSource;
use knn_serve::protocol::{format_family, format_metric, format_probe, valid_tenant_name};
use knn_serve::{
    FanoutBackend, FanoutConfig, Handle, MutableBackend, MutableWriter, Service, ServiceConfig,
    SubmitError,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use vecstore::Dataset;

/// Why a tenant could not be registered.
#[derive(Debug)]
pub enum RegistryError {
    /// A tenant with this name already exists.
    DuplicateTenant(String),
    /// The name has characters outside `[A-Za-z0-9_.-]`.
    BadName(String),
    /// Snapshot serialization or deserialization failed.
    Persist(PersistError),
    /// The tenant's service refused to hand out a submission handle.
    Service(SubmitError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateTenant(n) => write!(f, "tenant {n:?} already registered"),
            RegistryError::BadName(n) => write!(f, "bad tenant name {n:?}"),
            RegistryError::Persist(e) => write!(f, "snapshot error: {e}"),
            RegistryError::Service(e) => write!(f, "service error: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<PersistError> for RegistryError {
    fn from(e: PersistError) -> Self {
        RegistryError::Persist(e)
    }
}

/// Per-tenant serving knobs.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Service tuning (batching, queue depth). The registry overrides the
    /// recorder with its own shared one.
    pub service: ServiceConfig,
    /// Default `k` for queries on this tenant.
    pub k: usize,
    /// Admission quota: maximum concurrently in-flight requests across
    /// every session using this tenant. `usize::MAX` disables the quota.
    pub max_in_flight: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self { service: ServiceConfig::default(), k: 10, max_in_flight: usize::MAX }
    }
}

impl TenantConfig {
    /// Override the service tuning.
    pub fn service(mut self, service: ServiceConfig) -> Self {
        self.service = service;
        self
    }

    /// Default neighbors per query.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Admission quota (see [`TenantConfig::max_in_flight`]).
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n;
        self
    }
}

/// What a tenant can do beyond answering queries.
pub enum TenantKind {
    /// An unsharded index with the tombstone write path.
    Mutable {
        /// The staged-write handle, serialized across sessions.
        writer: Mutex<MutableWriter>,
    },
    /// A sharded read replica: serves `SHARDQ` shard probes for remote
    /// fan-out and streams its snapshot to `JOIN`ing peers.
    Replica {
        /// The split index, shared with the tenant's service.
        index: Arc<ShardedIndex>,
        /// The full (unsplit) v2 snapshot, retained so this replica can
        /// seed further joins without rebuilding or touching disk.
        snapshot: Arc<Vec<u8>>,
    },
    /// A coordinator fanning queries out to remote replicas.
    Coordinator,
}

/// One registered index and its serving machinery.
pub struct Tenant {
    // Field order is load-bearing: `handle` must drop before `service`,
    // because `Service`'s drop joins the dispatcher, which only exits
    // once every `Handle` clone is gone.
    handle: Handle,
    service: Service,
    name: String,
    kind: TenantKind,
    dim: usize,
    shards: usize,
    probe: Probe,
    hierarchical: bool,
    metric: MetricKind,
    family: FamilyKind,
    k: usize,
    in_flight: AtomicUsize,
    max_in_flight: usize,
}

impl Tenant {
    /// The tenant's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What this tenant can do beyond queries.
    pub fn kind(&self) -> &TenantKind {
        &self.kind
    }

    /// A fresh submission handle onto the tenant's service.
    pub fn handle(&self) -> Handle {
        self.handle.clone()
    }

    /// The tenant's service (for stats).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Default neighbors per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The metric the tenant's index ranks distances under. Sessions
    /// reject queries that state a different metric.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The level-2 hash family the tenant's index was built with.
    pub fn family(&self) -> FamilyKind {
        self.family
    }

    /// The `OK ...` line `USE` answers with: everything a remote client
    /// needs to mirror this tenant's query semantics, including the
    /// geometry (`metric=`/`family=`) its distances are ranked under.
    pub fn describe(&self) -> String {
        format!(
            "OK tenant={} dim={} shards={} probe={} hier={} metric={} family={} k={}",
            self.name,
            self.dim,
            self.shards,
            format_probe(Some(self.probe)),
            u8::from(self.hierarchical),
            format_metric(self.metric),
            format_family(self.family),
            self.k
        )
    }

    /// The `CONFIG ...` line the `CONFIG` verb answers with: the same
    /// geometry as [`Tenant::describe`], keyed for config inspection.
    pub fn config_line(&self) -> String {
        format!(
            "CONFIG tenant={} metric={} family={} probe={} dim={} shards={} k={}",
            self.name,
            format_metric(self.metric),
            format_family(self.family),
            format_probe(Some(self.probe)),
            self.dim,
            self.shards,
            self.k
        )
    }

    /// Admits one request against the tenant's quota. The returned guard
    /// holds the slot until dropped (when the response is written).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the quota is exhausted — the same
    /// error a full service queue reports, counted as a tenant rejection.
    pub fn try_admit(self: &Arc<Self>, rec: &dyn Recorder) -> Result<QuotaGuard, SubmitError> {
        let admitted = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur < self.max_in_flight).then_some(cur + 1)
            })
            .is_ok();
        if !admitted {
            rec.add(Counter::TenantRejections, 1);
            return Err(SubmitError::Overloaded);
        }
        Ok(QuotaGuard(Arc::clone(self)))
    }
}

/// An admitted quota slot; dropping it frees the slot.
pub struct QuotaGuard(Arc<Tenant>);

impl Drop for QuotaGuard {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A process-wide map of named tenants sharing one telemetry recorder.
pub struct Registry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    recorder: Arc<InMemoryRecorder>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with a fresh in-memory recorder.
    pub fn new() -> Self {
        Self::with_recorder(Arc::new(InMemoryRecorder::new()))
    }

    /// An empty registry reporting into `recorder`.
    pub fn with_recorder(recorder: Arc<InMemoryRecorder>) -> Self {
        Self { tenants: RwLock::new(BTreeMap::new()), recorder }
    }

    /// The shared recorder every tenant's service reports into.
    pub fn recorder(&self) -> &Arc<InMemoryRecorder> {
        &self.recorder
    }

    fn insert(&self, name: &str, tenant: Tenant) -> Result<Arc<Tenant>, RegistryError> {
        let tenant = Arc::new(tenant);
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(RegistryError::DuplicateTenant(name.to_string()));
        }
        map.insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    fn check_name(&self, name: &str) -> Result<(), RegistryError> {
        if !valid_tenant_name(name) {
            return Err(RegistryError::BadName(name.to_string()));
        }
        Ok(())
    }

    /// Builds and registers a sharded read replica over `data`. Retains
    /// the full snapshot so `JOIN`ing peers can boot from this process.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] on a bad or duplicate name, or if snapshot
    /// serialization fails.
    pub fn register_replica(
        &self,
        name: &str,
        data: Dataset,
        config: &BiLevelConfig,
        shards: usize,
        tenant_config: TenantConfig,
    ) -> Result<Arc<Tenant>, RegistryError> {
        self.check_name(name)?;
        let full = BiLevelIndex::build_owned(data, config);
        let mut snapshot = Vec::new();
        full.save_to(&mut snapshot)?;
        self.register_split(name, full, snapshot, shards, tenant_config)
    }

    /// Registers a replica reconstructed from a `JOIN` download: the
    /// peer's dataset plus its snapshot bytes. The snapshot is retained
    /// verbatim, so this replica can seed further joins.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Persist`] if the snapshot does not match the
    /// dataset (fingerprint or checksum mismatch), plus the usual name
    /// errors.
    pub fn register_joined(
        &self,
        name: &str,
        data: Dataset,
        snapshot: Vec<u8>,
        shards: usize,
        tenant_config: TenantConfig,
    ) -> Result<Arc<Tenant>, RegistryError> {
        self.check_name(name)?;
        let full = BiLevelIndex::load_from_owned(data, snapshot.as_slice())?;
        self.register_split(name, full, snapshot, shards, tenant_config)
    }

    fn register_split(
        &self,
        name: &str,
        full: BiLevelIndex<'static>,
        snapshot: Vec<u8>,
        shards: usize,
        tenant_config: TenantConfig,
    ) -> Result<Arc<Tenant>, RegistryError> {
        let (probe, metric, family) =
            (full.config().probe, full.config().metric, full.config().family);
        let index = Arc::new(ShardedIndex::from_built(full, shards));
        let service = Service::start(
            Arc::clone(&index),
            tenant_config.service.clone().recorder(self.recorder.clone()),
        );
        let handle = service.handle().map_err(RegistryError::Service)?;
        self.insert(
            name,
            Tenant {
                handle,
                service,
                name: name.to_string(),
                dim: index.data().dim(),
                shards: index.num_shards(),
                probe,
                hierarchical: ShardedIndex::supports_probe(
                    &index,
                    Probe::Hierarchical { min_candidates: 1 },
                ),
                metric,
                family,
                kind: TenantKind::Replica { index, snapshot: Arc::new(snapshot) },
                k: tenant_config.k,
                in_flight: AtomicUsize::new(0),
                max_in_flight: tenant_config.max_in_flight,
            },
        )
    }

    /// Builds and registers an unsharded mutable tenant over `data`, with
    /// the full `UPSERT`/`DELETE`/`COMMIT`/`COMPACT` write path.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] on a bad or duplicate name.
    pub fn register_mutable(
        &self,
        name: &str,
        data: Dataset,
        config: &BiLevelConfig,
        tenant_config: TenantConfig,
    ) -> Result<Arc<Tenant>, RegistryError> {
        self.check_name(name)?;
        let index = BiLevelIndex::build_owned(data, config);
        let probe = index.config().probe;
        let (metric, family) = (index.config().metric, index.config().family);
        let dim = index.data().dim();
        let hierarchical = index.supports_probe(Probe::Hierarchical { min_candidates: 1 });
        let backend = MutableBackend::new(index);
        let writer = backend.writer();
        let service =
            Service::start(backend, tenant_config.service.clone().recorder(self.recorder.clone()));
        let handle = service.handle().map_err(RegistryError::Service)?;
        self.insert(
            name,
            Tenant {
                handle,
                service,
                name: name.to_string(),
                kind: TenantKind::Mutable { writer: Mutex::new(writer) },
                dim,
                shards: 1,
                probe,
                hierarchical,
                metric,
                family,
                k: tenant_config.k,
                in_flight: AtomicUsize::new(0),
                max_in_flight: tenant_config.max_in_flight,
            },
        )
    }

    /// Registers a coordinator tenant: queries fan out to the remote
    /// replicas behind `source`, each shard under its own circuit breaker,
    /// partial answers tagged with their coverage.
    ///
    /// # Errors
    ///
    /// [`RegistryError`] on a bad or duplicate name.
    pub fn register_coordinator(
        &self,
        name: &str,
        source: RemoteShard,
        fanout: FanoutConfig,
        tenant_config: TenantConfig,
    ) -> Result<Arc<Tenant>, RegistryError> {
        self.check_name(name)?;
        let (dim, shards, probe) = (source.dim(), source.num_shards(), source.probe());
        let hierarchical = source.supports_probe(Probe::Hierarchical { min_candidates: 1 });
        // A coordinator mirrors the geometry its replicas agreed on in
        // the USE handshake, so clients see consistent metadata whether
        // they hit a replica or the coordinator.
        let (metric, family) = (source.tenant_meta().metric, source.tenant_meta().family);
        let backend = FanoutBackend::new(source, fanout);
        let service =
            Service::start(backend, tenant_config.service.clone().recorder(self.recorder.clone()));
        let handle = service.handle().map_err(RegistryError::Service)?;
        self.insert(
            name,
            Tenant {
                handle,
                service,
                name: name.to_string(),
                kind: TenantKind::Coordinator,
                dim,
                shards,
                probe,
                hierarchical,
                metric,
                family,
                k: tenant_config.k,
                in_flight: AtomicUsize::new(0),
                max_in_flight: tenant_config.max_in_flight,
            },
        )
    }

    /// Looks up a tenant by name.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().unwrap_or_else(|e| e.into_inner()).get(name).cloned()
    }

    /// All tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.read().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect()
    }

    /// The single registered tenant, if there is exactly one — sessions
    /// bind to it automatically so single-index deployments skip `USE`.
    pub fn sole(&self) -> Option<Arc<Tenant>> {
        let map = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        if map.len() == 1 {
            map.values().next().cloned()
        } else {
            None
        }
    }
}
