//! Length-delimited framing of the line protocol.
//!
//! One frame is a little-endian `u32` payload length followed by that many
//! bytes of UTF-8 text — one request or one response per frame (a frame
//! may hold multiple *lines*, e.g. a `SHARDQ` batch or a telemetry table).
//! Framing is what lets a client pipeline requests: it can write dozens of
//! frames back to back and read the responses later, without the ambiguity
//! a raw line stream has around partial reads.
//!
//! Every error is typed: a clean EOF *between* frames is [`FrameError::Closed`]
//! (the peer hung up politely), EOF *inside* a frame is
//! [`FrameError::Truncated`], and an advertised length past [`MAX_FRAME`]
//! is rejected before any allocation — a 4-byte garbage header cannot make
//! the server reserve gigabytes.

use knn_telemetry::{Counter, Recorder};
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (64 MiB). Large enough for any
/// telemetry table or `SHARDQ` batch; small enough that a malicious or
/// corrupt length prefix fails fast instead of exhausting memory.
pub const MAX_FRAME: usize = 64 << 20;

/// Why reading or writing a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended inside a frame (header or payload cut short).
    Truncated,
    /// The advertised payload length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload is not valid UTF-8.
    BadUtf8,
    /// An underlying I/O error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::BadUtf8 => write!(f, "frame payload is not valid UTF-8"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Writes one frame. The caller owns buffering and flushing — a pipelining
/// client writes many frames, then flushes once.
///
/// # Errors
///
/// [`FrameError::TooLarge`] before writing anything; [`FrameError::Io`] on
/// write failure.
pub fn write_frame<W: Write>(
    w: &mut W,
    payload: &str,
    rec: &dyn Recorder,
    bytes_counter: Counter,
) -> Result<(), FrameError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(bytes.len()));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    rec.add(bytes_counter, (4 + bytes.len()) as u64);
    Ok(())
}

/// Reads one frame, blocking until it is complete.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF at a frame boundary,
/// [`FrameError::Truncated`] on EOF inside a frame, [`FrameError::TooLarge`]
/// / [`FrameError::BadUtf8`] on a malformed frame, [`FrameError::Io`]
/// otherwise.
pub fn read_frame<R: Read>(
    r: &mut R,
    rec: &dyn Recorder,
    bytes_counter: Counter,
) -> Result<String, FrameError> {
    let mut header = [0u8; 4];
    // The first header byte distinguishes a clean close from truncation.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(r, rec, bytes_counter)
        }
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut header[1..])?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    rec.add(bytes_counter, (4 + len) as u64);
    String::from_utf8(payload).map_err(|_| FrameError::BadUtf8)
}

/// A writer adapter that counts every byte it forwards into a telemetry
/// counter — used when raw (unframed) snapshot sections stream over the
/// socket during a replica `JOIN`, so `net_bytes_out` stays honest.
pub struct CountingWriter<'a, W: Write> {
    inner: W,
    rec: &'a dyn Recorder,
    counter: Counter,
}

impl<'a, W: Write> CountingWriter<'a, W> {
    /// Wraps `inner`, adding forwarded byte counts to `counter` on `rec`.
    pub fn new(inner: W, rec: &'a dyn Recorder, counter: Counter) -> Self {
        Self { inner, rec, counter }
    }
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.rec.add(self.counter, n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_telemetry::NOOP;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello", &NOOP, Counter::NetBytesOut).unwrap();
        write_frame(&mut buf, "", &NOOP, Counter::NetBytesOut).unwrap();
        write_frame(&mut buf, "multi\nline", &NOOP, Counter::NetBytesOut).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, &NOOP, Counter::NetBytesIn).unwrap(), "hello");
        assert_eq!(read_frame(&mut r, &NOOP, Counter::NetBytesIn).unwrap(), "");
        assert_eq!(read_frame(&mut r, &NOOP, Counter::NetBytesIn).unwrap(), "multi\nline");
        assert!(matches!(read_frame(&mut r, &NOOP, Counter::NetBytesIn), Err(FrameError::Closed)));
    }

    #[test]
    fn truncation_and_oversize_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload", &NOOP, Counter::NetBytesOut).unwrap();
        for cut in [1, 3, 4, buf.len() - 1] {
            assert!(
                matches!(
                    read_frame(&mut &buf[..cut], &NOOP, Counter::NetBytesIn),
                    Err(FrameError::Truncated)
                ),
                "cut at {cut}"
            );
        }
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..], &NOOP, Counter::NetBytesIn),
            Err(FrameError::TooLarge(_))
        ));
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            read_frame(&mut bad.as_slice(), &NOOP, Counter::NetBytesIn),
            Err(FrameError::BadUtf8)
        ));
    }
}
