//! `bilevel-netd` — the TCP serving daemon.
//!
//! Three modes, all sharing one listener flag:
//!
//! ```text
//! # Replica / multi-tenant server: build one index per --corpus flag.
//! bilevel-netd --listen 127.0.0.1:7070 --corpus img=img.fvecs [--corpus txt=txt.fvecs]
//!              [--shards N] [--mutable] [--quota Q] [--k K]
//!              [--w W] [--groups G] [--tables L] [--m M] [--e8] [--probe T] [--seed S]
//!
//! # Warm joiner: download a tenant from a peer and serve it.
//! bilevel-netd --listen 127.0.0.1:7071 --join 127.0.0.1:7070 --tenant img
//!
//! # Coordinator: fan queries out to replica processes with hedging.
//! bilevel-netd --listen 127.0.0.1:7072 --replicas 127.0.0.1:7070,127.0.0.1:7071 --tenant img
//! ```
//!
//! The daemon prints `listening on <addr>` to stderr once ready and runs
//! until killed. Clients speak length-delimited frames of the same line
//! protocol `bilevel-serve` reads on stdin, plus `USE`/`LIST`/`JOIN`.

use bilevel_lsh::{BiLevelConfig, Partition, Probe, Quantizer, WidthMode};
use knn_net::{
    HedgePolicy, NetClient, NetServer, Registry, RemoteShard, ServerConfig, TenantConfig,
};
use knn_serve::{FanoutConfig, ServiceConfig};
use rptree::SplitRule;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use vecstore::io::read_fvecs;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         bilevel-netd --listen ADDR --corpus [name=]path.fvecs [--corpus ...]\n               \
         [--shards N] [--mutable] [--quota Q] [--k K] [--metric SPEC]\n               \
         [--w W] [--groups G] [--tables L] [--m M] [--e8] [--probe T] [--seed S]\n  \
         bilevel-netd --listen ADDR --join HOST:PORT --tenant NAME [--quota Q]\n  \
         bilevel-netd --listen ADDR --replicas A,B,... --tenant NAME [--quota Q] [--no-hedge]"
    );
    ExitCode::from(2)
}

/// Pulls `--flag value` pairs out of the arguments (repeatable flags via
/// [`Flags::all`]).
struct Flags(Vec<String>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(|s| s.as_str())
    }
    fn all(&self, name: &str) -> Vec<&str> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == name)
            .filter_map(|(i, _)| self.0.get(i + 1))
            .map(|s| s.as_str())
            .collect()
    }
    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            }),
            None => default,
        }
    }
}

fn main() -> ExitCode {
    let flags = Flags(std::env::args().skip(1).collect());
    let Some(listen) = flags.get("--listen").map(str::to_string) else { return usage() };
    match run(&listen, &flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn tenant_config(flags: &Flags) -> TenantConfig {
    TenantConfig::default()
        .k(flags.num("--k", 10))
        .max_in_flight(flags.num("--quota", usize::MAX))
        .service(
            ServiceConfig::default()
                .max_batch(flags.num("--batch", 32))
                .max_wait(Duration::from_micros(flags.num("--wait-us", 1000u64)))
                .queue_capacity(flags.num("--queue", 1024)),
        )
}

fn run(listen: &str, flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let registry = Arc::new(Registry::new());
    let tcfg = tenant_config(flags);

    if let Some(peer) = flags.get("--join") {
        // Warm join: stream a peer tenant's corpus + snapshot, boot warm.
        let tenant = flags.get("--tenant").ok_or("--join requires --tenant")?;
        eprintln!("joining tenant {tenant:?} from {peer} ...");
        let client = NetClient::connect(peer)?;
        let joined = client.join_fetch(tenant)?;
        let shards = joined.shards;
        // Inherit the origin's k unless the operator overrode it —
        // coordinators refuse replicas whose tenant meta disagrees.
        let tcfg = if flags.has("--k") { tcfg } else { tcfg.k(joined.k) };
        registry.register_joined(tenant, joined.data, joined.snapshot, shards, tcfg)?;
        eprintln!("joined: {shards} shards, serving {tenant:?}");
    } else if let Some(replicas) = flags.get("--replicas") {
        // Coordinator: hedged remote fan-out over replica processes.
        let tenant = flags.get("--tenant").ok_or("--replicas requires --tenant")?;
        let addrs: Vec<String> = replicas.split(',').map(str::to_string).collect();
        let policy =
            if flags.has("--no-hedge") { HedgePolicy::disabled() } else { HedgePolicy::default() };
        let source = RemoteShard::connect(&addrs, tenant, policy, registry.recorder().clone())?;
        // Serve with the k the replicas agreed on unless overridden, so a
        // coordinator answers exactly what its replicas would.
        let tcfg = if flags.has("--k") { tcfg } else { tcfg.k(source.tenant_meta().k) };
        registry.register_coordinator(tenant, source, FanoutConfig::default(), tcfg)?;
        eprintln!("coordinating tenant {tenant:?} over {} replicas", addrs.len());
    } else {
        // Replica / multi-tenant server: one tenant per --corpus flag.
        let corpora = flags.all("--corpus");
        if corpora.is_empty() {
            return Err("need --corpus, --join, or --replicas".into());
        }
        let groups: usize = flags.num("--groups", 16);
        let metric = match flags.get("--metric") {
            Some(spec) => knn_serve::protocol::parse_metric(spec).map_err(|e| e.to_string())?,
            None => bilevel_lsh::MetricKind::L2,
        };
        let config = BiLevelConfig {
            l: flags.num("--tables", 10),
            m: flags.num("--m", 8),
            width: WidthMode::Scaled { base: flags.num("--w", 1.0f32), k: flags.num("--k", 10) },
            partition: if groups <= 1 {
                Partition::None
            } else {
                Partition::RpTree { groups, rule: SplitRule::Max }
            },
            quantizer: if flags.has("--e8") { Quantizer::E8 } else { Quantizer::Zm },
            probe: match flags.get("--probe") {
                Some(_) => Probe::Multi(flags.num("--probe", 8usize)),
                None => Probe::Home,
            },
            table_pool: None,
            projection: bilevel_lsh::Projection::Dense,
            metric,
            family: metric.default_family(),
            seed: flags.num("--seed", 0x0b11_e7e1u64),
        };
        let shards: usize = flags.num("--shards", 1);
        for spec in corpora {
            let (name, path) = match spec.split_once('=') {
                Some((n, p)) => (n.to_string(), p.to_string()),
                None => {
                    let stem = Path::new(spec)
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("default")
                        .to_string();
                    (stem, spec.to_string())
                }
            };
            let data = read_fvecs(Path::new(&path))?;
            eprintln!("tenant {name:?}: {} vectors, dim {}", data.len(), data.dim());
            if flags.has("--mutable") {
                registry.register_mutable(&name, data, &config, tcfg.clone())?;
            } else {
                registry.register_replica(&name, data, &config, shards, tcfg.clone())?;
            }
        }
    }

    let server = NetServer::bind(listen, Arc::clone(&registry), ServerConfig::default())?;
    eprintln!("listening on {}", server.local_addr());
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
