//! Loopback end-to-end tests for the TCP front end: every server in this
//! file binds `127.0.0.1:0` and every client talks to it over a real
//! socket, so the full stack — framing, sessions, tenancy, remote
//! fan-out, hedging, replica join — runs exactly as it does in
//! production, minus the network between machines.

use bilevel_lsh::telemetry::{Counter, InMemoryRecorder, NOOP};
use bilevel_lsh::{BiLevelConfig, Probe, Quantizer, QueryOptions, ShardedIndex};
use knn_net::frame::{read_frame, write_frame, MAX_FRAME};
use knn_net::{
    HedgePolicy, NetClient, NetServer, Registry, RemoteShard, ServerConfig, TenantConfig,
};
use knn_serve::protocol::{self, format_vector, WirePrecision};
use knn_serve::{Backend, FanoutBackend, FanoutConfig};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use vecstore::fault::{FaultKind, FaultPlan};
use vecstore::synth::{self, ClusteredSpec};
use vecstore::Dataset;

fn corpus(n: usize, seed: u64) -> Dataset {
    synth::clustered(&ClusteredSpec::small(n), seed)
}

fn queries(n: usize, seed: u64) -> Dataset {
    synth::clustered(&ClusteredSpec::small(n), seed)
}

fn config() -> BiLevelConfig {
    // Wide enough buckets that in-corpus queries surface full-k answers
    // on this synthetic corpus (the width mutation.rs settled on).
    BiLevelConfig::paper_default(8.0)
}

fn serve(registry: &Arc<Registry>) -> NetServer {
    NetServer::bind("127.0.0.1:0", Arc::clone(registry), ServerConfig::default())
        .expect("bind loopback")
}

fn query_lines(queries: &Dataset) -> Vec<String> {
    (0..queries.len()).map(|q| format_vector(queries.row(q))).collect()
}

/// What the server must answer for `query` against this exact index: the
/// wire protocol round-trips `f32` exactly, so the whole reply string is
/// predictable bit for bit.
fn expected_reply(index: &Arc<ShardedIndex>, query: &[f32], k: usize) -> String {
    let mut batch = Dataset::with_capacity(query.len(), 1);
    batch.push(query);
    let outcome = Backend::query_batch_opts(index, &batch, &QueryOptions::new(k));
    protocol::render_response(&outcome.neighbors[0], outcome.coverage, WirePrecision::Exact)
}

// ---------------------------------------------------------------------------
// Multi-tenancy
// ---------------------------------------------------------------------------

/// One process serves several named indexes; sessions switch with `USE`,
/// discover with `LIST`, and a tenant with an exhausted quota rejects
/// with the service layer's own overload error.
#[test]
fn multi_tenant_sessions_switch_and_reject() {
    // Multi-probe plus in-corpus queries keep candidate sets well above
    // k, so the replies carry exactly k neighbors.
    let cfg = config().probe(Probe::Multi(8));
    let data = corpus(300, 1);
    let beta_data = corpus(250, 2);
    let registry = Arc::new(Registry::new());
    registry.register_replica("alpha", data.clone(), &cfg, 2, TenantConfig::default()).unwrap();
    registry
        .register_replica("beta", beta_data.clone(), &cfg, 1, TenantConfig::default().k(5))
        .unwrap();
    registry
        .register_replica("tiny", corpus(120, 3), &cfg, 1, TenantConfig::default().max_in_flight(0))
        .unwrap();
    let server = serve(&registry);
    let addr = server.local_addr().to_string();

    let client = NetClient::connect(&addr).unwrap();
    assert_eq!(client.request("LIST").unwrap(), "TENANTS alpha:l2 beta:l2 tiny:l2");

    // Three tenants registered: no auto-bind, queries need USE first.
    let line = format_vector(data.row(0));
    let reply = client.request(&line).unwrap();
    assert!(reply.starts_with("ERROR no tenant selected"), "got {reply:?}");

    // NetClient pools connections per call, so drive one session through
    // the raw pipeline path to exercise USE switching statefully.
    let replies = client.pipeline(&["USE alpha", &line, "USE beta", &line, "USE nope"]).unwrap();
    assert!(replies[0].starts_with("OK tenant=alpha dim=32 shards=2"), "got {:?}", replies[0]);
    // The same session answers the same line differently per tenant —
    // and each answer matches a locally built copy of that tenant's
    // index bit for bit (alpha serves k=10, beta k=5).
    let alpha = Arc::new(ShardedIndex::build(data.clone(), &cfg, 2));
    let beta = Arc::new(ShardedIndex::build(beta_data, &cfg, 1));
    assert_eq!(replies[1], expected_reply(&alpha, data.row(0), 10));
    assert!(replies[2].starts_with("OK tenant=beta dim=32 shards=1"), "got {:?}", replies[2]);
    assert_eq!(replies[3], expected_reply(&beta, data.row(0), 5));
    assert!(replies[4].starts_with("ERROR unknown tenant"), "got {:?}", replies[4]);

    // A zero-quota tenant rejects every query with Overloaded.
    let replies = client.pipeline(&["USE tiny", &line]).unwrap();
    assert!(replies[0].starts_with("OK tenant=tiny"), "got {:?}", replies[0]);
    assert_eq!(replies[1], "ERROR admission queue full");
    assert!(registry.recorder().counter(Counter::TenantRejections) >= 1);

    server.shutdown();
}

/// A single-tenant deployment auto-binds sessions, so plain queries work
/// without a USE handshake, and `with_tenant` captures the tenant meta.
#[test]
fn single_tenant_auto_binds() {
    let data = corpus(200, 4);
    let cfg = config().probe(Probe::Multi(8));
    let registry = Arc::new(Registry::new());
    registry.register_replica("solo", data.clone(), &cfg, 2, TenantConfig::default().k(7)).unwrap();
    let server = serve(&registry);
    let addr = server.local_addr().to_string();

    let client = NetClient::connect(&addr).unwrap();
    let reply = client.request(&format_vector(data.row(0))).unwrap();
    let local = Arc::new(ShardedIndex::build(data.clone(), &cfg, 2));
    assert_eq!(reply, expected_reply(&local, data.row(0), 7));

    let pinned = NetClient::with_tenant(&addr, "solo").unwrap();
    let meta = pinned.meta().expect("USE handshake captures meta");
    assert_eq!((meta.dim, meta.shards, meta.k), (32, 2, 7));
    assert_eq!(meta.metric, bilevel_lsh::MetricKind::L2);
    assert_eq!(meta.family, bilevel_lsh::FamilyKind::PStable);

    server.shutdown();
}

/// Tenant metadata carries the index geometry end to end: `USE` and
/// `CONFIG` report the metric/family, `LIST` tags each tenant with its
/// metric, and a query that states the wrong metric is refused with the
/// typed mismatch error instead of silently wrong distances.
#[test]
fn metric_metadata_and_mismatch_are_first_class() {
    use bilevel_lsh::{FamilyKind, MetricKind};

    let data = corpus(240, 21);
    let registry = Arc::new(Registry::new());
    registry
        .register_replica("euclid", data.clone(), &config(), 1, TenantConfig::default())
        .unwrap();
    registry
        .register_replica(
            "angles",
            data.clone(),
            &config().metric(MetricKind::Cosine),
            1,
            TenantConfig::default(),
        )
        .unwrap();
    let server = serve(&registry);
    let addr = server.local_addr().to_string();

    let client = NetClient::connect(&addr).unwrap();
    assert_eq!(client.request("LIST").unwrap(), "TENANTS angles:cosine euclid:l2");

    // The USE handshake surfaces the geometry, and the typed client
    // parses it back.
    let pinned = NetClient::with_tenant(&addr, "angles").unwrap();
    let meta = pinned.meta().expect("USE handshake captures meta");
    assert_eq!(meta.metric, MetricKind::Cosine);
    assert_eq!(meta.family, FamilyKind::Srp);

    // CONFIG is a per-tenant line naming the same geometry.
    let cfg_line = pinned.request("CONFIG").unwrap();
    assert!(
        cfg_line.starts_with("CONFIG tenant=angles metric=cosine family=srp"),
        "got {cfg_line:?}"
    );

    // A correctly stated metric answers; a mismatched one is a typed
    // refusal naming both sides.
    let q = format_vector(data.row(0));
    let ok = pinned.request(&format!("QUERY metric=cosine {q}")).unwrap();
    assert!(!ok.starts_with("ERROR"), "got {ok:?}");
    let err = pinned.request(&format!("QUERY metric=l2 {q}")).unwrap();
    assert!(
        err.starts_with("ERROR metric mismatch") && err.contains("l2") && err.contains("cosine"),
        "got {err:?}"
    );
    // Metric-less lines keep working — stating a metric is opt-in.
    let bare = pinned.request(&q).unwrap();
    assert_eq!(bare, ok, "bare and correctly-stated queries must answer identically");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Remote fan-out
// ---------------------------------------------------------------------------

/// The heart of the tentpole: a coordinator fanning out over TCP produces
/// *bit-identical* answers to the same `ShardedIndex` queried locally —
/// across every probe mode and both quantizers — because distances travel
/// as exact round-trip `f32` text.
#[test]
fn remote_fanout_bit_identical_to_local() {
    let data = corpus(400, 5);
    let batch = queries(24, 6);
    for quantizer in [Quantizer::Zm, Quantizer::E8] {
        // Built hierarchical so every probe mode is supported end to end.
        let cfg = config().quantizer(quantizer).probe(Probe::Hierarchical { min_candidates: 12 });
        let shards = 3;

        let registry = Arc::new(Registry::new());
        registry
            .register_replica("t", data.clone(), &cfg, shards, TenantConfig::default())
            .unwrap();
        // Two servers over the *same* registry: two replica addresses
        // whose state is identical by construction.
        let server_a = serve(&registry);
        let server_b = serve(&registry);
        let addrs = [server_a.local_addr().to_string(), server_b.local_addr().to_string()];

        let local = FanoutBackend::new(
            Arc::new(ShardedIndex::build(data.clone(), &cfg, shards)),
            FanoutConfig::default(),
        );
        let recorder: Arc<InMemoryRecorder> = Arc::new(InMemoryRecorder::new());
        let source = RemoteShard::connect(&addrs, "t", HedgePolicy::default(), recorder).unwrap();
        let remote = FanoutBackend::new(source, FanoutConfig::default());

        let probes = [
            None, // the built probe
            Some(Probe::Home),
            Some(Probe::Multi(6)),
            Some(Probe::Hierarchical { min_candidates: 12 }),
        ];
        for probe in probes {
            let mut options = QueryOptions::new(9);
            options.probe = probe;
            let want = local.query_batch_opts(&batch, &options);
            let got = remote.query_batch_opts(&batch, &options);
            assert!(want.coverage.is_full() && got.coverage.is_full());
            assert_eq!(got.candidates, want.candidates, "{quantizer:?} {probe:?}");
            assert_eq!(
                got.neighbors, want.neighbors,
                "remote fan-out diverged from local: {quantizer:?} {probe:?}"
            );
            // PartialEq on f32 admits -0.0 == 0.0; pin exact bits too.
            for (g, w) in got.neighbors.iter().flatten().zip(want.neighbors.iter().flatten()) {
                assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "distance bits drifted");
            }
        }

        server_a.shutdown();
        server_b.shutdown();
    }
}

/// A slow replica (deterministic injected latency, the repo's own fault
/// plan vocabulary) trips the latency-EWMA hedge: backup probes fire,
/// some win, and the merged answer is still bit-identical to local.
#[test]
fn hedging_rescues_a_slow_replica() {
    let data = corpus(350, 7);
    let batch = queries(8, 8);
    let cfg = config();
    let shards = 4;

    let registry = Arc::new(Registry::new());
    registry.register_replica("t", data.clone(), &cfg, shards, TenantConfig::default()).unwrap();

    let fast = serve(&registry);
    // Every request against the slow server sleeps 40ms before executing.
    let mut plan = FaultPlan::none(0xcafe).with_rate(FaultKind::Latency, 1.0);
    plan.latency_dur = Duration::from_millis(40);
    let slow = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig { fault_plan: Some(plan) },
    )
    .unwrap();
    let addrs = [fast.local_addr().to_string(), slow.local_addr().to_string()];

    let recorder = Arc::new(InMemoryRecorder::new());
    let policy = HedgePolicy {
        enabled: true,
        multiplier: 3.0,
        min: Duration::from_millis(2),
        max: Duration::from_millis(10),
    };
    let source =
        RemoteShard::connect(&addrs, "t", policy, Arc::clone(&recorder) as Arc<_>).unwrap();
    let remote = FanoutBackend::new(source, FanoutConfig::default());
    let local = FanoutBackend::new(
        Arc::new(ShardedIndex::build(data, &cfg, shards)),
        FanoutConfig::default(),
    );

    let options = QueryOptions::new(10);
    for _ in 0..3 {
        let got = remote.query_batch_opts(&batch, &options);
        let want = local.query_batch_opts(&batch, &options);
        assert!(got.coverage.is_full(), "hedging must not cost coverage");
        assert_eq!(got.neighbors, want.neighbors, "hedged answers diverged");
    }
    // Odd shards have the slow server as primary; with a 10ms hedge
    // ceiling against a 40ms sleep, backups fire and win.
    assert!(recorder.counter(Counter::HedgesFired) > 0, "no hedge fired against a 40ms replica");
    assert!(recorder.counter(Counter::HedgeWins) > 0, "no backup probe ever won");

    fast.shutdown();
    slow.shutdown();
}

/// With hedging disabled, killing a replica mid-run degrades the
/// coordinator to coverage-tagged partial answers — the shard panics into
/// the fan-out breaker machinery instead of erroring the whole batch.
#[test]
fn killed_replica_degrades_to_partial_coverage() {
    let data = corpus(300, 11);
    // In-corpus queries spread across the row range: every query hits its
    // own row, so the shards that survive keep producing answers.
    let mut batch = Dataset::with_capacity(data.dim(), 6);
    for row in [0, 60, 120, 180, 240, 299] {
        batch.push(data.row(row));
    }
    let cfg = config();
    let shards = 4;

    let registry = Arc::new(Registry::new());
    registry.register_replica("t", data, &cfg, shards, TenantConfig::default()).unwrap();
    let server_a = serve(&registry);
    let server_b = serve(&registry);
    let addrs = [server_a.local_addr().to_string(), server_b.local_addr().to_string()];

    let recorder: Arc<InMemoryRecorder> = Arc::new(InMemoryRecorder::new());
    let source = RemoteShard::connect(&addrs, "t", HedgePolicy::disabled(), recorder).unwrap();
    let remote = FanoutBackend::new(source, FanoutConfig::default());
    let mut options = QueryOptions::new(8);
    options.probe = Some(Probe::Multi(8));

    let healthy = remote.query_batch_opts(&batch, &options);
    assert!(healthy.coverage.is_full(), "both replicas up: full coverage");

    // Kill replica B. Shards 1 and 3 have it as primary, and without
    // hedging there is no failover — those probes must panic.
    server_b.shutdown();
    let degraded = remote.query_batch_opts(&batch, &options);
    assert!(!degraded.coverage.is_full(), "dead replica must show in coverage");
    assert_eq!(degraded.coverage.answered, 2, "shards 0 and 2 still answer");
    assert_eq!(degraded.coverage.total, 4);
    assert!(remote.fault_stats().shard_panics() > 0, "failures route through the breaker");
    assert!(
        degraded.neighbors.iter().any(|n| !n.is_empty()),
        "surviving shards still produce answers"
    );
    for per_query in &degraded.neighbors {
        assert!(per_query.windows(2).all(|w| w[0].dist <= w[1].dist), "merge stays sorted");
    }

    server_a.shutdown();
}

// ---------------------------------------------------------------------------
// Replica join
// ---------------------------------------------------------------------------

/// A fresh process JOINs a running replica — corpus and snapshot stream
/// over one socket, every section checksummed — and then serves answers
/// byte-identical to its peer, with no shared disk anywhere.
#[test]
fn joined_replica_serves_byte_identical_answers() {
    let registry_a = Arc::new(Registry::new());
    registry_a
        .register_replica("img", corpus(320, 13), &config(), 3, TenantConfig::default().k(6))
        .unwrap();
    let server_a = serve(&registry_a);
    let addr_a = server_a.local_addr().to_string();

    // The joiner: download everything over TCP, boot a warm registry.
    let bootstrap = NetClient::connect(&addr_a).unwrap();
    let joined = bootstrap.join_fetch("img").unwrap();
    assert_eq!(joined.shards, 3);
    // The handshake carries the origin's serving k, so the joiner adopts
    // it and coordinators see consistent tenant meta across replicas.
    assert_eq!(joined.k, 6);
    let registry_b = Arc::new(Registry::new());
    registry_b
        .register_joined(
            "img",
            joined.data,
            joined.snapshot,
            joined.shards,
            TenantConfig::default().k(joined.k),
        )
        .unwrap();
    let server_b = serve(&registry_b);
    let addr_b = server_b.local_addr().to_string();

    let lines = query_lines(&queries(16, 14));
    let client_a = NetClient::with_tenant(&addr_a, "img").unwrap();
    let client_b = NetClient::with_tenant(&addr_b, "img").unwrap();
    let from_peer = client_a.pipeline(&lines).unwrap();
    let from_joiner = client_b.pipeline(&lines).unwrap();
    assert_eq!(from_joiner, from_peer, "joined replica diverged from its peer");
    assert!(from_peer.iter().all(|r| !r.starts_with("ERROR")));

    assert_eq!(registry_a.recorder().counter(Counter::ReplicaJoins), 1);
    // The join download is the dominant byte stream in this test.
    assert!(registry_a.recorder().counter(Counter::NetBytesOut) > 10_000);

    server_a.shutdown();
    server_b.shutdown();
}

// ---------------------------------------------------------------------------
// Framing hostility
// ---------------------------------------------------------------------------

fn raw_dial(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("dial loopback");
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

/// Malformed frames — oversized length prefixes, mid-frame EOF, invalid
/// UTF-8, random garbage — poison only their own connection. The server
/// answers with a best-effort ERROR frame where it can, never panics,
/// and keeps serving everyone else.
#[test]
fn malformed_frames_poison_only_their_connection() {
    let registry = Arc::new(Registry::new());
    registry
        .register_replica("solo", corpus(150, 15), &config(), 1, TenantConfig::default())
        .unwrap();
    let server = serve(&registry);
    let addr = server.local_addr().to_string();

    // Oversized length prefix: rejected before allocation, ERROR frame back.
    {
        let mut s = raw_dial(&addr);
        s.write_all(&u32::try_from(MAX_FRAME + 1).unwrap().to_le_bytes()).unwrap();
        s.flush().unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let reply = read_frame(&mut r, &NOOP, Counter::NetBytesIn).unwrap();
        assert!(reply.starts_with("ERROR"), "got {reply:?}");
        // ...and then the connection closes.
        assert!(read_frame(&mut r, &NOOP, Counter::NetBytesIn).is_err());
    }

    // Mid-frame EOF: header promises 64 bytes, 10 arrive, then close.
    {
        let mut s = raw_dial(&addr);
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(b"0123456789").unwrap();
        s.flush().unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        // Drain whatever the server sends until it closes; must not hang.
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // Invalid UTF-8 payload.
    {
        let mut s = raw_dial(&addr);
        s.write_all(&2u32.to_le_bytes()).unwrap();
        s.write_all(&[0xff, 0xfe]).unwrap();
        s.flush().unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let reply = read_frame(&mut r, &NOOP, Counter::NetBytesIn).unwrap();
        assert!(reply.starts_with("ERROR"), "got {reply:?}");
    }

    // Raw garbage bytes, no framing at all.
    {
        let mut s = raw_dial(&addr);
        s.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x00]).unwrap();
        s.flush().unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // An empty *line* is a protocol error, not a stream poison: the
    // session answers ERROR and keeps serving on the same connection.
    {
        let s = raw_dial(&addr);
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut w = s;
        write_frame(&mut w, "", &NOOP, Counter::NetBytesOut).unwrap();
        w.flush().unwrap();
        let reply = read_frame(&mut r, &NOOP, Counter::NetBytesIn).unwrap();
        assert_eq!(reply, "ERROR empty request line");
        write_frame(&mut w, "LIST", &NOOP, Counter::NetBytesOut).unwrap();
        w.flush().unwrap();
        assert_eq!(read_frame(&mut r, &NOOP, Counter::NetBytesIn).unwrap(), "TENANTS solo:l2");
    }

    // After all that hostility, a fresh well-behaved client still works.
    let client = NetClient::connect(&addr).unwrap();
    let q = queries(1, 16);
    let reply = client.request(&format_vector(q.row(0))).unwrap();
    assert!(!reply.starts_with("ERROR"), "server wounded by malformed frames: {reply:?}");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Pipelining and ordering
// ---------------------------------------------------------------------------

/// Pipelined frames — queries interleaved with control verbs — come back
/// strictly in request order, one response per request, with answers
/// identical to the same requests issued one at a time.
#[test]
fn pipelined_responses_arrive_in_request_order() {
    let registry = Arc::new(Registry::new());
    registry
        .register_replica("solo", corpus(260, 17), &config(), 2, TenantConfig::default())
        .unwrap();
    let server = serve(&registry);
    let addr = server.local_addr().to_string();
    let client = NetClient::connect(&addr).unwrap();

    let batch = queries(30, 18);
    let mut lines = query_lines(&batch);
    // Interleave control frames: they flush pending query responses but
    // must not disturb ordering.
    lines.insert(10, "LIST".to_string());
    lines.insert(20, "LIST".to_string());

    let pipelined = client.pipeline(&lines).unwrap();
    assert_eq!(pipelined.len(), lines.len());
    let serial: Vec<String> = lines.iter().map(|l| client.request(l).unwrap()).collect();
    assert_eq!(pipelined, serial, "pipelining changed responses or their order");
    assert_eq!(pipelined[10], "TENANTS solo:l2");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Telemetry and writes
// ---------------------------------------------------------------------------

/// Network counters show up in `STATS JSON` over the wire and count real
/// traffic: requests, bytes in, bytes out.
#[test]
fn stats_report_net_traffic() {
    let registry = Arc::new(Registry::new());
    registry
        .register_replica("solo", corpus(180, 19), &config(), 1, TenantConfig::default())
        .unwrap();
    let server = serve(&registry);
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();

    for line in query_lines(&queries(5, 20)) {
        let reply = client.request(&line).unwrap();
        assert!(!reply.starts_with("ERROR"));
    }
    let json = client.request("STATS JSON").unwrap();
    for name in ["net_requests", "net_bytes_in", "net_bytes_out"] {
        assert!(json.contains(&format!("\"{name}\":")), "STATS JSON lacks {name}: {json}");
        assert!(
            !json.contains(&format!("\"{name}\":0,")) && !json.contains(&format!("\"{name}\":0}}")),
            "{name} stayed zero under real traffic"
        );
    }
    let rec = registry.recorder();
    assert!(rec.counter(Counter::NetRequests) >= 6);
    assert!(rec.counter(Counter::NetBytesIn) > 0);
    assert!(rec.counter(Counter::NetBytesOut) > 0);

    server.shutdown();
}

/// The full write path works over TCP against a mutable tenant: staged
/// upserts and deletes, auto-commit on query, explicit COMMIT/COMPACT.
#[test]
fn mutable_tenant_serves_writes_over_tcp() {
    let data = corpus(200, 21);
    let dim = data.dim();
    let base_rows = data.len();
    let registry = Arc::new(Registry::new());
    registry.register_mutable("rw", data, &config(), TenantConfig::default().k(3)).unwrap();
    let server = serve(&registry);
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();

    // Insert a far-away sentinel vector; the next query must see it.
    let sentinel = vec![100.0f32; dim];
    let insert = format!("UPSERT + {}", format_vector(&sentinel));
    assert_eq!(client.request(&insert).unwrap(), "STAGED 1");
    let reply = client.request(&format_vector(&sentinel)).unwrap();
    let first = reply.split_whitespace().next().unwrap();
    let (id, _) = first.split_once(':').unwrap();
    assert_eq!(id.parse::<usize>().unwrap(), base_rows, "query must see the committed insert");

    // Delete it, commit, and it disappears from the same query.
    assert_eq!(client.request(&format!("DELETE {base_rows}")).unwrap(), "STAGED 1");
    let commit = client.request("COMMIT").unwrap();
    assert!(commit.starts_with("COMMITTED"), "got {commit:?}");
    let reply = client.request(&format_vector(&sentinel)).unwrap();
    assert!(
        !reply.split_whitespace().any(|t| t.starts_with(&format!("{base_rows}:"))),
        "deleted row resurfaced: {reply:?}"
    );

    let compacted = client.request("COMPACT").unwrap();
    assert!(compacted.starts_with("COMPACTED live="), "got {compacted:?}");

    // Writes against a read replica are refused with a typed error.
    let registry2 = Arc::new(Registry::new());
    registry2
        .register_replica("ro", corpus(120, 22), &config(), 2, TenantConfig::default())
        .unwrap();
    let server2 = serve(&registry2);
    let client2 = NetClient::connect(&server2.local_addr().to_string()).unwrap();
    assert_eq!(client2.request("DELETE 0").unwrap(), "ERROR writes require a mutable tenant");

    server.shutdown();
    server2.shutdown();
}
