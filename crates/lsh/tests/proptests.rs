//! Property-based tests for the LSH substrate: hash determinism, multiprobe
//! set validity/order, and collision-model sanity.

use lsh::family::quantize_zm;
use lsh::{collision_probability, perturbation_sets, probe_codes, recall_model, HashFamily};
use proptest::prelude::*;

fn raw_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..12)
}

proptest! {
    #[test]
    fn hashing_is_deterministic(
        v in prop::collection::vec(-50.0f32..50.0, 8),
        seed in any::<u64>(),
        w in 0.1f32..100.0,
    ) {
        let f = HashFamily::sample(8, 4, w, seed);
        prop_assert_eq!(f.hash_zm(&v), f.hash_zm(&v));
        prop_assert_eq!(quantize_zm(&f.project(&v)), f.hash_zm(&v));
    }

    #[test]
    fn translation_by_w_shifts_codes_by_one(
        seed in any::<u64>(),
        w in 0.5f32..50.0,
    ) {
        // Moving a point by w along a projection direction must shift that
        // component's code by exactly ±1... verified via the raw values:
        // raw(v) + 1 == raw(v + w·a_i/|a_i|²)? Simpler invariant: adding 1
        // to every raw component shifts the floor code by exactly 1.
        let f = HashFamily::sample(8, 4, w, seed);
        let v = vec![1.0f32; 8];
        let raw = f.project(&v);
        let shifted: Vec<f32> = raw.iter().map(|x| x + 1.0).collect();
        let a = quantize_zm(&raw);
        let b = quantize_zm(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(y - x, 1);
        }
    }

    #[test]
    fn perturbation_sets_are_valid_sorted_distinct(raw in raw_vec(), t in 0usize..50) {
        let sets = perturbation_sets(&raw, t);
        prop_assert!(sets.len() <= t);
        let score = |set: &[lsh::multiprobe::Perturbation]| -> f32 {
            set.iter()
                .map(|p| {
                    let frac = raw[p.dim] - raw[p.dim].floor();
                    let x = if p.delta == -1 { frac } else { 1.0 - frac };
                    x * x
                })
                .sum()
        };
        let mut last = -1.0f32;
        let mut seen = std::collections::HashSet::new();
        for set in &sets {
            // No repeated dimension inside one set.
            let mut dims: Vec<usize> = set.iter().map(|p| p.dim).collect();
            dims.sort_unstable();
            let n = dims.len();
            dims.dedup();
            prop_assert_eq!(dims.len(), n);
            // Scores ascend.
            let s = score(set);
            prop_assert!(s + 1e-5 >= last, "score order violated");
            last = s;
            // Sets are distinct.
            let mut key: Vec<(usize, i32)> = set.iter().map(|p| (p.dim, p.delta)).collect();
            key.sort_unstable();
            prop_assert!(seen.insert(key));
        }
    }

    #[test]
    fn probe_codes_differ_from_home_by_unit_steps(raw in raw_vec(), t in 1usize..30) {
        let home = quantize_zm(&raw);
        let probes = probe_codes(&raw, &home, t);
        prop_assert_eq!(&probes[0], &home);
        for p in &probes[1..] {
            let mut moved = 0;
            for (a, b) in p.iter().zip(&home) {
                let d = (a - b).abs();
                prop_assert!(d <= 1);
                moved += d;
            }
            prop_assert!(moved >= 1, "probe equals home bucket");
        }
    }

    #[test]
    fn collision_probability_is_a_probability(c in 0.0f64..1e4, w in 1e-3f64..1e4) {
        let p = collision_probability(c, w);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn collision_probability_monotone(w in 0.1f64..100.0, c1 in 0.01f64..100.0, c2 in 0.01f64..100.0) {
        let (lo, hi) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(collision_probability(lo, w) + 1e-12 >= collision_probability(hi, w));
    }

    #[test]
    fn recall_model_bounds_and_monotonicity(
        c in 0.01f64..50.0,
        w in 0.1f64..100.0,
        m in 1usize..16,
        l in 1usize..40,
    ) {
        let r = recall_model(c, w, m, l);
        prop_assert!((0.0..=1.0).contains(&r));
        // More tables never reduce modeled recall.
        prop_assert!(recall_model(c, w, m, l + 1) + 1e-12 >= r);
        // Longer codes never increase modeled recall.
        prop_assert!(recall_model(c, w, m + 1, l) <= r + 1e-12);
    }
}

proptest! {
    /// Probe ordering is total even when a degenerate projection poisons
    /// raw components with NaN: `perturbation_sets` must not panic, must
    /// respect the per-set validity rules, and the finite-score prefix
    /// must still ascend (the old `partial_cmp` sort was non-transitive
    /// under NaN and could corrupt both the sort and the heap).
    #[test]
    fn perturbation_sets_survive_nan_poisoning(
        mut raw in raw_vec(),
        mask in any::<u16>(),
        t in 0usize..50,
    ) {
        for (i, x) in raw.iter_mut().enumerate() {
            if mask & (1 << (i % 16)) != 0 {
                *x = f32::NAN;
            }
        }
        let sets = perturbation_sets(&raw, t);
        prop_assert!(sets.len() <= t);
        let score = |set: &[lsh::multiprobe::Perturbation]| -> f32 {
            set.iter()
                .map(|p| {
                    let frac = raw[p.dim] - raw[p.dim].floor();
                    let x = if p.delta == -1 { frac } else { 1.0 - frac };
                    x * x
                })
                .sum()
        };
        let mut last = -1.0f32;
        let mut seen = std::collections::HashSet::new();
        for set in &sets {
            let mut dims: Vec<usize> = set.iter().map(|p| p.dim).collect();
            dims.sort_unstable();
            let n = dims.len();
            dims.dedup();
            prop_assert_eq!(dims.len(), n, "repeated dimension inside one set");
            // total_cmp orders NaN above every finite score, so the
            // finite-score sets must still come out ascending.
            let s = score(set);
            if s.is_finite() {
                prop_assert!(s + 1e-5 >= last, "finite score order violated");
                last = s;
            }
            let mut key: Vec<(usize, i32)> = set.iter().map(|p| (p.dim, p.delta)).collect();
            key.sort_unstable();
            prop_assert!(seen.insert(key), "duplicate perturbation set");
        }

        // The full probe expansion stays well-formed too: no panic, the
        // home bucket leads, and at most `t` distinct perturbed codes
        // follow it.
        let home = quantize_zm(&raw);
        let probes = probe_codes(&raw, &home, t);
        prop_assert!(probes.len() <= t + 1);
        prop_assert_eq!(&probes[0], &home, "home bucket is probed first");
        let mut distinct = std::collections::HashSet::new();
        for code in &probes[1..] {
            prop_assert!(code != &home, "home bucket repeated as a probe");
            prop_assert!(distinct.insert(code.clone()), "duplicate probe code");
        }
    }
}
