//! Statistical parameter tuning after Dong et al. (CIKM 2008).
//!
//! The tuner fits a small distance model on a sample of the data — the
//! typical distance from a point to its k-th nearest neighbor, and the
//! typical distance between two random points — and uses the closed-form
//! p-stable collision probability to choose the bucket width `W` that meets
//! a recall target at minimal expected selectivity. The Bi-level scheme runs
//! this per RP-tree leaf so each cluster gets parameters matched to its own
//! density (Section IV-B).

use serde::{Deserialize, Serialize};
use vecstore::{knn, Dataset, SquaredL2};

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (max absolute error ≈ 1.5e-7, ample for tuning decisions).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
#[inline]
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Probability that one p-stable (`l_2`) hash component collides for two
/// points at distance `c`, with bucket width `w` (Datar et al.):
///
/// `p(c) = 1 − 2Φ(−w/c) − (2c / (√(2π) w)) · (1 − exp(−w²/2c²))`.
pub fn collision_probability(c: f64, w: f64) -> f64 {
    assert!(w > 0.0, "w must be positive");
    if c <= 0.0 {
        return 1.0;
    }
    let r = w / c;
    let p = 1.0
        - 2.0 * phi(-r)
        - (2.0 / ((2.0 * std::f64::consts::PI).sqrt() * r)) * (1.0 - (-r * r / 2.0).exp());
    p.clamp(0.0, 1.0)
}

/// Probability that two points at distance `c` land in the same bucket of at
/// least one of `l` tables with `m`-component codes:
/// `1 − (1 − p(c)^m)^l`.
pub fn recall_model(c: f64, w: f64, m: usize, l: usize) -> f64 {
    let p = collision_probability(c, w).powi(m as i32);
    1.0 - (1.0 - p).powi(l as i32)
}

/// Sampled distance structure of a dataset (or of one RP-tree leaf).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceProfile {
    /// Mean distance from a sampled point to its k-th nearest neighbor.
    pub d_knn: f64,
    /// Mean distance between two random sampled points.
    pub d_any: f64,
    /// Number of points the profile was fitted on.
    pub sample_size: usize,
}

impl DistanceProfile {
    /// Fits the profile on up to `sample` points of `data`, for neighborhood
    /// size `k`. Sampling is strided for determinism.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than 2 points.
    pub fn fit(data: &Dataset, k: usize, sample: usize) -> Self {
        assert!(data.len() >= 2, "need at least two points to profile");
        let n = data.len();
        let sample = sample.clamp(2, n);
        let stride = (n / sample).max(1);
        let picked: Vec<usize> = (0..n).step_by(stride).take(sample).collect();

        let mut knn_sum = 0.0f64;
        let mut any_sum = 0.0f64;
        let mut any_count = 0u64;
        let k_eff = k.min(n - 1).max(1);
        for (j, &i) in picked.iter().enumerate() {
            let hits = knn(data, data.row(i), k_eff + 1, &SquaredL2);
            // Skip the self-match at distance 0 (hits[0] is the point itself
            // unless duplicates exist, in which case any zero hit works).
            let kth = hits.last().expect("non-empty dataset");
            knn_sum += (kth.dist as f64).sqrt();
            // Pair each sampled point with another sampled point.
            let other = picked[(j + picked.len() / 2) % picked.len()];
            if other != i {
                any_sum +=
                    (vecstore::metric::squared_l2(data.row(i), data.row(other)) as f64).sqrt();
                any_count += 1;
            }
        }
        let d_knn = knn_sum / picked.len() as f64;
        let d_any = if any_count > 0 { any_sum / any_count as f64 } else { d_knn };
        Self { d_knn, d_any: d_any.max(d_knn), sample_size: picked.len() }
    }
}

/// What the tuner optimizes for.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum TuningGoal {
    /// Smallest `W` whose modeled recall at the k-NN distance meets the
    /// target (selectivity grows with `W`, so smallest-W = cheapest).
    Recall(f64),
    /// Largest `W` whose modeled collision rate at the random-pair distance
    /// (a selectivity proxy) stays at or below the budget.
    Selectivity(f64),
}

/// Chooses a bucket width `W` for an `m`-component, `l`-table index over
/// data with the given distance profile.
///
/// The search sweeps `W` over a geometric grid spanning
/// `[d_knn/8, 8·d_any]`, which brackets every regime the model can express.
pub fn tune_w(profile: &DistanceProfile, m: usize, l: usize, goal: TuningGoal) -> f64 {
    assert!(m > 0 && l > 0, "m and l must be positive");
    let lo = (profile.d_knn / 8.0).max(1e-9);
    let hi = (profile.d_any * 8.0).max(lo * 2.0);
    let steps = 200;
    let ratio = (hi / lo).powf(1.0 / steps as f64);
    let mut w = lo;
    let mut best = hi; // fall back to the coarsest candidate
    match goal {
        TuningGoal::Recall(target) => {
            for _ in 0..=steps {
                if recall_model(profile.d_knn, w, m, l) >= target {
                    best = w;
                    break;
                }
                w *= ratio;
            }
        }
        TuningGoal::Selectivity(budget) => {
            best = lo;
            for _ in 0..=steps {
                if recall_model(profile.d_any, w, m, l) <= budget {
                    best = w; // keep growing W while the proxy stays in budget
                } else {
                    break;
                }
                w *= ratio;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::synth::{self, ClusteredSpec};

    #[test]
    fn erf_matches_known_values() {
        assert!(erf(0.0).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn phi_is_a_cdf() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!(phi(5.0) > 0.999999);
        assert!(phi(-5.0) < 1e-6);
    }

    #[test]
    fn collision_probability_limits() {
        assert_eq!(collision_probability(0.0, 1.0), 1.0);
        // Distance much smaller than W: near-certain collision.
        assert!(collision_probability(0.001, 10.0) > 0.99);
        // Distance much larger than W: near-certain separation.
        assert!(collision_probability(1000.0, 1.0) < 0.01);
    }

    #[test]
    fn collision_probability_monotone_in_c() {
        let w = 4.0;
        let mut last = 1.0;
        for c in [0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let p = collision_probability(c, w);
            assert!(p <= last + 1e-12, "p not decreasing at c={c}");
            last = p;
        }
    }

    #[test]
    fn collision_probability_matches_monte_carlo() {
        // Empirical check of the closed form: hash many Gaussian projections
        // of two points at distance c and count collisions.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (c, w) = (2.0f64, 3.0f64);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 200_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let a: f64 = {
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            let b: f64 = rng.gen::<f64>() * w;
            // Points 0 and c on a line; projection values a*0+b and a*c+b.
            let h1 = (b / w).floor();
            let h2 = ((a * c + b) / w).floor();
            if h1 == h2 {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        let model = collision_probability(c, w);
        assert!((emp - model).abs() < 0.01, "empirical {emp} vs model {model}");
    }

    #[test]
    fn recall_model_increases_with_l() {
        let r10 = recall_model(1.0, 2.0, 8, 10);
        let r30 = recall_model(1.0, 2.0, 8, 30);
        assert!(r30 > r10);
    }

    #[test]
    fn profile_orders_knn_below_any() {
        let ds = synth::clustered(&ClusteredSpec::small(500), 4);
        let p = DistanceProfile::fit(&ds, 10, 100);
        assert!(p.d_knn > 0.0);
        assert!(
            p.d_any >= p.d_knn,
            "knn dist {} should not exceed random-pair {}",
            p.d_knn,
            p.d_any
        );
    }

    #[test]
    fn tuned_w_meets_recall_target() {
        let ds = synth::clustered(&ClusteredSpec::small(400), 5);
        let p = DistanceProfile::fit(&ds, 10, 80);
        let w = tune_w(&p, 8, 10, TuningGoal::Recall(0.9));
        assert!(recall_model(p.d_knn, w, 8, 10) >= 0.9);
    }

    #[test]
    fn selectivity_goal_respects_budget() {
        let ds = synth::clustered(&ClusteredSpec::small(400), 6);
        let p = DistanceProfile::fit(&ds, 10, 80);
        let w = tune_w(&p, 8, 10, TuningGoal::Selectivity(0.05));
        assert!(recall_model(p.d_any, w, 8, 10) <= 0.05 + 1e-9);
    }

    #[test]
    fn denser_cluster_gets_smaller_w() {
        // Per-cluster tuning intuition: a tight cluster needs smaller W for
        // the same recall target than a diffuse one.
        let tight = synth::gaussian(16, 300, 0.5, 7);
        let wide = synth::gaussian(16, 300, 5.0, 8);
        let pt = DistanceProfile::fit(&tight, 10, 80);
        let pw = DistanceProfile::fit(&wide, 10, 80);
        let wt = tune_w(&pt, 8, 10, TuningGoal::Recall(0.9));
        let ww = tune_w(&pw, 8, 10, TuningGoal::Recall(0.9));
        assert!(wt < ww, "tight {wt} should tune below wide {ww}");
    }
}
