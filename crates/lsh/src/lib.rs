#![warn(missing_docs)]

//! Level 2 substrate: p-stable locality sensitive hashing.
//!
//! Implements the Datar–Immorlica–Indyk–Mirrokni `l_2` hash family
//! (Equation 2 of the paper), hash tables over the `Z^M` integer lattice,
//! the Lv et al. query-directed multi-probe sequence, and the Dong et al.
//! statistical parameter tuner used to pick per-cluster bucket widths `W`.
//!
//! The [`family::HashFamily`] exposes *raw* (pre-quantization) projections so
//! that alternative quantizers — the E8 lattice decoder in the `lattice`
//! crate — can be swapped in behind the same projections.
//!
//! Level 2 is *pluggable*: the [`level2::Level2Family`] trait generalizes the
//! p-stable family to sign-random-projection (cosine), asymmetric MIPS, and
//! `l_p` hashing, all emitting raw projections compatible with the same
//! quantizer and multiprobe machinery. See [`level2`].

pub mod adaptive;
pub mod family;
pub mod forest;
pub mod level2;
pub mod multiprobe;
pub mod table;
pub mod tuning;

pub use adaptive::{centrality_score, select_tables};
pub use family::{FamilyParts, HashFamily, InvalidFamily, LshCode, Projection, ProjectionScratch};
pub use forest::{ForestConfig, LshForest};
pub use level2::{
    level2_from_parts, Level2, Level2Family, Level2Kind, Level2Parts, Level2PartsKind,
    LpStableFamily, MipsFamily, SrpFamily,
};
pub use multiprobe::{perturbation_sets, probe_codes};
pub use table::LshTable;
pub use tuning::{collision_probability, recall_model, tune_w, DistanceProfile, TuningGoal};
