//! LSH-Forest (Bawa, Condie & Ganesan, WWW 2005) — the self-tuning related
//! work of the paper's Section II-B.
//!
//! Instead of fixing the code dimension `M`, each of the `L` tables is a
//! *prefix tree* over the sequence of per-level hash values: a point's
//! effective code length is the depth of the leaf it lands in, which adapts
//! locally to data density (dense regions grow deeper, sparse regions stay
//! shallow). Queries descend each tree as far as their own hash sequence
//! matches, then collect candidates by walking back up ("synchronous
//! ascent") until the candidate budget is met.
//!
//! Implemented here as an additional baseline for extension experiments —
//! the paper compares against fixed-`M` LSH only.

use crate::family::HashFamily;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vecstore::synth::StdNormal;
use vecstore::Dataset;

/// Maximum code length (tree depth); Bawa et al. use a fixed cap.
const DEFAULT_MAX_DEPTH: usize = 24;

/// Leaf capacity before a split is attempted.
const LEAF_CAPACITY: usize = 16;

/// Construction parameters for an [`LshForest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of prefix trees `L`.
    pub trees: usize,
    /// Bucket width of the underlying p-stable hashes.
    pub w: f32,
    /// Depth cap `k_max`.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ForestConfig {
    /// Defaults: 10 trees, depth cap 24.
    pub fn new(w: f32) -> Self {
        Self { trees: 10, w, max_depth: DEFAULT_MAX_DEPTH, seed: 0xf0_e57 }
    }
}

/// One prefix-tree node.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    /// Points whose hash prefixes collide down to this depth.
    Leaf { ids: Vec<u32> },
    /// Children keyed by the next hash value in the sequence.
    Inner { children: std::collections::HashMap<i32, usize> },
}

/// One tree: its own hash function per level plus the trie.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tree {
    /// `levels[d]` hashes with the level-`d` function (each level is an
    /// independent 1-dim p-stable hash).
    levels: HashFamily,
    nodes: Vec<Node>,
    root: usize,
}

/// A fitted LSH-Forest over a borrowed dataset.
#[derive(Debug)]
pub struct LshForest<'a> {
    data: &'a Dataset,
    trees: Vec<Tree>,
    max_depth: usize,
}

impl<'a> LshForest<'a> {
    /// Builds the forest.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the config is degenerate.
    pub fn build(data: &'a Dataset, config: &ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot build over empty dataset");
        assert!(config.trees > 0, "need at least one tree");
        assert!(config.max_depth > 0, "depth cap must be positive");
        assert!(config.w > 0.0, "bucket width must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let trees = (0..config.trees)
            .map(|_| {
                // An `max_depth`-dim family: component d is the level-d hash.
                let seed = rng.sample::<f32, _>(StdNormal).to_bits() as u64 ^ rng.gen::<u64>();
                let levels = HashFamily::sample(data.dim(), config.max_depth, config.w, seed);
                build_tree(data, levels, config.max_depth)
            })
            .collect();
        Self { data, trees, max_depth: config.max_depth }
    }

    /// Candidate ids for `query`: every tree is descended to its deepest
    /// matching node, then all trees ascend synchronously one level at a
    /// time until at least `min_candidates` distinct ids are gathered (or
    /// the roots are reached).
    pub fn candidates(&self, query: &[f32], min_candidates: usize) -> Vec<u32> {
        assert_eq!(query.len(), self.data.dim(), "query dimension mismatch");
        // Per-tree root-to-deepest path.
        let paths: Vec<Vec<usize>> = self
            .trees
            .iter()
            .map(|tree| {
                let labels = tree.levels.hash_zm(query);
                let mut path = vec![tree.root];
                let mut cur = tree.root;
                for label in labels.iter().take(self.max_depth) {
                    match &tree.nodes[cur] {
                        Node::Inner { children } => match children.get(label) {
                            Some(&next) => {
                                path.push(next);
                                cur = next;
                            }
                            None => break,
                        },
                        Node::Leaf { .. } => break,
                    }
                }
                path
            })
            .collect();

        let mut out: Vec<u32> = Vec::new();
        let deepest = paths.iter().map(Vec::len).max().unwrap_or(1);
        // Ascend: depth index from the bottom.
        for up in 0..deepest {
            for (tree, path) in self.trees.iter().zip(&paths) {
                if up >= path.len() {
                    continue;
                }
                let node = path[path.len() - 1 - up];
                // At ascent step 0 collect the deepest node's subtree; at
                // later steps the parent subtrees subsume earlier ones, and
                // dedup keeps the set consistent.
                collect_subtree(tree, node, &mut out);
            }
            out.sort_unstable();
            out.dedup();
            if out.len() >= min_candidates {
                break;
            }
        }
        out
    }

    /// Approximate k-NN: rank the candidate set by exact distance.
    pub fn query(&self, query: &[f32], k: usize, min_candidates: usize) -> Vec<vecstore::Neighbor> {
        let cands = self.candidates(query, min_candidates.max(k));
        let mut top = vecstore::TopK::new(k);
        for &id in &cands {
            top.push(id as usize, vecstore::metric::squared_l2(query, self.data.row(id as usize)));
        }
        let mut hits = top.into_sorted();
        for n in &mut hits {
            n.dist = n.dist.sqrt();
        }
        hits
    }

    /// Distribution of leaf depths across all trees — the "self-tuned M".
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_depth + 1];
        for tree in &self.trees {
            depth_walk(tree, tree.root, 0, &mut hist);
        }
        hist
    }
}

fn depth_walk(tree: &Tree, node: usize, depth: usize, hist: &mut [usize]) {
    match &tree.nodes[node] {
        Node::Leaf { ids } => {
            if !ids.is_empty() {
                hist[depth.min(hist.len() - 1)] += 1;
            }
        }
        Node::Inner { children } => {
            for &c in children.values() {
                depth_walk(tree, c, depth + 1, hist);
            }
        }
    }
}

fn collect_subtree(tree: &Tree, node: usize, out: &mut Vec<u32>) {
    match &tree.nodes[node] {
        Node::Leaf { ids } => out.extend_from_slice(ids),
        Node::Inner { children } => {
            for &c in children.values() {
                collect_subtree(tree, c, out);
            }
        }
    }
}

/// Builds one prefix tree by inserting every point, splitting leaves that
/// exceed [`LEAF_CAPACITY`] until the depth cap.
fn build_tree(data: &Dataset, levels: HashFamily, max_depth: usize) -> Tree {
    let mut nodes = vec![Node::Leaf { ids: Vec::new() }];
    let root = 0usize;
    // Precompute every point's full label sequence (max_depth ints).
    let labels: Vec<Vec<i32>> = data.iter().map(|row| levels.hash_zm(row)).collect();
    for (id, seq) in labels.iter().enumerate() {
        insert_point(&mut nodes, root, 0, id as u32, seq, &labels, max_depth);
    }
    Tree { levels, nodes, root }
}

fn insert_point(
    nodes: &mut Vec<Node>,
    node: usize,
    depth: usize,
    id: u32,
    seq: &[i32],
    all_labels: &[Vec<i32>],
    max_depth: usize,
) {
    match &mut nodes[node] {
        Node::Inner { children } => {
            let label = seq[depth];
            let child = match children.get(&label) {
                Some(&c) => c,
                None => {
                    let c = nodes.len();
                    // Re-borrow after push: take the child index first.
                    nodes.push(Node::Leaf { ids: Vec::new() });
                    let Node::Inner { children } = &mut nodes[node] else { unreachable!() };
                    children.insert(label, c);
                    c
                }
            };
            insert_point(nodes, child, depth + 1, id, seq, all_labels, max_depth);
        }
        Node::Leaf { ids } => {
            ids.push(id);
            if ids.len() > LEAF_CAPACITY && depth < max_depth {
                // Split: push every resident one level down. Points with
                // identical full prefixes re-collide and stop splitting at
                // the depth cap.
                let residents = std::mem::take(ids);
                nodes[node] = Node::Inner { children: std::collections::HashMap::new() };
                for r in residents {
                    let rseq = &all_labels[r as usize];
                    insert_point(nodes, node, depth, r, rseq, all_labels, max_depth);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_metrics_free::recall;
    use vecstore::synth::{self, ClusteredSpec};
    use vecstore::{knn, SquaredL2};

    /// Local recall helper (avoids a dev-dependency cycle on knn-metrics).
    mod knn_metrics_free {
        use vecstore::Neighbor;
        pub fn recall(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
            if exact.is_empty() {
                return 1.0;
            }
            let ids: std::collections::HashSet<usize> = approx.iter().map(|n| n.id).collect();
            exact.iter().filter(|n| ids.contains(&n.id)).count() as f64 / exact.len() as f64
        }
    }

    fn corpus() -> (Dataset, Dataset) {
        synth::clustered(&ClusteredSpec::small(700), 41).split_at(600)
    }

    #[test]
    fn every_point_is_its_own_candidate() {
        let (data, _) = corpus();
        let forest = LshForest::build(&data, &ForestConfig::new(4.0));
        for i in (0..data.len()).step_by(37) {
            let cands = forest.candidates(data.row(i), 1);
            assert!(cands.contains(&(i as u32)), "point {i} missing from own candidates");
        }
    }

    #[test]
    fn candidate_budget_is_met_or_everything_returned() {
        let (data, queries) = corpus();
        let forest = LshForest::build(&data, &ForestConfig::new(4.0));
        for q in queries.iter().take(20) {
            let cands = forest.candidates(q, 50);
            assert!(cands.len() >= 50.min(data.len()) || cands.len() == data.len());
        }
    }

    #[test]
    fn reasonable_recall_at_moderate_budget() {
        let (data, queries) = corpus();
        let forest = LshForest::build(&data, &ForestConfig::new(4.0));
        let mut total = 0.0;
        for q in queries.iter() {
            let got = forest.query(q, 10, 100);
            let want = {
                let mut w = knn(&data, q, 10, &SquaredL2);
                for n in &mut w {
                    n.dist = n.dist.sqrt();
                }
                w
            };
            total += recall(&want, &got);
        }
        let mean = total / queries.len() as f64;
        assert!(mean > 0.5, "forest recall {mean} too low at budget 100");
    }

    #[test]
    fn deeper_leaves_in_dense_regions() {
        // The self-tuning property: a corpus with a dense clump produces
        // deeper leaves than a sparse uniform one at the same settings.
        let dense = synth::gaussian(8, 600, 0.05, 3);
        let sparse = synth::uniform(8, 600, -100.0, 100.0, 4);
        let cfg = ForestConfig::new(4.0);
        let depth_mass = |d: &Dataset| -> f64 {
            let f = LshForest::build(d, &cfg);
            let hist = f.depth_histogram();
            let total: usize = hist.iter().sum();
            hist.iter().enumerate().map(|(d, &c)| d as f64 * c as f64).sum::<f64>() / total as f64
        };
        assert!(
            depth_mass(&dense) > depth_mass(&sparse),
            "dense data should grow deeper prefix trees"
        );
    }

    #[test]
    fn duplicate_points_do_not_blow_the_depth_cap() {
        let data = Dataset::from_rows(&vec![vec![1.0f32; 8]; 200]);
        let forest = LshForest::build(&data, &ForestConfig::new(2.0));
        let cands = forest.candidates(&[1.0f32; 8], 10);
        assert_eq!(cands.len(), 200, "all duplicates share one capped leaf");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new(4);
        let _ = LshForest::build(&data, &ForestConfig::new(1.0));
    }
}
