//! Pluggable level-2 hash families.
//!
//! The paper fixes level 2 as p-stable (`l_2`) hashing; this module factors
//! that choice behind the [`Level2Family`] trait so the same table/probe
//! machinery serves other similarity workloads:
//!
//! | family | metric | scheme |
//! |---|---|---|
//! | [`HashFamily`] | `l_2` | Datar et al. p-stable (Gaussian) projections |
//! | [`SrpFamily`] | cosine | Charikar sign-random-projection bits |
//! | [`MipsFamily`] | inner product | Neyshabur–Srebro asymmetric augmentation over the p-stable core |
//! | [`LpStableFamily`] | `l_p`, `p ∈ (0, 2)` | Chambers–Mallows–Stuck p-stable draws |
//!
//! Every family exposes *raw projections* — `m` real values per vector —
//! so the existing quantizers (`Z^M` floor, E8 decode), multi-probe
//! orderings, and bucket hierarchies apply unchanged. Two projection sides
//! exist because MIPS is asymmetric: corpus rows embed through
//! [`Level2Family::project_data_into`], queries through
//! [`Level2Family::project_query_into`] (identical for every symmetric
//! family, which is why the trait defaults the query side to the data
//! side).
//!
//! [`Level2`] is the closed enum the index hot paths dispatch over (no
//! virtual calls per row); the object-safe trait is the API contract, and
//! [`level2_from_parts`] is the persistence-side registry that rebuilds any
//! family from its structural dump.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::family::{FamilyParts, HashFamily, InvalidFamily, ProjectionScratch};

/// Which level-2 family a [`Level2`] value is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level2Kind {
    /// Gaussian p-stable `l_2` family (the paper's level 2).
    PStable,
    /// Sign random projections (cosine).
    Srp,
    /// Asymmetric maximum-inner-product transform.
    Mips,
    /// `l_p` p-stable draws for `p ∈ (0, 2)`.
    Lp,
}

impl Level2Kind {
    /// Short stable name used in snapshots, protocol lines, and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Level2Kind::PStable => "pstable",
            Level2Kind::Srp => "srp",
            Level2Kind::Mips => "mips",
            Level2Kind::Lp => "lp",
        }
    }
}

/// Object-safe contract every level-2 hash family satisfies.
///
/// The trait is intentionally minimal: raw projection access (the bridge to
/// the existing quantizer/multiprobe/hierarchy machinery) plus the
/// structural dump used by persistence. Construction is *not* part of the
/// trait (constructors differ per family); [`level2_from_parts`] is the
/// uniform rebuild path.
pub trait Level2Family: Send + Sync + std::fmt::Debug {
    /// Which family this is.
    fn kind(&self) -> Level2Kind;

    /// Number of component hashes `M` (raw projection length).
    fn m(&self) -> usize;

    /// Dimensionality of the *data* vectors this family hashes. (The
    /// internal projection may run in a higher dimension — MIPS augments by
    /// one — but callers only ever present data-dimensional vectors.)
    fn data_dim(&self) -> usize;

    /// Bucket width `W` (1.0 for families that do not quantize by width,
    /// like SRP, whose raw projections are already in cell units).
    fn w(&self) -> f32;

    /// Raw per-component projection of a *corpus* vector into `out`
    /// (`out.len() == m`). Floor-quantizing this yields the family's `Z^M`
    /// code.
    fn project_data_into(&self, v: &[f32], out: &mut [f32]);

    /// Raw projection of a *query* vector. Identical to the data side for
    /// every symmetric family; asymmetric families (MIPS) override it.
    fn project_query_into(&self, v: &[f32], out: &mut [f32]) {
        self.project_data_into(v, out);
    }

    /// Dumps the family's structure for persistence; feed to
    /// [`level2_from_parts`] to rebuild.
    fn to_parts(&self) -> Level2Parts;
}

/// Kind tag plus kind-specific extras of a [`Level2Parts`] dump.
#[derive(Debug, Clone, PartialEq)]
pub enum Level2PartsKind {
    /// p-stable `l_2` family.
    PStable,
    /// Sign random projections (the `b`/`w` slots of the base dump are a
    /// zero vector and 1.0 — SRP has no offsets or width).
    Srp,
    /// MIPS wrapper; `base` holds the inner `(dim + 1)`-dimensional
    /// p-stable family and `scale` the corpus max-norm `S`.
    Mips {
        /// Corpus norm bound used by the index-side embedding.
        scale: f32,
    },
    /// `l_p` family with stability parameter `p ∈ (0, 2)`.
    Lp {
        /// Stability parameter.
        p: f32,
    },
}

/// Owned structural dump of any level-2 family: the kind tag plus the raw
/// projection arrays in [`FamilyParts`] layout (for MIPS the base dump is
/// the *inner* family, whose `dim` is the data dimension plus one).
#[derive(Debug, Clone)]
pub struct Level2Parts {
    /// Which family the base arrays belong to.
    pub kind: Level2PartsKind,
    /// Projection matrix, offsets, width, and projection-input dimension.
    pub base: FamilyParts,
}

/// Rebuilds a family from a structural dump, validating every invariant
/// the corresponding constructor establishes.
///
/// # Errors
///
/// Returns [`InvalidFamily`] on shape mismatches, non-finite values, an
/// out-of-range MIPS scale, or an `l_p` stability parameter outside
/// `(0, 2)`.
pub fn level2_from_parts(parts: Level2Parts) -> Result<Level2, InvalidFamily> {
    match parts.kind {
        Level2PartsKind::PStable => Ok(Level2::PStable(HashFamily::from_parts(parts.base)?)),
        Level2PartsKind::Srp => SrpFamily::from_parts(parts.base).map(Level2::Srp),
        Level2PartsKind::Mips { scale } => {
            MipsFamily::from_parts(parts.base, scale).map(Level2::Mips)
        }
        Level2PartsKind::Lp { p } => LpStableFamily::from_parts(parts.base, p).map(Level2::Lp),
    }
}

// ---------------------------------------------------------------------------
// SRP: sign random projections (cosine)
// ---------------------------------------------------------------------------

/// Charikar's sign-random-projection family: `h_i(v) = sign(a_i · v)`, with
/// collision probability `1 − θ(u, v)/π` — the locality-sensitive family
/// for *cosine* similarity.
///
/// To reuse the `Z^M`/multiprobe machinery unchanged, the raw projection
/// emits the squashed value `g(a_i · v)` with `g(x) = x / (1 + |x|) ∈
/// (−1, 1)`: floor quantization then yields exactly the two sign codes
/// (`0` for `a_i · v ≥ 0`, `−1` otherwise), and the `Z^M` multi-probe
/// boundary-distance ordering flips the *least confident* bits (smallest
/// `|a_i · v|`) first — which is precisely SRP multi-probe. The packed-bit
/// view ([`SrpFamily::hash_packed`]) serves callers that want 64 codes per
/// word.
#[derive(Debug, Clone)]
pub struct SrpFamily {
    /// Row-major `m × dim` Gaussian projection matrix.
    a: Vec<f32>,
    m: usize,
    dim: usize,
}

/// Squash `ℝ → (−1, 1)` preserving sign and order; fixes the floor
/// quantizer's output to the two sign cells `{−1, 0}`.
#[inline]
fn squash(x: f32) -> f32 {
    x / (1.0 + x.abs())
}

impl SrpFamily {
    /// Samples a fresh family of `m` sign hashes over `dim`-dimensional
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `dim == 0`.
    pub fn sample(dim: usize, m: usize, seed: u64) -> Self {
        assert!(m > 0, "m must be positive");
        assert!(dim > 0, "dim must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..m * dim).map(|_| rng.sample(vecstore::synth::StdNormal)).collect();
        Self { a, m, dim }
    }

    /// Rebuilds from a structural dump (`b` must be all zeros, `w` 1.0).
    fn from_parts(base: FamilyParts) -> Result<Self, InvalidFamily> {
        let FamilyParts { a, b, w, dim } = base;
        let m = b.len();
        if m == 0 || dim == 0 {
            return Err(InvalidFamily("m and dim must be positive".into()));
        }
        if a.len() != m * dim {
            return Err(InvalidFamily(format!(
                "projection matrix has {} entries, want m * dim = {}",
                a.len(),
                m * dim
            )));
        }
        if a.iter().any(|x| !x.is_finite()) {
            return Err(InvalidFamily("non-finite projection entry".into()));
        }
        if b.iter().any(|&x| x != 0.0) || w != 1.0 {
            return Err(InvalidFamily("srp families carry no offsets or width".into()));
        }
        Ok(Self { a, m, dim })
    }

    /// Sign bits of `v`, packed 64 per word (bit `i` of word `i / 64` is
    /// set iff `a_i · v ≥ 0`). The Hamming distance between two packed
    /// codes estimates the angle between the vectors.
    pub fn hash_packed(&self, v: &[f32]) -> Vec<u64> {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        let mut words = vec![0u64; self.m.div_ceil(64)];
        for i in 0..self.m {
            let row = &self.a[i * self.dim..(i + 1) * self.dim];
            if vecstore::metric::dot(row, v) >= 0.0 {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }
}

impl Level2Family for SrpFamily {
    fn kind(&self) -> Level2Kind {
        Level2Kind::Srp
    }
    fn m(&self) -> usize {
        self.m
    }
    fn data_dim(&self) -> usize {
        self.dim
    }
    fn w(&self) -> f32 {
        1.0
    }
    fn project_data_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        assert_eq!(out.len(), self.m, "output length must equal m");
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.a[i * self.dim..(i + 1) * self.dim];
            *slot = squash(vecstore::metric::dot(row, v));
        }
    }
    fn to_parts(&self) -> Level2Parts {
        Level2Parts {
            kind: Level2PartsKind::Srp,
            base: FamilyParts { a: self.a.clone(), b: vec![0.0; self.m], w: 1.0, dim: self.dim },
        }
    }
}

// ---------------------------------------------------------------------------
// MIPS: asymmetric augmented-dimension transform
// ---------------------------------------------------------------------------

/// Neyshabur–Srebro asymmetric MIPS-to-`l_2` reduction wrapping the
/// p-stable core.
///
/// With `S` an upper bound on corpus norms, index rows embed as
/// `x̂ = [x/S ; √(1 − ‖x/S‖²)]` (unit norm by construction) and queries as
/// `q̂ = [q/‖q‖ ; 0]`, so `‖x̂ − q̂‖² = 2 − 2·(q · x)/(S‖q‖)`: Euclidean
/// nearest neighbors of `q̂` are exactly the maximum-inner-product rows for
/// `q`. Both sides then hash through an inner `(dim + 1)`-dimensional
/// p-stable family, which is what makes the whole bi-level machinery
/// (widths, quantizers, hierarchies) apply verbatim.
///
/// Rows inserted after build whose norm exceeds `S` are handled by clamping
/// the residual coordinate to zero — their embedding degrades gracefully to
/// the direction-only form instead of producing a NaN.
#[derive(Debug, Clone)]
pub struct MipsFamily {
    /// The p-stable family over the augmented `(dim + 1)`-dimensional space.
    inner: HashFamily,
    /// Corpus norm bound `S` (fixed at build; shared by every table).
    scale: f32,
    /// Data dimensionality (`inner.dim() - 1`).
    dim: usize,
}

impl MipsFamily {
    /// Samples a fresh family over `dim`-dimensional data with norm bound
    /// `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `dim == 0`, `w <= 0`, or `scale` is not positive
    /// and finite.
    pub fn sample(dim: usize, m: usize, w: f32, seed: u64, scale: f32) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive and finite");
        Self { inner: HashFamily::sample(dim + 1, m, w, seed), scale, dim }
    }

    /// Rebuilds from the inner family's dump plus the persisted scale.
    fn from_parts(base: FamilyParts, scale: f32) -> Result<Self, InvalidFamily> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(InvalidFamily(format!("mips scale {scale} must be positive and finite")));
        }
        if base.dim < 2 {
            return Err(InvalidFamily("mips inner family needs dim >= 2 (data dim + 1)".into()));
        }
        let inner = HashFamily::from_parts(base)?;
        let dim = inner.dim() - 1;
        Ok(Self { inner, scale, dim })
    }

    /// The norm bound `S` in effect.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Index-side embedding `x̂ = [x/S ; √(max(0, 1 − ‖x/S‖²))]`, written
    /// into `aug` (resized to `dim + 1`).
    pub fn embed_data(&self, v: &[f32], aug: &mut Vec<f32>) {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        aug.clear();
        aug.extend(v.iter().map(|x| x / self.scale));
        let n2 = vecstore::metric::dot(aug, aug);
        aug.push((1.0 - n2).max(0.0).sqrt());
    }

    /// Query-side embedding `q̂ = [q/‖q‖ ; 0]` (zero queries stay zero),
    /// written into `aug` (resized to `dim + 1`).
    pub fn embed_query(&self, v: &[f32], aug: &mut Vec<f32>) {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        aug.clear();
        let n = vecstore::metric::norm(v);
        if n > 0.0 {
            aug.extend(v.iter().map(|x| x / n));
        } else {
            aug.extend(std::iter::repeat_n(0.0, self.dim));
        }
        aug.push(0.0);
    }

    /// The inner augmented-dimension p-stable family.
    pub fn inner(&self) -> &HashFamily {
        &self.inner
    }

    /// Same projections and scale under a different bucket width (see
    /// [`HashFamily::with_w`]).
    pub fn with_w(&self, w: f32) -> Self {
        Self { inner: self.inner.with_w(w), scale: self.scale, dim: self.dim }
    }
}

impl Level2Family for MipsFamily {
    fn kind(&self) -> Level2Kind {
        Level2Kind::Mips
    }
    fn m(&self) -> usize {
        self.inner.m()
    }
    fn data_dim(&self) -> usize {
        self.dim
    }
    fn w(&self) -> f32 {
        self.inner.w()
    }
    fn project_data_into(&self, v: &[f32], out: &mut [f32]) {
        let mut aug = Vec::with_capacity(self.dim + 1);
        self.embed_data(v, &mut aug);
        self.inner.project_into(&aug, out);
    }
    fn project_query_into(&self, v: &[f32], out: &mut [f32]) {
        let mut aug = Vec::with_capacity(self.dim + 1);
        self.embed_query(v, &mut aug);
        self.inner.project_into(&aug, out);
    }
    fn to_parts(&self) -> Level2Parts {
        Level2Parts {
            kind: Level2PartsKind::Mips { scale: self.scale },
            base: self.inner.to_parts(),
        }
    }
}

// ---------------------------------------------------------------------------
// l_p: Chambers–Mallows–Stuck p-stable draws
// ---------------------------------------------------------------------------

/// The `l_p` p-stable family for `p ∈ (0, 2)` (Datar et al. generalized;
/// Nguyễn's `l_p` ANN): `h_i(v) = ⌊(a_i · v + b_i)/W⌋` with `a_i` drawn
/// i.i.d. from a standard symmetric p-stable distribution via the
/// Chambers–Mallows–Stuck transform (`p = 1` is the Cauchy family).
#[derive(Debug, Clone)]
pub struct LpStableFamily {
    /// Row-major `m × dim` p-stable projection matrix.
    a: Vec<f32>,
    /// Normalized per-component offsets in `[0, 1)` (see [`HashFamily`]).
    b: Vec<f32>,
    w: f32,
    /// Stability parameter in `(0, 2)`.
    p: f32,
    m: usize,
    dim: usize,
}

/// One standard symmetric p-stable draw (Chambers–Mallows–Stuck):
/// `X = sin(pθ)/cos(θ)^{1/p} · (cos((1−p)θ)/E)^{(1−p)/p}` with
/// `θ ~ U(−π/2, π/2)` and `E ~ Exp(1)`. At `p = 1` the tail factor is 1
/// and the draw reduces to `tan θ` — the Cauchy distribution.
fn cms_draw(rng: &mut StdRng, p: f64) -> f64 {
    let theta: f64 = rng.gen_range(-std::f64::consts::FRAC_PI_2..std::f64::consts::FRAC_PI_2);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let e = -u.ln();
    let lead = (p * theta).sin() / theta.cos().powf(1.0 / p);
    let tail = (((1.0 - p) * theta).cos() / e).powf((1.0 - p) / p);
    lead * tail
}

impl LpStableFamily {
    /// Samples a fresh `l_p` family.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `dim == 0`, `w <= 0`, or `p` is outside `(0, 2)`
    /// (use [`HashFamily`] for the Gaussian `p = 2` endpoint).
    pub fn sample(dim: usize, m: usize, w: f32, p: f32, seed: u64) -> Self {
        assert!(m > 0, "m must be positive");
        assert!(dim > 0, "dim must be positive");
        assert!(w > 0.0 && w.is_finite(), "w must be positive and finite");
        assert!(p > 0.0 && p < 2.0, "stability parameter must lie in (0, 2)");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..m * dim).map(|_| cms_draw(&mut rng, p as f64) as f32).collect();
        let b = (0..m).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        Self { a, b, w, p, m, dim }
    }

    /// Rebuilds from a structural dump plus the persisted stability
    /// parameter.
    fn from_parts(base: FamilyParts, p: f32) -> Result<Self, InvalidFamily> {
        if !(p > 0.0 && p < 2.0) {
            return Err(InvalidFamily(format!("stability parameter {p} must lie in (0, 2)")));
        }
        let FamilyParts { a, b, w, dim } = base;
        let m = b.len();
        if m == 0 || dim == 0 {
            return Err(InvalidFamily("m and dim must be positive".into()));
        }
        if a.len() != m * dim {
            return Err(InvalidFamily(format!(
                "projection matrix has {} entries, want m * dim = {}",
                a.len(),
                m * dim
            )));
        }
        if !(w > 0.0 && w.is_finite()) {
            return Err(InvalidFamily(format!("width {w} must be positive and finite")));
        }
        if a.iter().any(|x| !x.is_finite()) {
            return Err(InvalidFamily("non-finite projection entry".into()));
        }
        if b.iter().any(|x| !(0.0..1.0).contains(x)) {
            return Err(InvalidFamily("offset outside the normalized [0, 1) cell".into()));
        }
        Ok(Self { a, b, w, p, m, dim })
    }

    /// The stability parameter `p`.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Same projections and (rescaled) offsets under a different width
    /// (see [`HashFamily::with_w`]).
    pub fn with_w(&self, w: f32) -> Self {
        assert!(w > 0.0 && w.is_finite(), "w must be positive and finite");
        Self { a: self.a.clone(), b: self.b.clone(), w, ..*self }
    }
}

impl Level2Family for LpStableFamily {
    fn kind(&self) -> Level2Kind {
        Level2Kind::Lp
    }
    fn m(&self) -> usize {
        self.m
    }
    fn data_dim(&self) -> usize {
        self.dim
    }
    fn w(&self) -> f32 {
        self.w
    }
    fn project_data_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        assert_eq!(out.len(), self.m, "output length must equal m");
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.a[i * self.dim..(i + 1) * self.dim];
            *slot = vecstore::metric::dot(row, v) / self.w + self.b[i];
        }
    }
    fn to_parts(&self) -> Level2Parts {
        Level2Parts {
            kind: Level2PartsKind::Lp { p: self.p },
            base: FamilyParts { a: self.a.clone(), b: self.b.clone(), w: self.w, dim: self.dim },
        }
    }
}

impl Level2Family for HashFamily {
    fn kind(&self) -> Level2Kind {
        Level2Kind::PStable
    }
    fn m(&self) -> usize {
        HashFamily::m(self)
    }
    fn data_dim(&self) -> usize {
        HashFamily::dim(self)
    }
    fn w(&self) -> f32 {
        HashFamily::w(self)
    }
    fn project_data_into(&self, v: &[f32], out: &mut [f32]) {
        self.project_into(v, out);
    }
    fn to_parts(&self) -> Level2Parts {
        Level2Parts { kind: Level2PartsKind::PStable, base: HashFamily::to_parts(self) }
    }
}

// ---------------------------------------------------------------------------
// The closed dispatch enum
// ---------------------------------------------------------------------------

/// A level-2 family as held by index hot paths: closed-enum dispatch (one
/// match, no virtual call per row), with [`Level2::as_family`] bridging to
/// the object-safe trait where dynamic access is wanted.
#[derive(Debug, Clone)]
pub enum Level2 {
    /// Gaussian p-stable `l_2` family.
    PStable(HashFamily),
    /// Sign random projections (cosine).
    Srp(SrpFamily),
    /// Asymmetric MIPS transform.
    Mips(MipsFamily),
    /// `l_p` p-stable draws.
    Lp(LpStableFamily),
}

impl Level2 {
    /// Which family this is.
    pub fn kind(&self) -> Level2Kind {
        self.as_family().kind()
    }

    /// Number of component hashes `M`.
    pub fn m(&self) -> usize {
        self.as_family().m()
    }

    /// Data-side input dimensionality.
    pub fn data_dim(&self) -> usize {
        self.as_family().data_dim()
    }

    /// Bucket width `W` (1.0 for SRP).
    pub fn w(&self) -> f32 {
        self.as_family().w()
    }

    /// The family as a trait object (the object-safe API surface).
    pub fn as_family(&self) -> &dyn Level2Family {
        match self {
            Level2::PStable(f) => f,
            Level2::Srp(f) => f,
            Level2::Mips(f) => f,
            Level2::Lp(f) => f,
        }
    }

    /// The underlying p-stable family, when this is one.
    pub fn as_pstable(&self) -> Option<&HashFamily> {
        match self {
            Level2::PStable(f) => Some(f),
            _ => None,
        }
    }

    /// Same projections under a different bucket width. SRP carries no
    /// width and returns itself unchanged.
    pub fn with_w(&self, w: f32) -> Self {
        match self {
            Level2::PStable(f) => Level2::PStable(f.with_w(w)),
            Level2::Srp(f) => Level2::Srp(f.clone()),
            Level2::Mips(f) => Level2::Mips(f.with_w(w)),
            Level2::Lp(f) => Level2::Lp(f.with_w(w)),
        }
    }

    /// Structural dump; rebuild with [`level2_from_parts`].
    pub fn to_parts(&self) -> Level2Parts {
        self.as_family().to_parts()
    }
}

impl ProjectionScratch {
    /// Projects a *corpus* vector through `family` (index-side embedding
    /// for asymmetric families), returning the raw projection slice, valid
    /// until the next call.
    ///
    /// For [`Level2::PStable`] this is exactly
    /// [`ProjectionScratch::project`], so the `l_2` path's raw values (and
    /// every code derived from them) are bit-identical to the
    /// pre-`Level2` pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `family.m()` differs from the scratch size.
    pub fn project_data<'s>(&'s mut self, family: &Level2, v: &[f32]) -> &'s [f32] {
        match family {
            Level2::PStable(f) => self.project(f, v),
            Level2::Mips(f) => {
                let (raw, aug) = self.raw_and_aug();
                f.embed_data(v, aug);
                f.inner().project_into(aug, raw);
                &*raw
            }
            other => {
                let raw = self.raw_mut(other.m());
                other.as_family().project_data_into(v, raw);
                &*raw
            }
        }
    }

    /// Projects a *query* vector through `family` (query-side embedding for
    /// asymmetric families). Identical to
    /// [`ProjectionScratch::project_data`] for symmetric families.
    ///
    /// # Panics
    ///
    /// Panics if `family.m()` differs from the scratch size.
    pub fn project_query<'s>(&'s mut self, family: &Level2, v: &[f32]) -> &'s [f32] {
        match family {
            Level2::Mips(f) => {
                let (raw, aug) = self.raw_and_aug();
                f.embed_query(v, aug);
                f.inner().project_into(aug, raw);
                &*raw
            }
            other => self.project_data(other, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::quantize_zm;

    fn vecs(dim: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect()).collect()
    }

    #[test]
    fn pstable_level2_matches_hash_family_bitwise() {
        let f = HashFamily::sample(16, 8, 3.0, 7);
        let l2 = Level2::PStable(f.clone());
        let mut scratch = ProjectionScratch::new(8);
        for v in vecs(16, 10, 1) {
            let want = f.project(&v);
            assert_eq!(scratch.project_data(&l2, &v), want.as_slice());
            assert_eq!(scratch.project_query(&l2, &v), want.as_slice());
        }
    }

    #[test]
    fn srp_floor_codes_are_signs() {
        let f = SrpFamily::sample(12, 16, 3);
        let mut out = vec![0.0; 16];
        for v in vecs(12, 20, 2) {
            f.project_data_into(&v, &mut out);
            let code = quantize_zm(&out);
            let packed = f.hash_packed(&v);
            for (i, &c) in code.iter().enumerate() {
                assert!(c == 0 || c == -1, "srp code component {c} outside sign cells");
                let bit = packed[i / 64] >> (i % 64) & 1;
                assert_eq!(bit == 1, c == 0, "packed bit and floor code disagree at {i}");
            }
        }
    }

    #[test]
    fn srp_squash_preserves_low_confidence_ordering() {
        // Boundary distance of the squashed value must be monotone in
        // |a·v|: the multiprobe machinery flips least-confident bits first.
        assert!(squash(0.1).abs() < squash(0.5).abs());
        assert!((squash(3.0) - 1.0).abs() < 1.0 - squash(0.5));
        assert!(squash(-0.2) > -1.0 && squash(-0.2) < 0.0);
    }

    #[test]
    fn srp_parallel_vectors_collide_antipodal_differ() {
        let f = SrpFamily::sample(8, 32, 11);
        let v: Vec<f32> = (0..8).map(|i| (i as f32).sin() + 0.3).collect();
        let scaled: Vec<f32> = v.iter().map(|x| x * 7.5).collect();
        let flipped: Vec<f32> = v.iter().map(|x| -x).collect();
        assert_eq!(f.hash_packed(&v), f.hash_packed(&scaled), "cosine hashing is scale-free");
        let a = f.hash_packed(&v);
        let b = f.hash_packed(&flipped);
        let hamming: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(hamming, 32, "antipodal vectors flip every sign bit");
    }

    #[test]
    fn mips_embeddings_are_asymmetric_and_unit_norm() {
        let f = MipsFamily::sample(6, 4, 2.0, 17, 10.0);
        let v: Vec<f32> = vec![1.0, -2.0, 3.0, 0.5, -1.5, 2.5];
        let mut data = Vec::new();
        let mut query = Vec::new();
        f.embed_data(&v, &mut data);
        f.embed_query(&v, &mut query);
        assert_eq!(data.len(), 7);
        assert_eq!(query.len(), 7);
        let n_data = vecstore::metric::norm(&data);
        let n_query = vecstore::metric::norm(&query);
        assert!((n_data - 1.0).abs() < 1e-5, "index-side embedding is unit norm, got {n_data}");
        assert!((n_query - 1.0).abs() < 1e-5, "query-side embedding is unit norm, got {n_query}");
        assert_eq!(query[6], 0.0, "query residual coordinate is zero");
        assert!(data[6] > 0.0, "interior row keeps a positive residual");
        assert_ne!(data, query, "the two sides embed differently");
    }

    #[test]
    fn mips_overlong_row_clamps_residual() {
        let f = MipsFamily::sample(2, 4, 2.0, 19, 1.0);
        let mut aug = Vec::new();
        f.embed_data(&[3.0, 4.0], &mut aug); // norm 5 > scale 1
        assert_eq!(aug[2], 0.0, "residual clamps to zero instead of NaN");
        assert!(aug.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn mips_zero_query_embeds_to_zero() {
        let f = MipsFamily::sample(3, 4, 2.0, 23, 2.0);
        let mut aug = Vec::new();
        f.embed_query(&[0.0, 0.0, 0.0], &mut aug);
        assert_eq!(aug, vec![0.0; 4]);
    }

    #[test]
    fn mips_ranking_prefers_larger_inner_product() {
        // Under the augmented embedding, the l2-closest row to a query
        // embedding is the row with the largest inner product.
        let f = MipsFamily::sample(4, 8, 1.0, 29, 5.0);
        let q = [1.0f32, 0.5, -0.5, 2.0];
        let rows = vecs(4, 30, 31);
        let mut emb_q = Vec::new();
        f.embed_query(&q, &mut emb_q);
        let best_ip = rows
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                vecstore::metric::dot(&q, a).total_cmp(&vecstore::metric::dot(&q, b))
            })
            .map(|(i, _)| i)
            .unwrap();
        let mut aug = Vec::new();
        let closest = rows
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                f.embed_data(a, &mut aug);
                let da = vecstore::metric::squared_l2(&emb_q, &aug);
                f.embed_data(b, &mut aug);
                let db = vecstore::metric::squared_l2(&emb_q, &aug);
                da.total_cmp(&db)
            })
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(best_ip, closest);
    }

    #[test]
    fn lp_cauchy_draw_reduces_to_tan_theta() {
        // At p = 1 the CMS tail factor is exactly 1, so hashes are Cauchy.
        let fam = LpStableFamily::sample(8, 4, 2.0, 1.0, 37);
        assert_eq!(fam.p(), 1.0);
        // Cauchy draws have heavy tails; over 32 entries at least one
        // should exceed the Gaussian-typical range.
        let parts = fam.to_parts();
        assert!(parts.base.a.iter().any(|x| x.abs() > 3.0), "no heavy-tail draw in {parts:?}");
    }

    #[test]
    fn lp_projection_matches_manual_dot() {
        let fam = LpStableFamily::sample(10, 6, 2.5, 0.5, 41);
        let parts = fam.to_parts();
        let v: Vec<f32> = (0..10).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut out = vec![0.0; 6];
        fam.project_data_into(&v, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let row = &parts.base.a[i * 10..(i + 1) * 10];
            let want = vecstore::metric::dot(row, &v) / fam.w() + parts.base.b[i];
            assert_eq!(got, want, "component {i}");
        }
    }

    #[test]
    fn with_w_rescales_lp_and_mips() {
        let lp = LpStableFamily::sample(8, 4, 2.0, 1.5, 43);
        assert_eq!(lp.with_w(4.0).w(), 4.0);
        let mips = MipsFamily::sample(8, 4, 2.0, 47, 3.0);
        let re = mips.with_w(4.0);
        assert_eq!(Level2Family::w(&re), 4.0);
        assert_eq!(re.scale(), 3.0);
    }

    #[test]
    fn every_family_round_trips_through_parts() {
        let families: Vec<Level2> = vec![
            Level2::PStable(HashFamily::sample(12, 6, 2.0, 51)),
            Level2::Srp(SrpFamily::sample(12, 6, 53)),
            Level2::Mips(MipsFamily::sample(12, 6, 2.0, 57, 4.0)),
            Level2::Lp(LpStableFamily::sample(12, 6, 2.0, 1.5, 59)),
        ];
        let mut scratch = ProjectionScratch::new(6);
        let mut scratch2 = ProjectionScratch::new(6);
        for fam in &families {
            let back = level2_from_parts(fam.to_parts()).unwrap();
            assert_eq!(back.kind(), fam.kind());
            assert_eq!((back.m(), back.data_dim(), back.w()), (fam.m(), fam.data_dim(), fam.w()));
            for v in vecs(12, 5, 61) {
                assert_eq!(
                    scratch.project_data(fam, &v),
                    scratch2.project_data(&back, &v),
                    "data-side projection changed across round trip ({:?})",
                    fam.kind()
                );
                assert_eq!(
                    scratch.project_query(fam, &v),
                    scratch2.project_query(&back, &v),
                    "query-side projection changed across round trip ({:?})",
                    fam.kind()
                );
            }
        }
    }

    #[test]
    fn tampered_parts_are_rejected() {
        let srp = SrpFamily::sample(8, 4, 63).to_parts();
        let mut bad = srp.clone();
        bad.base.b[0] = 0.5;
        assert!(level2_from_parts(bad).is_err(), "srp with offsets");

        let mips = MipsFamily::sample(8, 4, 2.0, 67, 2.0).to_parts();
        let mut bad = mips.clone();
        bad.kind = Level2PartsKind::Mips { scale: -1.0 };
        assert!(level2_from_parts(bad).is_err(), "negative mips scale");

        let lp = LpStableFamily::sample(8, 4, 2.0, 0.5, 71).to_parts();
        let mut bad = lp.clone();
        bad.kind = Level2PartsKind::Lp { p: 2.5 };
        assert!(level2_from_parts(bad).is_err(), "p outside (0, 2)");

        assert!(level2_from_parts(srp).is_ok());
        assert!(level2_from_parts(mips).is_ok());
        assert!(level2_from_parts(lp).is_ok());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Level2Kind::PStable.name(), "pstable");
        assert_eq!(Level2Kind::Srp.name(), "srp");
        assert_eq!(Level2Kind::Mips.name(), "mips");
        assert_eq!(Level2Kind::Lp.name(), "lp");
    }

    #[test]
    fn scratch_mips_path_matches_trait_object_path() {
        let fam = Level2::Mips(MipsFamily::sample(10, 5, 1.5, 73, 6.0));
        let mut scratch = ProjectionScratch::new(5);
        let mut out = vec![0.0; 5];
        for v in vecs(10, 6, 79) {
            fam.as_family().project_data_into(&v, &mut out);
            assert_eq!(scratch.project_data(&fam, &v), out.as_slice());
            fam.as_family().project_query_into(&v, &mut out);
            assert_eq!(scratch.project_query(&fam, &v), out.as_slice());
        }
    }
}
