//! LSH hash tables over `Z^M` codes.
//!
//! Unlike ordinary hash tables, an LSH table *wants* collisions: every bucket
//! collects the dataset items sharing one lattice cell (Section IV-B1). The
//! table keeps the full `M`-dimensional code as the key (the Morton hierarchy
//! needs it) and the item ids as the value.

use crate::family::LshCode;
use std::collections::HashMap;

/// A single LSH hash table: code → ids of the items hashing to that cell.
#[derive(Debug, Clone, Default)]
pub struct LshTable {
    buckets: HashMap<Box<[i32]>, Vec<u32>>,
}

impl LshTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from parallel slices of codes and item ids.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn build(codes: &[LshCode], ids: &[u32]) -> Self {
        assert_eq!(codes.len(), ids.len(), "codes and ids must be parallel");
        let mut table = Self::new();
        for (code, &id) in codes.iter().zip(ids) {
            table.insert(code, id);
        }
        table
    }

    /// Inserts one item into its bucket.
    pub fn insert(&mut self, code: &[i32], id: u32) {
        self.buckets.entry(code.into()).or_default().push(id);
    }

    /// Removes one occurrence of `id` from the bucket keyed by `code`,
    /// dropping the bucket entirely when it empties (so `sorted_codes` and
    /// `num_buckets` match a table that never held the item). Returns
    /// whether the id was present.
    pub fn remove(&mut self, code: &[i32], id: u32) -> bool {
        let Some(ids) = self.buckets.get_mut(code) else { return false };
        let Some(pos) = ids.iter().position(|&x| x == id) else { return false };
        ids.remove(pos);
        if ids.is_empty() {
            self.buckets.remove(code);
        }
        true
    }

    /// The ids of the bucket exactly matching `code`, or an empty slice.
    pub fn bucket(&self, code: &[i32]) -> &[u32] {
        self.buckets.get(code).map_or(&[], |v| v.as_slice())
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of stored items.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether the table holds no items.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Iterates over `(code, ids)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[i32], &[u32])> {
        self.buckets.iter().map(|(k, v)| (k.as_ref(), v.as_slice()))
    }

    /// All distinct codes, sorted lexicographically (deterministic order for
    /// hierarchy construction).
    pub fn sorted_codes(&self) -> Vec<Box<[i32]>> {
        let mut codes: Vec<Box<[i32]>> = self.buckets.keys().cloned().collect();
        codes.sort_unstable();
        codes
    }

    /// Size of the largest bucket (0 for an empty table).
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::HashFamily;
    use vecstore::synth;

    #[test]
    fn insert_and_lookup() {
        let mut t = LshTable::new();
        t.insert(&[1, 2], 10);
        t.insert(&[1, 2], 11);
        t.insert(&[3, 4], 12);
        assert_eq!(t.bucket(&[1, 2]), &[10, 11]);
        assert_eq!(t.bucket(&[3, 4]), &[12]);
        assert_eq!(t.bucket(&[9, 9]), &[] as &[u32]);
        assert_eq!(t.num_buckets(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn build_from_dataset_covers_every_item() {
        let ds = synth::gaussian(8, 100, 1.0, 3);
        let f = HashFamily::sample(8, 4, 2.0, 5);
        let codes: Vec<_> = ds.iter().map(|r| f.hash_zm(r)).collect();
        let ids: Vec<u32> = (0..100).collect();
        let t = LshTable::build(&codes, &ids);
        assert_eq!(t.len(), 100);
        // Every item is findable in the bucket of its own code.
        for (i, code) in codes.iter().enumerate() {
            assert!(t.bucket(code).contains(&(i as u32)), "item {i}");
        }
    }

    #[test]
    fn sorted_codes_are_sorted_and_unique() {
        let mut t = LshTable::new();
        t.insert(&[2, 0], 0);
        t.insert(&[1, 5], 1);
        t.insert(&[2, 0], 2);
        let codes = t.sorted_codes();
        assert_eq!(codes.len(), 2);
        assert!(codes[0].as_ref() < codes[1].as_ref());
    }

    #[test]
    fn max_bucket_len_tracks_biggest() {
        let mut t = LshTable::new();
        assert_eq!(t.max_bucket_len(), 0);
        t.insert(&[0], 0);
        t.insert(&[0], 1);
        t.insert(&[1], 2);
        assert_eq!(t.max_bucket_len(), 2);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn build_length_mismatch_panics() {
        let _ = LshTable::build(&[vec![0]], &[1, 2]);
    }
}
