//! The p-stable (`l_2`) hash family of Datar et al.
//!
//! Each of the `M` component functions is `h_i(v) = ⌊(a_i · v + b_i) / W⌋`
//! with `a_i` i.i.d. standard Gaussian and `b_i ~ U[0, W)` (Equation 2 of
//! the paper). `M` and `W` trade off cell dimension and size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vecstore::synth::StdNormal;

/// A `Z^M` LSH code: one lattice coordinate per component hash.
pub type LshCode = Vec<i32>;

/// One `M`-dimensional hash function `H(v) = <h_1(v), …, h_M(v)>`.
///
/// The family keeps its projection matrix in row-major order (`m × dim`) so
/// hashing a vector is `m` dot products over contiguous memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashFamily {
    /// Row-major `m × dim` Gaussian projection matrix.
    a: Vec<f32>,
    /// Per-component offsets, *normalized* to cell units: `b_norm ∈ [0, 1)`
    /// with the true offset being `b_norm · w`. Storing the normalized form
    /// keeps the offset uniform over the cell for every width `with_w`
    /// produces.
    b: Vec<f32>,
    w: f32,
    m: usize,
    dim: usize,
}

impl HashFamily {
    /// Samples a fresh family of `m` hash functions over `dim`-dimensional
    /// input with bucket width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `dim == 0`, or `w <= 0`.
    pub fn sample(dim: usize, m: usize, w: f32, seed: u64) -> Self {
        assert!(m > 0, "m must be positive");
        assert!(dim > 0, "dim must be positive");
        assert!(w > 0.0 && w.is_finite(), "w must be positive and finite");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..m * dim).map(|_| rng.sample(StdNormal)).collect();
        let b = (0..m).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        Self { a, b, w, m, dim }
    }

    /// Number of component hashes `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Input dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bucket width `W`.
    #[inline]
    pub fn w(&self) -> f32 {
        self.w
    }

    /// Returns a copy of this family with a different bucket width but the
    /// *same* projections and (rescaled) offsets.
    ///
    /// Keeping projections fixed while sweeping `W` is exactly what the
    /// paper's experiments do ("for each L, we increase the bucket size W
    /// gradually"), and it isolates the variance contribution of `W` from
    /// that of the random directions.
    pub fn with_w(&self, w: f32) -> Self {
        assert!(w > 0.0 && w.is_finite(), "w must be positive and finite");
        // `a` and the normalized `b` are kept verbatim: the true offset
        // `b · w` rescales with the width, staying uniform over the cell.
        Self { a: self.a.clone(), b: self.b.clone(), w, m: self.m, dim: self.dim }
    }

    /// Raw (unquantized) per-component values `(a_i · v + b_i) / W`, written
    /// into `out` (`out.len() == m`).
    ///
    /// Quantizers build on this: `Z^M` floors each entry; the E8 decoder
    /// snaps blocks of 8 entries to the nearest E8 lattice point.
    pub fn project_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        assert_eq!(out.len(), self.m, "output length must equal m");
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.a[i * self.dim..(i + 1) * self.dim];
            *slot = vecstore::metric::dot(row, v) / self.w + self.b[i];
        }
    }

    /// Raw projection, allocating variant of [`Self::project_into`].
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.m];
        self.project_into(v, &mut out);
        out
    }

    /// The `Z^M` LSH code `H(v)` (Equation 1): floor of each raw projection.
    pub fn hash_zm(&self, v: &[f32]) -> LshCode {
        self.project(v).into_iter().map(|x| x.floor() as i32).collect()
    }

    /// Dumps the family's structure for persistence.
    pub fn to_parts(&self) -> FamilyParts {
        FamilyParts { a: self.a.clone(), b: self.b.clone(), w: self.w, dim: self.dim }
    }

    /// Rebuilds a family from a structural dump, validating every invariant
    /// [`HashFamily::sample`] establishes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFamily`] on shape mismatches, non-finite values, a
    /// non-positive width, or offsets outside the normalized `[0, 1)` cell.
    pub fn from_parts(parts: FamilyParts) -> Result<Self, InvalidFamily> {
        let FamilyParts { a, b, w, dim } = parts;
        let m = b.len();
        if m == 0 || dim == 0 {
            return Err(InvalidFamily("m and dim must be positive".into()));
        }
        if a.len() != m * dim {
            return Err(InvalidFamily(format!(
                "projection matrix has {} entries, want m * dim = {}",
                a.len(),
                m * dim
            )));
        }
        if !(w > 0.0 && w.is_finite()) {
            return Err(InvalidFamily(format!("width {w} must be positive and finite")));
        }
        if a.iter().any(|x| !x.is_finite()) {
            return Err(InvalidFamily("non-finite projection entry".into()));
        }
        if b.iter().any(|x| !(0.0..1.0).contains(x)) {
            return Err(InvalidFamily("offset outside the normalized [0, 1) cell".into()));
        }
        Ok(Self { a, b, w, m, dim })
    }
}

/// Owned structural dump of a [`HashFamily`]: the `m × dim` projection
/// matrix, the normalized offsets (`m` of them — `m` itself is implied),
/// the width, and the input dimension.
#[derive(Debug, Clone)]
pub struct FamilyParts {
    /// Row-major `m × dim` projection matrix.
    pub a: Vec<f32>,
    /// Normalized per-component offsets in `[0, 1)`.
    pub b: Vec<f32>,
    /// Bucket width `W`.
    pub w: f32,
    /// Input dimensionality.
    pub dim: usize,
}

/// A structural dump failed [`HashFamily::from_parts`] validation.
#[derive(Debug)]
pub struct InvalidFamily(pub String);

impl std::fmt::Display for InvalidFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid hash family parts: {}", self.0)
    }
}

impl std::error::Error for InvalidFamily {}

/// Reusable projection buffer: the per-worker scratch state of the parallel
/// candidate-generation pipeline.
///
/// Probing hashes one query against many tables; allocating an `m`-length
/// buffer per hash (or threading a caller-owned `&mut [f32]` through every
/// probe routine) couples callers to the projection width. A
/// `ProjectionScratch` owns that buffer instead: create one per worker
/// thread, then [`project`](Self::project) borrows the raw projection for
/// immediate quantization. Buffers hold no query state between calls, so
/// reuse never changes results.
#[derive(Debug, Clone)]
pub struct ProjectionScratch {
    raw: Vec<f32>,
}

impl ProjectionScratch {
    /// Scratch sized for families with `m` component hashes.
    pub fn new(m: usize) -> Self {
        Self { raw: vec![0.0; m] }
    }

    /// Number of component hashes this scratch is sized for.
    #[inline]
    pub fn m(&self) -> usize {
        self.raw.len()
    }

    /// Projects `v` through `family` and returns the raw projection slice,
    /// valid until the next call.
    ///
    /// # Panics
    ///
    /// Panics if `family.m()` differs from the scratch size.
    pub fn project<'s>(&'s mut self, family: &HashFamily, v: &[f32]) -> &'s [f32] {
        family.project_into(v, &mut self.raw);
        &self.raw
    }
}

/// Floors a raw projection vector to a `Z^M` code.
pub fn quantize_zm(raw: &[f32]) -> LshCode {
    raw.iter().map(|x| x.floor() as i32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        let f = HashFamily::sample(16, 8, 4.0, 1);
        let v: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(f.hash_zm(&v), f.hash_zm(&v));
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let v: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let f1 = HashFamily::sample(16, 8, 4.0, 1);
        let f2 = HashFamily::sample(16, 8, 4.0, 2);
        assert_ne!(f1.hash_zm(&v), f2.hash_zm(&v));
    }

    #[test]
    fn code_has_m_components() {
        let f = HashFamily::sample(10, 6, 2.0, 3);
        assert_eq!(f.hash_zm(&[0.5; 10]).len(), 6);
    }

    #[test]
    fn nearby_points_collide_more_than_distant_ones() {
        let f = HashFamily::sample(8, 4, 8.0, 7);
        let base = vec![0.0f32; 8];
        let near = vec![0.05f32; 8];
        let far = vec![30.0f32; 8];
        let hb = f.hash_zm(&base);
        let matches = |h: &LshCode| h.iter().zip(&hb).filter(|(a, b)| a == b).count();
        assert!(matches(&f.hash_zm(&near)) > matches(&f.hash_zm(&far)));
    }

    #[test]
    fn larger_w_means_coarser_buckets() {
        // With a huge W every point in a small ball shares one bucket.
        let f = HashFamily::sample(4, 4, 1e6, 5);
        let h0 = f.hash_zm(&[0.0; 4]);
        let h1 = f.hash_zm(&[1.0, -1.0, 0.5, 2.0]);
        assert_eq!(h0, h1);
    }

    #[test]
    fn with_w_preserves_projection_directions() {
        let f = HashFamily::sample(8, 4, 2.0, 11);
        let g = f.with_w(4.0);
        let v = vec![1.0f32; 8];
        // The data-dependent part of the raw projection scales exactly by
        // the width ratio; the normalized offset is width-invariant.
        let zero = vec![0.0f32; 8];
        let (pf, pg) = (f.project(&v), g.project(&v));
        let (of, og) = (f.project(&zero), g.project(&zero));
        for ((x, y), (bx, by)) in pf.iter().zip(&pg).zip(of.iter().zip(&og)) {
            assert!((bx - by).abs() < 1e-6, "offset must be width-invariant");
            assert!(((x - bx) / (y - by) - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn huge_w_collapses_everything_into_one_bucket() {
        // With W far above the data scale, every point of a bounded set must
        // share a single cell — this is what makes exhaustive-width search
        // exact. Requires the offset to stay interior to the cell.
        let f = HashFamily::sample(8, 8, 1.0, 3).with_w(1e7);
        let a = f.hash_zm(&[5.0f32, -5.0, 3.0, 0.0, -2.0, 7.0, 1.0, -9.0]);
        let b = f.hash_zm(&[-100.0f32, 50.0, 0.0, 30.0, -80.0, 10.0, 60.0, -40.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn raw_projection_floor_equals_code() {
        let f = HashFamily::sample(12, 8, 3.0, 13);
        let v: Vec<f32> = (0..12).map(|i| (i as f32).cos() * 5.0).collect();
        assert_eq!(quantize_zm(&f.project(&v)), f.hash_zm(&v));
    }

    #[test]
    fn scratch_projection_matches_allocating_path() {
        let f = HashFamily::sample(12, 8, 3.0, 17);
        let mut scratch = ProjectionScratch::new(f.m());
        let a: Vec<f32> = (0..12).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..12).map(|i| (i as f32) * 0.3 - 1.0).collect();
        // Reusing the buffer across different inputs leaves no residue.
        assert_eq!(scratch.project(&f, &a), f.project(&a).as_slice());
        assert_eq!(scratch.project(&f, &b), f.project(&b).as_slice());
        assert_eq!(scratch.project(&f, &a), f.project(&a).as_slice());
        assert_eq!(scratch.m(), 8);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_dim_panics() {
        let f = HashFamily::sample(8, 4, 2.0, 1);
        let _ = f.hash_zm(&[0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "w must be positive")]
    fn zero_w_panics() {
        let _ = HashFamily::sample(8, 4, 0.0, 1);
    }

    #[test]
    fn parts_roundtrip_hashes_identically() {
        let f = HashFamily::sample(12, 6, 2.5, 23);
        let g = HashFamily::from_parts(f.to_parts()).unwrap();
        let v: Vec<f32> = (0..12).map(|i| (i as f32).sin() * 3.0).collect();
        assert_eq!(f.hash_zm(&v), g.hash_zm(&v));
        assert_eq!(f.project(&v), g.project(&v));
        assert_eq!((f.m(), f.dim(), f.w()), (g.m(), g.dim(), g.w()));
    }

    #[test]
    fn tampered_parts_are_rejected() {
        let f = HashFamily::sample(8, 4, 2.0, 29);

        let mut p = f.to_parts();
        p.a.pop();
        assert!(HashFamily::from_parts(p).is_err(), "matrix shape");

        let mut p = f.to_parts();
        p.b[0] = 1.5;
        assert!(HashFamily::from_parts(p).is_err(), "offset out of cell");

        let mut p = f.to_parts();
        p.w = -1.0;
        assert!(HashFamily::from_parts(p).is_err(), "negative width");

        let mut p = f.to_parts();
        p.a[3] = f32::NAN;
        assert!(HashFamily::from_parts(p).is_err(), "NaN projection");

        assert!(HashFamily::from_parts(f.to_parts()).is_ok(), "untampered parts load");
    }
}
