//! The p-stable (`l_2`) hash family of Datar et al.
//!
//! Each of the `M` component functions is `h_i(v) = ⌊(a_i · v + b_i) / W⌋`
//! with `a_i` i.i.d. standard Gaussian and `b_i ~ U[0, W)` (Equation 2 of
//! the paper). `M` and `W` trade off cell dimension and size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vecstore::synth::StdNormal;

/// A `Z^M` LSH code: one lattice coordinate per component hash.
pub type LshCode = Vec<i32>;

/// How the projection matrix is populated.
///
/// `Dense` is the paper's family: every entry i.i.d. standard Gaussian, so
/// hashing costs `O(d · m)` multiply-adds per vector. `Sparse` keeps only
/// `nnz` Gaussian entries per row (scaled by `sqrt(d / nnz)` to preserve the
/// projection variance, after Li, Hastie & Church's very sparse random
/// projections), cutting hashing toward `O(nnz · m)` — with `nnz` a small
/// constant, effectively `O(d)` total across a typical `m ≈ d`-scale family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Projection {
    /// Fully dense Gaussian matrix (Equation 2 of the paper).
    #[default]
    Dense,
    /// `nnz` Gaussian entries per row on a random support, rest structurally
    /// zero. Must satisfy `1 <= nnz <= dim`.
    Sparse {
        /// Nonzero entries per projection row.
        nnz: usize,
    },
}

/// One `M`-dimensional hash function `H(v) = <h_1(v), …, h_M(v)>`.
///
/// The family keeps its projection matrix in row-major order (`m × dim`) so
/// hashing a vector is `m` dot products over contiguous memory. Families
/// whose matrix is mostly structural zeros (see [`Projection::Sparse`])
/// additionally carry a CSR view of the nonzeros, derived from `a` and never
/// persisted: [`Self::from_parts`] rebuilds it, so a round-tripped sparse
/// family keeps its cheap hashing path automatically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashFamily {
    /// Row-major `m × dim` Gaussian projection matrix. For sparse families
    /// this still holds the full matrix (zeros included) — persistence,
    /// validation, and the dense reference path all see one representation.
    a: Vec<f32>,
    /// Per-component offsets, *normalized* to cell units: `b_norm ∈ [0, 1)`
    /// with the true offset being `b_norm · w`. Storing the normalized form
    /// keeps the offset uniform over the cell for every width `with_w`
    /// produces.
    b: Vec<f32>,
    w: f32,
    m: usize,
    dim: usize,
    /// CSR view of `a`'s nonzeros, present only when `a` is at least half
    /// zeros. Derived, never persisted.
    sparse: Option<SparseView>,
}

/// CSR view over the nonzeros of the projection matrix: `cols[offsets[i]..
/// offsets[i + 1]]` are row `i`'s nonzero columns in ascending order, with
/// matching `vals`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SparseView {
    /// Row start offsets into `cols`/`vals`; length `m + 1`.
    offsets: Vec<u32>,
    /// Ascending column indices of nonzero entries, per row.
    cols: Vec<u32>,
    /// Matrix values at those entries, bit-identical to the dense `a`.
    vals: Vec<f32>,
}

impl SparseView {
    /// Builds the view from a dense row-major matrix, or `None` when fewer
    /// than half the entries are zero (the dense kernel wins there, and a
    /// sampled Gaussian matrix essentially never contains exact zeros).
    fn derive(a: &[f32], m: usize, dim: usize) -> Option<Self> {
        let nnz = a.iter().filter(|x| **x != 0.0).count();
        if nnz * 2 > a.len() {
            return None;
        }
        let mut offsets = Vec::with_capacity(m + 1);
        let mut cols = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        offsets.push(0u32);
        for row in a.chunks_exact(dim) {
            for (c, &x) in row.iter().enumerate() {
                if x != 0.0 {
                    cols.push(c as u32);
                    vals.push(x);
                }
            }
            offsets.push(cols.len() as u32);
        }
        Some(Self { offsets, cols, vals })
    }

    /// Dot product of row `i` with `v`, touching only the nonzeros.
    ///
    /// Reproduces the dense 4-lane kernel's accumulation structure — each
    /// nonzero lands in the same lane (`index % 4`, or the scalar tail) in
    /// the same order as [`vecstore::kernel::dot`] would process it, and the
    /// skipped terms are exact `±0.0` products that cannot change a lane sum.
    /// For finite inputs the result is therefore numerically equal (`==`) to
    /// the dense dot over the same matrix, so quantized hash codes are
    /// identical between the two paths.
    #[inline]
    fn row_dot(&self, i: usize, v: &[f32], dim: usize) -> f32 {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        let rem = dim - dim % 4;
        let mut acc = [0.0f32; 4];
        let mut tail = 0.0f32;
        for (&c, &val) in self.cols[lo..hi].iter().zip(&self.vals[lo..hi]) {
            let c = c as usize;
            let p = val * v[c];
            if c < rem {
                acc[c % 4] += p;
            } else {
                tail += p;
            }
        }
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }
}

impl HashFamily {
    /// Samples a fresh family of `m` hash functions over `dim`-dimensional
    /// input with bucket width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `dim == 0`, or `w <= 0`.
    pub fn sample(dim: usize, m: usize, w: f32, seed: u64) -> Self {
        Self::sample_with(dim, m, w, seed, Projection::Dense)
    }

    /// Samples a fresh family with an explicit [`Projection`] mode — the
    /// config-level entry point behind which sparse hashing is gated.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `dim == 0`, `w <= 0`, or (for sparse mode)
    /// `nnz == 0` or `nnz > dim`.
    pub fn sample_with(dim: usize, m: usize, w: f32, seed: u64, proj: Projection) -> Self {
        assert!(m > 0, "m must be positive");
        assert!(dim > 0, "dim must be positive");
        assert!(w > 0.0 && w.is_finite(), "w must be positive and finite");
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = match proj {
            Projection::Dense => (0..m * dim).map(|_| rng.sample(StdNormal)).collect(),
            Projection::Sparse { nnz } => {
                assert!(nnz > 0, "nnz must be positive");
                assert!(nnz <= dim, "nnz must not exceed dim");
                // Rescale the surviving Gaussians so `a_i · v` keeps the
                // dense family's variance: E[(a_i · v)²] ≈ ‖v‖² either way.
                let scale = (dim as f64 / nnz as f64).sqrt() as f32;
                let mut a = vec![0.0f32; m * dim];
                let mut support: Vec<usize> = (0..dim).collect();
                for row in a.chunks_exact_mut(dim) {
                    // Partial Fisher–Yates: the first `nnz` slots become a
                    // uniform random subset of the coordinates.
                    for j in 0..nnz {
                        let k = rng.gen_range(j..dim);
                        support.swap(j, k);
                    }
                    for &c in &support[..nnz] {
                        row[c] = rng.sample::<f32, _>(StdNormal) * scale;
                    }
                }
                a
            }
        };
        let b = (0..m).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let sparse = SparseView::derive(&a, m, dim);
        Self { a, b, w, m, dim, sparse }
    }

    /// Number of component hashes `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Input dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bucket width `W`.
    #[inline]
    pub fn w(&self) -> f32 {
        self.w
    }

    /// Returns a copy of this family with a different bucket width but the
    /// *same* projections and (rescaled) offsets.
    ///
    /// Keeping projections fixed while sweeping `W` is exactly what the
    /// paper's experiments do ("for each L, we increase the bucket size W
    /// gradually"), and it isolates the variance contribution of `W` from
    /// that of the random directions.
    pub fn with_w(&self, w: f32) -> Self {
        assert!(w > 0.0 && w.is_finite(), "w must be positive and finite");
        // `a` and the normalized `b` are kept verbatim: the true offset
        // `b · w` rescales with the width, staying uniform over the cell.
        // The sparse view depends only on `a`, so it carries over too.
        Self {
            a: self.a.clone(),
            b: self.b.clone(),
            w,
            m: self.m,
            dim: self.dim,
            sparse: self.sparse.clone(),
        }
    }

    /// Whether hashing runs through the sparse (CSR) accumulation path.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        self.sparse.is_some()
    }

    /// Total nonzero entries in the projection matrix.
    pub fn nnz(&self) -> usize {
        match &self.sparse {
            Some(view) => view.vals.len(),
            None => self.a.iter().filter(|x| **x != 0.0).count(),
        }
    }

    /// Raw (unquantized) per-component values `(a_i · v + b_i) / W`, written
    /// into `out` (`out.len() == m`).
    ///
    /// Quantizers build on this: `Z^M` floors each entry; the E8 decoder
    /// snaps blocks of 8 entries to the nearest E8 lattice point.
    pub fn project_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.dim, "input dimension mismatch");
        assert_eq!(out.len(), self.m, "output length must equal m");
        match &self.sparse {
            // The CSR path touches only nonzeros and, by mirroring the dense
            // kernel's lane structure, yields the same per-component values
            // (see `SparseView::row_dot`).
            Some(view) => {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = view.row_dot(i, v, self.dim) / self.w + self.b[i];
                }
            }
            None => {
                for (i, slot) in out.iter_mut().enumerate() {
                    let row = &self.a[i * self.dim..(i + 1) * self.dim];
                    *slot = vecstore::metric::dot(row, v) / self.w + self.b[i];
                }
            }
        }
    }

    /// Raw projection, allocating variant of [`Self::project_into`].
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.m];
        self.project_into(v, &mut out);
        out
    }

    /// The `Z^M` LSH code `H(v)` (Equation 1): floor of each raw projection.
    pub fn hash_zm(&self, v: &[f32]) -> LshCode {
        self.project(v).into_iter().map(|x| x.floor() as i32).collect()
    }

    /// Dumps the family's structure for persistence.
    pub fn to_parts(&self) -> FamilyParts {
        FamilyParts { a: self.a.clone(), b: self.b.clone(), w: self.w, dim: self.dim }
    }

    /// Rebuilds a family from a structural dump, validating every invariant
    /// [`HashFamily::sample`] establishes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFamily`] on shape mismatches, non-finite values, a
    /// non-positive width, or offsets outside the normalized `[0, 1)` cell.
    pub fn from_parts(parts: FamilyParts) -> Result<Self, InvalidFamily> {
        let FamilyParts { a, b, w, dim } = parts;
        let m = b.len();
        if m == 0 || dim == 0 {
            return Err(InvalidFamily("m and dim must be positive".into()));
        }
        if a.len() != m * dim {
            return Err(InvalidFamily(format!(
                "projection matrix has {} entries, want m * dim = {}",
                a.len(),
                m * dim
            )));
        }
        if !(w > 0.0 && w.is_finite()) {
            return Err(InvalidFamily(format!("width {w} must be positive and finite")));
        }
        if a.iter().any(|x| !x.is_finite()) {
            return Err(InvalidFamily("non-finite projection entry".into()));
        }
        if b.iter().any(|x| !(0.0..1.0).contains(x)) {
            return Err(InvalidFamily("offset outside the normalized [0, 1) cell".into()));
        }
        // Re-derive the sparse view from the matrix itself; persisted parts
        // stay a pure structural dump with no mode flag to desynchronize.
        let sparse = SparseView::derive(&a, m, dim);
        Ok(Self { a, b, w, m, dim, sparse })
    }
}

/// Owned structural dump of a [`HashFamily`]: the `m × dim` projection
/// matrix, the normalized offsets (`m` of them — `m` itself is implied),
/// the width, and the input dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyParts {
    /// Row-major `m × dim` projection matrix.
    pub a: Vec<f32>,
    /// Normalized per-component offsets in `[0, 1)`.
    pub b: Vec<f32>,
    /// Bucket width `W`.
    pub w: f32,
    /// Input dimensionality.
    pub dim: usize,
}

/// A structural dump failed [`HashFamily::from_parts`] validation.
#[derive(Debug)]
pub struct InvalidFamily(pub String);

impl std::fmt::Display for InvalidFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid hash family parts: {}", self.0)
    }
}

impl std::error::Error for InvalidFamily {}

/// Reusable projection buffer: the per-worker scratch state of the parallel
/// candidate-generation pipeline.
///
/// Probing hashes one query against many tables; allocating an `m`-length
/// buffer per hash (or threading a caller-owned `&mut [f32]` through every
/// probe routine) couples callers to the projection width. A
/// `ProjectionScratch` owns that buffer instead: create one per worker
/// thread, then [`project`](Self::project) borrows the raw projection for
/// immediate quantization. Buffers hold no query state between calls, so
/// reuse never changes results.
#[derive(Debug, Clone)]
pub struct ProjectionScratch {
    raw: Vec<f32>,
    /// Embedding buffer for augmented-dimension families (MIPS); sized
    /// lazily because the scratch is constructed from `m` alone.
    aug: Vec<f32>,
}

impl ProjectionScratch {
    /// Scratch sized for families with `m` component hashes.
    pub fn new(m: usize) -> Self {
        Self { raw: vec![0.0; m], aug: Vec::new() }
    }

    /// The raw projection buffer, asserting it is sized for `m` hashes.
    #[inline]
    pub(crate) fn raw_mut(&mut self, m: usize) -> &mut [f32] {
        assert_eq!(self.raw.len(), m, "scratch sized for m={}, family has m={m}", self.raw.len());
        &mut self.raw
    }

    /// Both internal buffers at once, for embed-then-project paths.
    #[inline]
    pub(crate) fn raw_and_aug(&mut self) -> (&mut [f32], &mut Vec<f32>) {
        (&mut self.raw, &mut self.aug)
    }

    /// Number of component hashes this scratch is sized for.
    #[inline]
    pub fn m(&self) -> usize {
        self.raw.len()
    }

    /// Projects `v` through `family` and returns the raw projection slice,
    /// valid until the next call.
    ///
    /// # Panics
    ///
    /// Panics if `family.m()` differs from the scratch size.
    pub fn project<'s>(&'s mut self, family: &HashFamily, v: &[f32]) -> &'s [f32] {
        family.project_into(v, &mut self.raw);
        &self.raw
    }
}

/// Floors a raw projection vector to a `Z^M` code.
pub fn quantize_zm(raw: &[f32]) -> LshCode {
    raw.iter().map(|x| x.floor() as i32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        let f = HashFamily::sample(16, 8, 4.0, 1);
        let v: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(f.hash_zm(&v), f.hash_zm(&v));
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let v: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let f1 = HashFamily::sample(16, 8, 4.0, 1);
        let f2 = HashFamily::sample(16, 8, 4.0, 2);
        assert_ne!(f1.hash_zm(&v), f2.hash_zm(&v));
    }

    #[test]
    fn code_has_m_components() {
        let f = HashFamily::sample(10, 6, 2.0, 3);
        assert_eq!(f.hash_zm(&[0.5; 10]).len(), 6);
    }

    #[test]
    fn nearby_points_collide_more_than_distant_ones() {
        let f = HashFamily::sample(8, 4, 8.0, 7);
        let base = vec![0.0f32; 8];
        let near = vec![0.05f32; 8];
        let far = vec![30.0f32; 8];
        let hb = f.hash_zm(&base);
        let matches = |h: &LshCode| h.iter().zip(&hb).filter(|(a, b)| a == b).count();
        assert!(matches(&f.hash_zm(&near)) > matches(&f.hash_zm(&far)));
    }

    #[test]
    fn larger_w_means_coarser_buckets() {
        // With a huge W every point in a small ball shares one bucket.
        let f = HashFamily::sample(4, 4, 1e6, 5);
        let h0 = f.hash_zm(&[0.0; 4]);
        let h1 = f.hash_zm(&[1.0, -1.0, 0.5, 2.0]);
        assert_eq!(h0, h1);
    }

    #[test]
    fn with_w_preserves_projection_directions() {
        let f = HashFamily::sample(8, 4, 2.0, 11);
        let g = f.with_w(4.0);
        let v = vec![1.0f32; 8];
        // The data-dependent part of the raw projection scales exactly by
        // the width ratio; the normalized offset is width-invariant.
        let zero = vec![0.0f32; 8];
        let (pf, pg) = (f.project(&v), g.project(&v));
        let (of, og) = (f.project(&zero), g.project(&zero));
        for ((x, y), (bx, by)) in pf.iter().zip(&pg).zip(of.iter().zip(&og)) {
            assert!((bx - by).abs() < 1e-6, "offset must be width-invariant");
            assert!(((x - bx) / (y - by) - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn huge_w_collapses_everything_into_one_bucket() {
        // With W far above the data scale, every point of a bounded set must
        // share a single cell — this is what makes exhaustive-width search
        // exact. Requires the offset to stay interior to the cell.
        let f = HashFamily::sample(8, 8, 1.0, 3).with_w(1e7);
        let a = f.hash_zm(&[5.0f32, -5.0, 3.0, 0.0, -2.0, 7.0, 1.0, -9.0]);
        let b = f.hash_zm(&[-100.0f32, 50.0, 0.0, 30.0, -80.0, 10.0, 60.0, -40.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn raw_projection_floor_equals_code() {
        let f = HashFamily::sample(12, 8, 3.0, 13);
        let v: Vec<f32> = (0..12).map(|i| (i as f32).cos() * 5.0).collect();
        assert_eq!(quantize_zm(&f.project(&v)), f.hash_zm(&v));
    }

    #[test]
    fn scratch_projection_matches_allocating_path() {
        let f = HashFamily::sample(12, 8, 3.0, 17);
        let mut scratch = ProjectionScratch::new(f.m());
        let a: Vec<f32> = (0..12).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..12).map(|i| (i as f32) * 0.3 - 1.0).collect();
        // Reusing the buffer across different inputs leaves no residue.
        assert_eq!(scratch.project(&f, &a), f.project(&a).as_slice());
        assert_eq!(scratch.project(&f, &b), f.project(&b).as_slice());
        assert_eq!(scratch.project(&f, &a), f.project(&a).as_slice());
        assert_eq!(scratch.m(), 8);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_dim_panics() {
        let f = HashFamily::sample(8, 4, 2.0, 1);
        let _ = f.hash_zm(&[0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "w must be positive")]
    fn zero_w_panics() {
        let _ = HashFamily::sample(8, 4, 0.0, 1);
    }

    #[test]
    fn parts_roundtrip_hashes_identically() {
        let f = HashFamily::sample(12, 6, 2.5, 23);
        let g = HashFamily::from_parts(f.to_parts()).unwrap();
        let v: Vec<f32> = (0..12).map(|i| (i as f32).sin() * 3.0).collect();
        assert_eq!(f.hash_zm(&v), g.hash_zm(&v));
        assert_eq!(f.project(&v), g.project(&v));
        assert_eq!((f.m(), f.dim(), f.w()), (g.m(), g.dim(), g.w()));
    }

    #[test]
    fn sparse_family_has_expected_support() {
        let f = HashFamily::sample_with(64, 8, 4.0, 41, Projection::Sparse { nnz: 6 });
        assert!(f.is_sparse());
        assert_eq!(f.nnz(), 8 * 6);
        // Dense families never take the sparse path.
        let d = HashFamily::sample(64, 8, 4.0, 41);
        assert!(!d.is_sparse());
        assert_eq!(d.nnz(), 64 * 8);
    }

    #[test]
    fn sparse_path_matches_dense_kernel_exactly() {
        // The CSR accumulation mirrors the dense 4-lane kernel, so over the
        // same matrix the raw projections must be numerically equal — not
        // merely close. Use dims straddling the 4-lane boundary to exercise
        // both the chunked body and the scalar tail.
        for dim in [5usize, 16, 33, 67] {
            let f = HashFamily::sample_with(dim, 7, 2.5, 43, Projection::Sparse { nnz: dim / 2 });
            assert!(f.is_sparse(), "dim {dim}");
            let parts = f.to_parts();
            let v: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
            let got = f.project(&v);
            for (i, &g) in got.iter().enumerate() {
                let row = &parts.a[i * dim..(i + 1) * dim];
                let want = vecstore::metric::dot(row, &v) / f.w() + parts.b[i];
                assert_eq!(g, want, "component {i} at dim {dim}");
            }
            assert_eq!(f.hash_zm(&v), quantize_zm(&got));
        }
    }

    #[test]
    fn sparse_parts_roundtrip_keeps_sparse_path() {
        let f = HashFamily::sample_with(32, 6, 3.0, 47, Projection::Sparse { nnz: 4 });
        let g = HashFamily::from_parts(f.to_parts()).unwrap();
        assert!(g.is_sparse(), "round-trip must re-derive the CSR view");
        assert_eq!(g.nnz(), f.nnz());
        let v: Vec<f32> = (0..32).map(|i| (i as f32).cos() * 2.0).collect();
        assert_eq!(f.project(&v), g.project(&v));
        assert_eq!(f.hash_zm(&v), g.hash_zm(&v));
    }

    #[test]
    fn sparse_with_w_rescales_like_dense() {
        let f = HashFamily::sample_with(24, 5, 2.0, 53, Projection::Sparse { nnz: 3 });
        let g = f.with_w(4.0);
        assert!(g.is_sparse());
        let v = vec![1.0f32; 24];
        let zero = vec![0.0f32; 24];
        let (pf, pg) = (f.project(&v), g.project(&v));
        let (of, og) = (f.project(&zero), g.project(&zero));
        for ((x, y), (bx, by)) in pf.iter().zip(&pg).zip(of.iter().zip(&og)) {
            assert!((bx - by).abs() < 1e-6, "offset must be width-invariant");
            assert!(((x - bx) / (y - by) - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn sparse_family_still_discriminates_near_from_far() {
        let f = HashFamily::sample_with(32, 8, 8.0, 59, Projection::Sparse { nnz: 8 });
        let base = vec![0.0f32; 32];
        let near = vec![0.05f32; 32];
        let far = vec![30.0f32; 32];
        let hb = f.hash_zm(&base);
        let matches = |h: &LshCode| h.iter().zip(&hb).filter(|(a, b)| a == b).count();
        assert!(matches(&f.hash_zm(&near)) > matches(&f.hash_zm(&far)));
    }

    #[test]
    #[should_panic(expected = "nnz must not exceed dim")]
    fn oversized_sparse_support_panics() {
        let _ = HashFamily::sample_with(8, 4, 2.0, 1, Projection::Sparse { nnz: 9 });
    }

    #[test]
    fn tampered_parts_are_rejected() {
        let f = HashFamily::sample(8, 4, 2.0, 29);

        let mut p = f.to_parts();
        p.a.pop();
        assert!(HashFamily::from_parts(p).is_err(), "matrix shape");

        let mut p = f.to_parts();
        p.b[0] = 1.5;
        assert!(HashFamily::from_parts(p).is_err(), "offset out of cell");

        let mut p = f.to_parts();
        p.w = -1.0;
        assert!(HashFamily::from_parts(p).is_err(), "negative width");

        let mut p = f.to_parts();
        p.a[3] = f32::NAN;
        assert!(HashFamily::from_parts(p).is_err(), "NaN projection");

        assert!(HashFamily::from_parts(f.to_parts()).is_ok(), "untampered parts load");
    }
}
