//! Query-directed multi-probe sequences (Lv et al., VLDB 2007).
//!
//! Instead of probing only the cell containing the query, multi-probe LSH
//! also visits the neighboring cells most likely to hold near neighbors. For
//! each hash component `i`, the query's fractional position inside its cell
//! determines the cost `x_i(δ)` of perturbing that component by `δ ∈ {−1,+1}`
//! (the squared distance to the corresponding cell boundary). A *perturbation
//! set* applies δs to a subset of components with distinct `i`; its score is
//! the sum of its members' `x²`. Sets are enumerated in increasing score
//! order with the classic min-heap over `shift`/`expand` transitions.

use crate::family::LshCode;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One perturbation candidate: component index and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perturbation {
    /// Hash component to perturb (`0..M`).
    pub dim: usize,
    /// `+1` or `−1` lattice step.
    pub delta: i32,
}

/// A scored perturbation set, as indices into the sorted candidate list.
#[derive(Debug, Clone)]
struct SetState {
    /// Indices into the sorted-by-score candidate array; the last element is
    /// the maximum (the only one `shift`/`expand` touch).
    members: Vec<usize>,
    score: f32,
}

impl PartialEq for SetState {
    fn eq(&self, other: &Self) -> bool {
        self.score.total_cmp(&other.score) == Ordering::Equal
    }
}
impl Eq for SetState {}
impl Ord for SetState {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need min-score first.
        // `total_cmp` keeps the order total (and transitive) even when a
        // degenerate projection produces NaN scores; the old
        // `partial_cmp(..).unwrap_or(Equal)` was non-transitive under NaN,
        // which corrupts the heap invariant.
        other.score.total_cmp(&self.score)
    }
}
impl PartialOrd for SetState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Generates up to `t` perturbation sets for a query with raw projections
/// `raw` (the `(a·v+b)/W` values), in increasing score order.
///
/// The empty set (the query's own cell) is *not* included; callers probe the
/// home bucket first and then apply these sets in order.
pub fn perturbation_sets(raw: &[f32], t: usize) -> Vec<Vec<Perturbation>> {
    let m = raw.len();
    if m == 0 || t == 0 {
        return Vec::new();
    }
    // Candidate costs: for component i, stepping +1 costs the squared
    // distance from the query to the upper cell boundary; −1 to the lower.
    // frac ∈ [0,1) is the position inside the cell.
    let mut cands: Vec<(f32, Perturbation)> = Vec::with_capacity(2 * m);
    for (i, &r) in raw.iter().enumerate() {
        let frac = r - r.floor();
        let lower = frac; // distance to the floor boundary (step −1)
        let upper = 1.0 - frac; // distance to the ceiling boundary (step +1)
        cands.push((lower * lower, Perturbation { dim: i, delta: -1 }));
        cands.push((upper * upper, Perturbation { dim: i, delta: 1 }));
    }
    cands.sort_by(|a, b| a.0.total_cmp(&b.0));
    let scores: Vec<f32> = cands.iter().map(|c| c.0).collect();

    // A set is valid if it doesn't use both directions of one component.
    let valid = |members: &[usize]| -> bool {
        let mut seen = vec![false; m];
        for &idx in members {
            let d = cands[idx].1.dim;
            if seen[d] {
                return false;
            }
            seen[d] = true;
        }
        true
    };

    let mut heap = BinaryHeap::new();
    heap.push(SetState { members: vec![0], score: scores[0] });
    let mut out = Vec::with_capacity(t);
    while out.len() < t {
        let Some(top) = heap.pop() else { break };
        let last = *top.members.last().expect("sets are non-empty");
        // Shift: replace the max element with its successor.
        if last + 1 < scores.len() {
            let mut shifted = top.members.clone();
            *shifted.last_mut().expect("non-empty") = last + 1;
            let score = top.score - scores[last] + scores[last + 1];
            heap.push(SetState { members: shifted, score });
            // Expand: append the successor.
            let mut expanded = top.members.clone();
            expanded.push(last + 1);
            let score = top.score + scores[last + 1];
            heap.push(SetState { members: expanded, score });
        }
        if valid(&top.members) {
            out.push(top.members.iter().map(|&i| cands[i].1).collect());
        }
    }
    out
}

/// Applies `t` perturbation sets to the query's home code, returning the
/// probe codes in visit order (home bucket first).
pub fn probe_codes(raw: &[f32], home: &LshCode, t: usize) -> Vec<LshCode> {
    let mut out = Vec::with_capacity(t + 1);
    out.push(home.clone());
    for set in perturbation_sets(raw, t) {
        let mut code = home.clone();
        for p in set {
            code[p.dim] += p.delta;
        }
        out.push(code);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score_of(raw: &[f32], set: &[Perturbation]) -> f32 {
        set.iter()
            .map(|p| {
                let frac = raw[p.dim] - raw[p.dim].floor();
                let x = if p.delta == -1 { frac } else { 1.0 - frac };
                x * x
            })
            .sum()
    }

    #[test]
    fn sets_come_out_in_nondecreasing_score_order() {
        let raw = [0.1, 0.8, 0.45, 0.3];
        let sets = perturbation_sets(&raw, 20);
        let scores: Vec<f32> = sets.iter().map(|s| score_of(&raw, s)).collect();
        for w in scores.windows(2) {
            assert!(w[0] <= w[1] + 1e-6, "scores not sorted: {scores:?}");
        }
    }

    #[test]
    fn no_set_perturbs_one_dim_twice() {
        let raw = [0.5, 0.5, 0.5];
        for set in perturbation_sets(&raw, 30) {
            let mut dims: Vec<usize> = set.iter().map(|p| p.dim).collect();
            dims.sort_unstable();
            dims.dedup();
            assert_eq!(dims.len(), set.len(), "duplicate dim in {set:?}");
        }
    }

    #[test]
    fn first_set_is_single_cheapest_step() {
        // Component 1 sits at 0.95 inside its cell: stepping it +1 costs
        // 0.05² — by far the cheapest single perturbation.
        let raw = [0.5, 1.95, 0.5];
        let sets = perturbation_sets(&raw, 1);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0], vec![Perturbation { dim: 1, delta: 1 }]);
    }

    #[test]
    fn sets_are_distinct() {
        let raw = [0.3, 0.6, 0.2, 0.85];
        let sets = perturbation_sets(&raw, 40);
        let mut keys: Vec<Vec<(usize, i32)>> = sets
            .iter()
            .map(|s| {
                let mut v: Vec<(usize, i32)> = s.iter().map(|p| (p.dim, p.delta)).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate perturbation sets generated");
    }

    #[test]
    fn probe_codes_start_with_home_bucket() {
        let raw = [0.2, 0.7];
        let home = vec![0, 0];
        let probes = probe_codes(&raw, &home, 4);
        assert_eq!(probes[0], home);
        assert_eq!(probes.len(), 5);
        // Every probe differs from home by ±1 steps in distinct dims.
        for p in &probes[1..] {
            assert!(p.iter().zip(&home).all(|(a, b)| (a - b).abs() <= 1));
            assert_ne!(p, &home);
        }
    }

    #[test]
    fn requesting_more_sets_than_exist_terminates() {
        // M=1 has only 2 valid sets ({-1}, {+1}).
        let raw = [0.4];
        let sets = perturbation_sets(&raw, 100);
        assert_eq!(sets.len(), 2);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(perturbation_sets(&[], 5).is_empty());
        assert!(perturbation_sets(&[0.5], 0).is_empty());
    }

    #[test]
    fn exhaustive_check_against_brute_force_m2() {
        // For M=2 enumerate all 8 valid non-empty sets by brute force and
        // compare the full ordering.
        let raw = [0.37, 0.81];
        let got = perturbation_sets(&raw, 100);
        assert_eq!(got.len(), 8);
        let mut brute: Vec<(f32, Vec<(usize, i32)>)> = Vec::new();
        let opts: [Option<i32>; 3] = [None, Some(-1), Some(1)];
        for &d0 in &opts {
            for &d1 in &opts {
                let mut set = Vec::new();
                if let Some(d) = d0 {
                    set.push((0usize, d));
                }
                if let Some(d) = d1 {
                    set.push((1usize, d));
                }
                if set.is_empty() {
                    continue;
                }
                let ps: Vec<Perturbation> =
                    set.iter().map(|&(dim, delta)| Perturbation { dim, delta }).collect();
                brute.push((score_of(&raw, &ps), set));
            }
        }
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (g, (want_score, _)) in got.iter().zip(&brute) {
            assert!((score_of(&raw, g) - want_score).abs() < 1e-6);
        }
    }
}
