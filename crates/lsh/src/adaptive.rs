//! Query-adaptive hash-function selection (Jégou et al., ICASSP 2008 — the
//! paper's reference \[12\] alongside the E8 quantizer).
//!
//! Instead of probing all `L` tables for every query, draw a larger pool of
//! `L' > L` hash functions at build time and, per query, probe only the `L`
//! tables where the query sits most *centrally* in its bucket — those are
//! the tables whose bucket is most likely to contain the query's true
//! neighbors. The relevance criterion is the squared distance from the
//! query's raw projection to its cell center, summed over components
//! (smaller = more central = better).

use crate::family::HashFamily;

/// Per-query relevance of one hash function: the squared distance of the
/// raw projection to its cell center, summed over the `M` components.
///
/// For the `Z^M` quantizer a component's cell is `[⌊x⌋, ⌊x⌋+1)`, so the
/// centered fractional offset is `frac(x) − ½`.
pub fn centrality_score(raw: &[f32]) -> f64 {
    raw.iter()
        .map(|&x| {
            let centered = (x - x.floor()) as f64 - 0.5;
            centered * centered
        })
        .sum()
}

/// Ranks a pool of hash families for one query: returns the pool indices of
/// the `select` most central tables, best first.
///
/// # Panics
///
/// Panics if `select == 0` or the pool is empty.
pub fn select_tables(families: &[HashFamily], query: &[f32], select: usize) -> Vec<usize> {
    assert!(!families.is_empty(), "empty hash-function pool");
    assert!(select > 0, "must select at least one table");
    let mut scored: Vec<(f64, usize)> = families
        .iter()
        .enumerate()
        .map(|(i, f)| (centrality_score(&f.project(query)), i))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    scored.into_iter().take(select).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centrality_is_zero_at_cell_center() {
        assert_eq!(centrality_score(&[0.5, 3.5, -2.5]), 0.0);
    }

    #[test]
    fn centrality_is_maximal_at_cell_boundary() {
        let boundary = centrality_score(&[0.0]);
        let center = centrality_score(&[0.5]);
        assert!((boundary - 0.25).abs() < 1e-9);
        assert!(boundary > center);
    }

    #[test]
    fn centrality_is_translation_invariant_across_cells() {
        let a = centrality_score(&[0.3]);
        let b = centrality_score(&[7.3]);
        let c = centrality_score(&[-2.7]); // frac(-2.7) = 0.3
        assert!((a - b).abs() < 1e-6);
        assert!((a - c).abs() < 1e-6);
    }

    #[test]
    fn selects_the_requested_number_of_distinct_tables() {
        let families: Vec<HashFamily> = (0..12).map(|i| HashFamily::sample(8, 4, 2.0, i)).collect();
        let q = vec![0.7f32; 8];
        let picked = select_tables(&families, &q, 5);
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(sorted.iter().all(|&i| i < 12));
    }

    #[test]
    fn picked_tables_are_more_central_than_skipped() {
        let families: Vec<HashFamily> =
            (0..10).map(|i| HashFamily::sample(8, 4, 2.0, 100 + i)).collect();
        let q: Vec<f32> = (0..8).map(|i| (i as f32).sin() * 3.0).collect();
        let picked = select_tables(&families, &q, 3);
        let worst_picked = picked
            .iter()
            .map(|&i| centrality_score(&families[i].project(&q)))
            .fold(0.0f64, f64::max);
        for (i, family) in families.iter().enumerate() {
            if !picked.contains(&i) {
                let score = centrality_score(&family.project(&q));
                assert!(score >= worst_picked - 1e-12, "table {i} should have been picked");
            }
        }
    }

    #[test]
    fn adaptive_selection_improves_single_table_collision_rate() {
        // Empirical: for pairs at a fixed distance, hashing with the most
        // central table collides more often than with a random table.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let families: Vec<HashFamily> =
            (0..8).map(|i| HashFamily::sample(16, 4, 6.0, 500 + i)).collect();
        let trials = 400;
        let (mut adaptive_hits, mut fixed_hits) = (0u32, 0u32);
        for _ in 0..trials {
            let a: Vec<f32> = (0..16).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
            // Neighbor at moderate distance.
            let b: Vec<f32> = a.iter().map(|x| x + rng.gen_range(-0.9f32..0.9)).collect();
            let best = select_tables(&families, &a, 1)[0];
            if families[best].hash_zm(&a) == families[best].hash_zm(&b) {
                adaptive_hits += 1;
            }
            if families[0].hash_zm(&a) == families[0].hash_zm(&b) {
                fixed_hits += 1;
            }
        }
        assert!(
            adaptive_hits > fixed_hits,
            "adaptive {adaptive_hits} should beat fixed {fixed_hits} over {trials} trials"
        );
    }

    #[test]
    #[should_panic(expected = "empty hash-function pool")]
    fn empty_pool_panics() {
        let _ = select_tables(&[], &[0.0; 4], 1);
    }
}
