//! Dataset preprocessing: the conditioning steps real descriptor pipelines
//! apply before indexing (GIST vectors are conventionally L2-normalized;
//! centering stabilizes projection-based methods on datasets with a large
//! common offset).

use crate::dataset::Dataset;
use crate::metric::norm;

/// L2-normalizes every row in place; zero rows are left untouched.
pub fn l2_normalize(data: &mut Dataset) {
    for i in 0..data.len() {
        let row = data.row_mut(i);
        let n = norm(row);
        if n > 0.0 {
            for v in row {
                *v /= n;
            }
        }
    }
}

/// Subtracts the dataset centroid from every row in place; returns the
/// centroid so queries can be shifted identically.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn center(data: &mut Dataset) -> Vec<f32> {
    let mean = crate::stats::centroid(data);
    for i in 0..data.len() {
        for (v, &m) in data.row_mut(i).iter_mut().zip(&mean) {
            *v -= m;
        }
    }
    mean
}

/// Applies a previously computed centering shift to one vector in place
/// (use on queries after [`center`]ing the corpus).
pub fn apply_center(v: &mut [f32], mean: &[f32]) {
    assert_eq!(v.len(), mean.len(), "dimension mismatch");
    for (x, &m) in v.iter_mut().zip(mean) {
        *x -= m;
    }
}

/// Per-axis standardization to zero mean and unit variance (axes with zero
/// variance are only centered). Returns `(mean, std)` for applying the same
/// transform to queries.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn standardize(data: &mut Dataset) -> (Vec<f32>, Vec<f32>) {
    let mean = crate::stats::centroid(data);
    let dim = data.dim();
    let mut var = vec![0.0f64; dim];
    for row in data.iter() {
        for (s, (&v, &m)) in var.iter_mut().zip(row.iter().zip(&mean)) {
            let d = (v - m) as f64;
            *s += d * d;
        }
    }
    let n = data.len() as f64;
    let std: Vec<f32> = var.into_iter().map(|s| ((s / n).sqrt()) as f32).collect();
    for i in 0..data.len() {
        for ((v, &m), &s) in data.row_mut(i).iter_mut().zip(&mean).zip(&std) {
            *v -= m;
            if s > 0.0 {
                *v /= s;
            }
        }
    }
    (mean, std)
}

/// Applies a previously computed standardization to one vector in place.
pub fn apply_standardize(v: &mut [f32], mean: &[f32], std: &[f32]) {
    assert_eq!(v.len(), mean.len(), "dimension mismatch");
    for ((x, &m), &s) in v.iter_mut().zip(mean).zip(std) {
        *x -= m;
        if s > 0.0 {
            *x /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn normalize_gives_unit_rows() {
        let mut ds = synth::gaussian(8, 50, 3.0, 1);
        l2_normalize(&mut ds);
        for row in ds.iter() {
            assert!((norm(row) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn normalize_skips_zero_rows() {
        let mut ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        l2_normalize(&mut ds);
        assert_eq!(ds.row(0), &[0.0, 0.0]);
        assert_eq!(ds.row(1), &[0.6, 0.8]);
    }

    #[test]
    fn center_zeroes_the_mean_and_shifts_queries_consistently() {
        let mut ds = synth::gaussian(4, 200, 1.0, 2);
        // Add a large offset.
        for i in 0..ds.len() {
            for v in ds.row_mut(i) {
                *v += 100.0;
            }
        }
        let original_first = ds.row(0).to_vec();
        let mean = center(&mut ds);
        let centroid = crate::stats::centroid(&ds);
        assert!(centroid.iter().all(|&m| m.abs() < 1e-3), "{centroid:?}");
        // A query shifted with the returned mean matches the shifted row.
        let mut q = original_first;
        apply_center(&mut q, &mean);
        assert_eq!(&q[..], ds.row(0));
    }

    #[test]
    fn standardize_unit_variance() {
        let mut ds = synth::gaussian(3, 5_000, 7.0, 3);
        let (_, std) = standardize(&mut ds);
        assert!(std.iter().all(|&s| s > 0.0));
        // Re-measure: each axis variance ≈ 1.
        let mean = crate::stats::centroid(&ds);
        let mut var = vec![0.0f64; 3];
        for row in ds.iter() {
            for (s, (&v, &m)) in var.iter_mut().zip(row.iter().zip(&mean)) {
                let d = (v - m) as f64;
                *s += d * d;
            }
        }
        for s in var {
            let v = s / ds.len() as f64;
            assert!((v - 1.0).abs() < 0.05, "axis variance {v}");
        }
    }

    #[test]
    fn standardize_constant_axis_centered_not_scaled() {
        let mut ds = Dataset::from_rows(&[vec![5.0, 1.0], vec![5.0, 3.0]]);
        let (mean, std) = standardize(&mut ds);
        assert_eq!(mean[0], 5.0);
        assert_eq!(std[0], 0.0);
        assert_eq!(ds.row(0)[0], 0.0);
        assert_eq!(ds.row(1)[0], 0.0);
        // The varying axis is standardized.
        assert!((ds.row(0)[1] + 1.0).abs() < 1e-5);
        assert!((ds.row(1)[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn apply_standardize_matches_bulk() {
        let mut ds = synth::gaussian(4, 100, 2.0, 9);
        let raw_first = ds.row(7).to_vec();
        let (mean, std) = standardize(&mut ds);
        let mut q = raw_first;
        apply_standardize(&mut q, &mean, &std);
        for (a, b) in q.iter().zip(ds.row(7)) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
